#include "core/cost.hpp"

#include <algorithm>
#include <map>

namespace stordep {

const TechniqueOutlay* CostResult::find(const std::string& name) const {
  const auto it =
      std::find_if(outlays.begin(), outlays.end(),
                   [&](const TechniqueOutlay& o) { return o.technique == name; });
  return it == outlays.end() ? nullptr : &*it;
}

std::vector<TechniqueOutlay> computeOutlays(
    const std::vector<PlacedDemand>& all) {
  // Group demands per device, preserving first-seen order.
  std::vector<DevicePtr> order;
  std::map<const DeviceModel*, std::vector<DeviceDemand>> byDevice;
  for (const auto& pd : all) {
    if (byDevice.find(pd.device.get()) == byDevice.end()) {
      order.push_back(pd.device);
    }
    byDevice[pd.device.get()].push_back(pd.demand);
  }

  // Accumulate attributed outlays per technique (insertion order).
  std::vector<TechniqueOutlay> outlays;
  auto techniqueEntry = [&](const std::string& name) -> TechniqueOutlay& {
    const auto it = std::find_if(
        outlays.begin(), outlays.end(),
        [&](const TechniqueOutlay& o) { return o.technique == name; });
    if (it != outlays.end()) return *it;
    outlays.push_back(TechniqueOutlay{name, Money::zero(), Money::zero()});
    return outlays.back();
  };

  for (const auto& device : order) {
    const auto& demands = byDevice[device.get()];
    const Money fixed = device->spec().cost.fixedCost;

    // Which demand is charged the fixed costs: the flagged primary
    // technique, defaulting to the first user of the device.
    size_t primaryIdx = 0;
    for (size_t i = 0; i < demands.size(); ++i) {
      if (demands[i].isPrimaryTechnique) {
        primaryIdx = i;
        break;
      }
    }

    Bytes totalCap{0};
    Bandwidth totalBW = Bandwidth::zero();
    std::vector<Money> attributed(demands.size());
    for (size_t i = 0; i < demands.size(); ++i) {
      const auto& d = demands[i];
      totalCap += d.capacity;
      totalBW += d.bandwidth;
      const Money marginal =
          device->annualOutlay(d.capacity, d.bandwidth, d.shipmentsPerYear) -
          fixed;
      attributed[i] = marginal + (i == primaryIdx ? fixed : Money::zero());
    }

    // Spare costs follow each technique's share of the device outlay.
    const Money spareTotal = device->annualSpareOutlay(totalCap, totalBW);
    Money deviceTotal = Money::zero();
    for (const auto& m : attributed) deviceTotal += m;

    for (size_t i = 0; i < demands.size(); ++i) {
      auto& entry = techniqueEntry(demands[i].techniqueName);
      entry.deviceOutlay += attributed[i];
      const double share =
          deviceTotal.usd() > 0
              ? attributed[i] / deviceTotal
              : 1.0 / static_cast<double>(demands.size());
      entry.spareOutlay += spareTotal * share;
    }
  }
  return outlays;
}

CostResult computeCosts(const StorageDesign& design,
                        const RecoveryResult& recovery) {
  return computeCosts(design, recovery, computeOutlays(design.allDemands()));
}

CostResult computeCosts(const StorageDesign& design,
                        const RecoveryResult& recovery,
                        std::vector<TechniqueOutlay> outlays) {
  CostResult result;
  result.outlays = std::move(outlays);
  for (const auto& o : result.outlays) result.totalOutlays += o.total();

  const auto& business = design.business();
  result.outagePenalty = business.outagePenalty(recovery.recoveryTime);
  result.lossPenalty = business.lossPenalty(recovery.dataLoss);
  result.totalPenalties = result.outagePenalty + result.lossPenalty;
  result.totalCost = result.totalOutlays + result.totalPenalties;
  return result;
}

}  // namespace stordep
