// workload.hpp — the workload abstraction consumed by the dependability models.
//
// The paper (Sec 3.1.1, Table 1) characterizes the foreground workload on the
// primary copy with five parameters:
//
//   dataCap        size of the protected data object
//   avgAccessR     average rate of reads+writes to the object
//   avgUpdateR     average rate of (non-unique) updates
//   burstM         ratio of peak update rate to average update rate
//   batchUpdR(win) unique update rate within a batching window `win`
//
// batchUpdR captures overwrite locality: as the window grows, more updates hit
// already-dirty data, so the *unique* update rate declines. Techniques that
// ship periodic batches (split mirrors, async-batch mirroring, incremental
// backup, snapshots) consume batchUpdR; techniques that ship every update
// (sync/async mirroring) consume avgUpdateR/burstM.
#pragma once

#include <string>
#include <vector>

#include "core/units.hpp"

namespace stordep {

/// One measured point of the unique-update-rate curve.
struct BatchUpdatePoint {
  Duration window;  ///< batching window
  Bandwidth rate;   ///< unique update rate over that window
};

/// Thrown when a workload specification violates its invariants.
class WorkloadError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Immutable description of a single data object's workload.
///
/// Invariants (checked by the constructor):
///  - dataCap > 0, rates >= 0, burstMultiplier >= 1
///  - batch curve windows strictly increasing, rates non-increasing
///  - batchUpdR(win) <= avgUpdateR for all points (unique <= total updates)
class WorkloadSpec {
 public:
  /// `batchCurve` may be empty, in which case batchUpdateRate() falls back to
  /// avgUpdateRate (no overwrite coalescing assumed — conservative).
  WorkloadSpec(std::string name, Bytes dataCap, Bandwidth avgAccessRate,
               Bandwidth avgUpdateRate, double burstMultiplier,
               std::vector<BatchUpdatePoint> batchCurve);

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] Bytes dataCap() const noexcept { return dataCap_; }
  [[nodiscard]] Bandwidth avgAccessRate() const noexcept { return avgAccessR_; }
  [[nodiscard]] Bandwidth avgUpdateRate() const noexcept { return avgUpdateR_; }
  [[nodiscard]] double burstMultiplier() const noexcept { return burstM_; }
  [[nodiscard]] Bandwidth peakUpdateRate() const noexcept {
    return avgUpdateR_ * burstM_;
  }
  [[nodiscard]] const std::vector<BatchUpdatePoint>& batchCurve() const noexcept {
    return curve_;
  }

  /// Unique update rate for a batching window `win`.
  ///
  /// Interpolates the measured curve in log(window) space (windows span
  /// minutes to weeks, so log-space interpolation is the natural choice) and
  /// clamps outside the measured range:
  ///  - win below the first point: the first point's rate (capped by
  ///    avgUpdateRate — at window -> 0 every update is unique)
  ///  - win above the last point: the last point's rate (working set has
  ///    saturated).
  [[nodiscard]] Bandwidth batchUpdateRate(Duration win) const;

  /// Total unique bytes written in a window: the running maximum of
  /// batchUpdateRate(w) * w over w in (0, win]. Monotonically non-decreasing
  /// in win and capped at dataCap (a window cannot dirty more data than
  /// exists). The running maximum matters: the raw product can dip right
  /// after a curve knot where the interpolated rate falls steeply, and a
  /// longer window cannot dirty fewer bytes than a shorter one.
  [[nodiscard]] Bytes uniqueBytes(Duration win) const;

 private:
  /// Per-segment constants of the log-space interpolation, flattened out of
  /// the query path (windows are immutable, so every std::log/std::exp the
  /// queries need is computable once here — with the same expressions, so
  /// query results are bit-identical to the on-the-fly form).
  struct CurveSegment {
    double w0 = 0.0, w1 = 0.0;  ///< window bounds, seconds
    double r0 = 0.0, r1 = 0.0;  ///< rates at the bounds, bytes/sec
    double b = 0.0;             ///< log-space slope (r1-r0)/log(w1/w0)
    double wStar = 0.0;         ///< interior peak window of r(w)*w (b<0 only)
    double peakBytes = 0.0;     ///< r(wStar)*wStar (b<0 only)
    double knotBytes0 = 0.0;    ///< r0*w0
  };

  std::string name_;
  Bytes dataCap_;
  Bandwidth avgAccessR_;
  Bandwidth avgUpdateR_;
  double burstM_;
  std::vector<BatchUpdatePoint> curve_;
  std::vector<double> logWindows_;       ///< log(curve_[i].window.secs())
  std::vector<CurveSegment> segments_;  ///< curve_.size()-1 entries (or 0)
};

}  // namespace stordep
