// reliability.hpp — per-device failure-arrival and repair-time processes.
//
// The analytic models answer "what happens *when* a failure strikes"; the
// stochastic layer (src/stochastic) additionally needs "how often". This
// module holds the process descriptions: each device gets a failure
// inter-arrival process and a repair-time process, each exponential, Weibull
// (disk infant-mortality/wear-out shapes), or degenerate-fixed. Specs are
// plain data — sampling lives with the Monte-Carlo engine — so the config
// layer can parse them from the optional "reliability" block of a design
// document without depending on the simulators.
//
// Every device class carries literature-flavored defaults (a disk array
// fails far more often than a fire-safe vault), so a design evaluates
// stochastically out of the box; the design document overrides per device.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "core/hierarchy.hpp"
#include "core/units.hpp"

namespace stordep {

enum class ProcessKind {
  kExponential,  ///< memoryless, parameterized by mean
  kWeibull,      ///< mean + shape (k < 1 infant mortality, k > 1 wear-out)
  kFixed,        ///< degenerate: always exactly the mean
};

[[nodiscard]] const char* toString(ProcessKind kind) noexcept;

/// One stochastic duration process. An infinite mean means "never" for
/// failure processes (the device is not a failure source). A
/// default-constructed ProcessSpec doubles as "unset": resolveReliability
/// substitutes the device-class default for it, so a design document may
/// override just the failure or just the repair side.
struct ProcessSpec {
  ProcessKind kind = ProcessKind::kExponential;
  Duration mean = Duration::infinite();
  double shape = 1.0;  ///< Weibull shape k; ignored by the other kinds

  friend bool operator==(const ProcessSpec&, const ProcessSpec&) = default;
};

struct DeviceReliability {
  ProcessSpec failure;  ///< time from (re)commissioning to the next failure
  ProcessSpec repair;   ///< time the device stays down once failed

  friend bool operator==(const DeviceReliability&,
                         const DeviceReliability&) = default;
};

/// The design-level reliability description: per-device overrides (by device
/// name), the mission window annualized summaries are computed over, and an
/// optional common-shock rate correlating failures at the same site.
struct ReliabilitySpec {
  std::map<std::string, DeviceReliability> devices;
  /// Window one Monte-Carlo mission trial covers.
  Duration missionWindow = years(1);
  /// Rate (per year, per site) of whole-site shocks — fire, flood, power —
  /// that take out every device at the site at once. This is the
  /// Marshall–Olkin-style correlation knob; 0 keeps devices independent.
  double siteShockAnnualRate = 0.0;

  friend bool operator==(const ReliabilitySpec&,
                         const ReliabilitySpec&) = default;
};

/// Class defaults for a device (disk arrays: Weibull wear-out failures with
/// a 10-year mean and half-day repairs; tape libraries: 15-year/-1-day;
/// vaults: 50-year/1-week; transports never fail as storage).
[[nodiscard]] DeviceReliability defaultDeviceReliability(
    const DeviceModel& device);

/// Per-device processes for every *storage* device in the design, in design
/// device order (deterministic): explicit spec entries override the class
/// defaults. Transports (links, couriers) are excluded — their outages are
/// not storage-destruction events in the paper's failure model.
[[nodiscard]] std::vector<std::pair<DevicePtr, DeviceReliability>>
resolveReliability(const StorageDesign& design, const ReliabilitySpec& spec);

}  // namespace stordep
