#include "core/workload.hpp"

#include <algorithm>
#include <cmath>

namespace stordep {

WorkloadSpec::WorkloadSpec(std::string name, Bytes dataCap,
                           Bandwidth avgAccessRate, Bandwidth avgUpdateRate,
                           double burstMultiplier,
                           std::vector<BatchUpdatePoint> batchCurve)
    : name_(std::move(name)),
      dataCap_(dataCap),
      avgAccessR_(avgAccessRate),
      avgUpdateR_(avgUpdateRate),
      burstM_(burstMultiplier),
      curve_(std::move(batchCurve)) {
  if (!(dataCap_.bytes() > 0)) {
    throw WorkloadError("workload '" + name_ + "': dataCap must be positive");
  }
  if (avgAccessR_.bytesPerSec() < 0 || avgUpdateR_.bytesPerSec() < 0) {
    throw WorkloadError("workload '" + name_ + "': rates must be non-negative");
  }
  if (avgUpdateR_ > avgAccessR_) {
    throw WorkloadError("workload '" + name_ +
                        "': avgUpdateR cannot exceed avgAccessR");
  }
  if (burstM_ < 1.0) {
    throw WorkloadError("workload '" + name_ + "': burstM must be >= 1");
  }
  for (size_t i = 0; i < curve_.size(); ++i) {
    if (!(curve_[i].window.secs() > 0)) {
      throw WorkloadError("workload '" + name_ +
                          "': batch curve windows must be positive");
    }
    if (curve_[i].rate.bytesPerSec() < 0) {
      throw WorkloadError("workload '" + name_ +
                          "': batch curve rates must be non-negative");
    }
    if (curve_[i].rate > avgUpdateR_ * (1.0 + 1e-9)) {
      throw WorkloadError("workload '" + name_ +
                          "': unique update rate cannot exceed avgUpdateR");
    }
    if (i > 0) {
      if (!(curve_[i].window > curve_[i - 1].window)) {
        throw WorkloadError("workload '" + name_ +
                            "': batch curve windows must strictly increase");
      }
      if (curve_[i].rate > curve_[i - 1].rate * (1.0 + 1e-9)) {
        throw WorkloadError("workload '" + name_ +
                            "': batch curve rates must be non-increasing");
      }
    }
  }

  // Flatten the interpolation constants out of the query path. Every
  // expression here is written exactly as the queries used to evaluate it
  // per call, so table-driven queries return bit-identical values.
  logWindows_.reserve(curve_.size());
  for (const BatchUpdatePoint& point : curve_) {
    logWindows_.push_back(std::log(point.window.secs()));
  }
  if (curve_.size() >= 2) {
    segments_.reserve(curve_.size() - 1);
    for (size_t i = 0; i + 1 < curve_.size(); ++i) {
      CurveSegment seg;
      seg.w0 = curve_[i].window.secs();
      seg.w1 = curve_[i + 1].window.secs();
      seg.r0 = curve_[i].rate.bytesPerSec();
      seg.r1 = curve_[i + 1].rate.bytesPerSec();
      seg.knotBytes0 = seg.r0 * seg.w0;
      seg.b = (seg.r1 - seg.r0) / std::log(seg.w1 / seg.w0);
      if (seg.b < 0.0) {
        const double a = seg.r0 - seg.b * std::log(seg.w0);
        seg.wStar = std::exp(-1.0 - a / seg.b);
        seg.peakBytes = (a + seg.b * std::log(seg.wStar)) * seg.wStar;
      }
      segments_.push_back(seg);
    }
  }
}

Bandwidth WorkloadSpec::batchUpdateRate(Duration win) const {
  if (!(win.secs() > 0)) {
    // Degenerate window: every update is unique; peak coalescing is none.
    return avgUpdateR_;
  }
  if (curve_.empty()) return avgUpdateR_;
  if (win <= curve_.front().window) {
    return std::min(avgUpdateR_, curve_.front().rate);
  }
  if (win >= curve_.back().window) return curve_.back().rate;

  // log-space linear interpolation between the bracketing points; the knot
  // logs come from the table built at construction.
  const auto upper = std::lower_bound(
      curve_.begin(), curve_.end(), win,
      [](const BatchUpdatePoint& p, Duration w) { return p.window < w; });
  const auto lower = upper - 1;
  const auto k = static_cast<size_t>(upper - curve_.begin());
  const double x0 = logWindows_[k - 1];
  const double x1 = logWindows_[k];
  const double x = std::log(win.secs());
  const double t = (x - x0) / (x1 - x0);
  const double rate =
      lower->rate.bytesPerSec() +
      t * (upper->rate.bytesPerSec() - lower->rate.bytesPerSec());
  return Bandwidth{rate};
}

Bytes WorkloadSpec::uniqueBytes(Duration win) const {
  if (win.isInfinite()) return dataCap_;
  if (!(win.secs() > 0)) return Bytes{0};
  // The raw product batchUpdateRate(win) * win is NOT monotone in win: on a
  // segment where the interpolated rate r(w) = a + b*ln(w) falls steeply
  // (b < 0), the product f(w) = r(w)*w has derivative r(w) + b, which goes
  // negative once r(w) < -b — f peaks at w* = exp(-1 - a/b) and then dips
  // below values already reached at smaller windows. A longer window cannot
  // dirty fewer bytes, so return the running maximum of f over (0, win]:
  // the raw product at win, every knot product at or below win, and each
  // covered segment's interior peak.
  double best = (batchUpdateRate(win) * win).bytes();
  for (const CurveSegment& seg : segments_) {
    if (seg.w0 >= win.secs()) break;
    best = std::max(best, seg.knotBytes0);
    if (seg.b < 0.0) {
      const double hi = std::min(seg.w1, win.secs());
      if (seg.wStar > seg.w0 && seg.wStar < hi) {
        best = std::max(best, seg.peakBytes);
      }
    }
  }
  return std::min(Bytes{best}, dataCap_);
}

}  // namespace stordep
