#include "core/workload.hpp"

#include <algorithm>
#include <cmath>

namespace stordep {

WorkloadSpec::WorkloadSpec(std::string name, Bytes dataCap,
                           Bandwidth avgAccessRate, Bandwidth avgUpdateRate,
                           double burstMultiplier,
                           std::vector<BatchUpdatePoint> batchCurve)
    : name_(std::move(name)),
      dataCap_(dataCap),
      avgAccessR_(avgAccessRate),
      avgUpdateR_(avgUpdateRate),
      burstM_(burstMultiplier),
      curve_(std::move(batchCurve)) {
  if (!(dataCap_.bytes() > 0)) {
    throw WorkloadError("workload '" + name_ + "': dataCap must be positive");
  }
  if (avgAccessR_.bytesPerSec() < 0 || avgUpdateR_.bytesPerSec() < 0) {
    throw WorkloadError("workload '" + name_ + "': rates must be non-negative");
  }
  if (avgUpdateR_ > avgAccessR_) {
    throw WorkloadError("workload '" + name_ +
                        "': avgUpdateR cannot exceed avgAccessR");
  }
  if (burstM_ < 1.0) {
    throw WorkloadError("workload '" + name_ + "': burstM must be >= 1");
  }
  for (size_t i = 0; i < curve_.size(); ++i) {
    if (!(curve_[i].window.secs() > 0)) {
      throw WorkloadError("workload '" + name_ +
                          "': batch curve windows must be positive");
    }
    if (curve_[i].rate.bytesPerSec() < 0) {
      throw WorkloadError("workload '" + name_ +
                          "': batch curve rates must be non-negative");
    }
    if (curve_[i].rate > avgUpdateR_ * (1.0 + 1e-9)) {
      throw WorkloadError("workload '" + name_ +
                          "': unique update rate cannot exceed avgUpdateR");
    }
    if (i > 0) {
      if (!(curve_[i].window > curve_[i - 1].window)) {
        throw WorkloadError("workload '" + name_ +
                            "': batch curve windows must strictly increase");
      }
      if (curve_[i].rate > curve_[i - 1].rate * (1.0 + 1e-9)) {
        throw WorkloadError("workload '" + name_ +
                            "': batch curve rates must be non-increasing");
      }
    }
  }
}

Bandwidth WorkloadSpec::batchUpdateRate(Duration win) const {
  if (!(win.secs() > 0)) {
    // Degenerate window: every update is unique; peak coalescing is none.
    return avgUpdateR_;
  }
  if (curve_.empty()) return avgUpdateR_;
  if (win <= curve_.front().window) {
    return std::min(avgUpdateR_, curve_.front().rate);
  }
  if (win >= curve_.back().window) return curve_.back().rate;

  // log-space linear interpolation between the bracketing points.
  const auto upper = std::lower_bound(
      curve_.begin(), curve_.end(), win,
      [](const BatchUpdatePoint& p, Duration w) { return p.window < w; });
  const auto lower = upper - 1;
  const double x0 = std::log(lower->window.secs());
  const double x1 = std::log(upper->window.secs());
  const double x = std::log(win.secs());
  const double t = (x - x0) / (x1 - x0);
  const double rate =
      lower->rate.bytesPerSec() +
      t * (upper->rate.bytesPerSec() - lower->rate.bytesPerSec());
  return Bandwidth{rate};
}

Bytes WorkloadSpec::uniqueBytes(Duration win) const {
  if (win.isInfinite()) return dataCap_;
  if (!(win.secs() > 0)) return Bytes{0};
  // The raw product batchUpdateRate(win) * win is NOT monotone in win: on a
  // segment where the interpolated rate r(w) = a + b*ln(w) falls steeply
  // (b < 0), the product f(w) = r(w)*w has derivative r(w) + b, which goes
  // negative once r(w) < -b — f peaks at w* = exp(-1 - a/b) and then dips
  // below values already reached at smaller windows. A longer window cannot
  // dirty fewer bytes, so return the running maximum of f over (0, win]:
  // the raw product at win, every knot product at or below win, and each
  // covered segment's interior peak.
  double best = (batchUpdateRate(win) * win).bytes();
  for (size_t i = 0; i + 1 < curve_.size(); ++i) {
    const double w0 = curve_[i].window.secs();
    if (w0 >= win.secs()) break;
    const double w1 = curve_[i + 1].window.secs();
    const double r0 = curve_[i].rate.bytesPerSec();
    const double r1 = curve_[i + 1].rate.bytesPerSec();
    best = std::max(best, r0 * w0);
    const double b = (r1 - r0) / std::log(w1 / w0);
    if (b < 0.0) {
      const double a = r0 - b * std::log(w0);
      const double wStar = std::exp(-1.0 - a / b);
      const double hi = std::min(w1, win.secs());
      if (wStar > w0 && wStar < hi) {
        best = std::max(best, (a + b * std::log(wStar)) * wStar);
      }
    }
  }
  return std::min(Bytes{best}, dataCap_);
}

}  // namespace stordep
