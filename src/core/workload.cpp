#include "core/workload.hpp"

#include <algorithm>
#include <cmath>

namespace stordep {

WorkloadSpec::WorkloadSpec(std::string name, Bytes dataCap,
                           Bandwidth avgAccessRate, Bandwidth avgUpdateRate,
                           double burstMultiplier,
                           std::vector<BatchUpdatePoint> batchCurve)
    : name_(std::move(name)),
      dataCap_(dataCap),
      avgAccessR_(avgAccessRate),
      avgUpdateR_(avgUpdateRate),
      burstM_(burstMultiplier),
      curve_(std::move(batchCurve)) {
  if (!(dataCap_.bytes() > 0)) {
    throw WorkloadError("workload '" + name_ + "': dataCap must be positive");
  }
  if (avgAccessR_.bytesPerSec() < 0 || avgUpdateR_.bytesPerSec() < 0) {
    throw WorkloadError("workload '" + name_ + "': rates must be non-negative");
  }
  if (avgUpdateR_ > avgAccessR_) {
    throw WorkloadError("workload '" + name_ +
                        "': avgUpdateR cannot exceed avgAccessR");
  }
  if (burstM_ < 1.0) {
    throw WorkloadError("workload '" + name_ + "': burstM must be >= 1");
  }
  for (size_t i = 0; i < curve_.size(); ++i) {
    if (!(curve_[i].window.secs() > 0)) {
      throw WorkloadError("workload '" + name_ +
                          "': batch curve windows must be positive");
    }
    if (curve_[i].rate.bytesPerSec() < 0) {
      throw WorkloadError("workload '" + name_ +
                          "': batch curve rates must be non-negative");
    }
    if (curve_[i].rate > avgUpdateR_ * (1.0 + 1e-9)) {
      throw WorkloadError("workload '" + name_ +
                          "': unique update rate cannot exceed avgUpdateR");
    }
    if (i > 0) {
      if (!(curve_[i].window > curve_[i - 1].window)) {
        throw WorkloadError("workload '" + name_ +
                            "': batch curve windows must strictly increase");
      }
      if (curve_[i].rate > curve_[i - 1].rate * (1.0 + 1e-9)) {
        throw WorkloadError("workload '" + name_ +
                            "': batch curve rates must be non-increasing");
      }
    }
  }
}

Bandwidth WorkloadSpec::batchUpdateRate(Duration win) const {
  if (!(win.secs() > 0)) {
    // Degenerate window: every update is unique; peak coalescing is none.
    return avgUpdateR_;
  }
  if (curve_.empty()) return avgUpdateR_;
  if (win <= curve_.front().window) {
    return std::min(avgUpdateR_, curve_.front().rate);
  }
  if (win >= curve_.back().window) return curve_.back().rate;

  // log-space linear interpolation between the bracketing points.
  const auto upper = std::lower_bound(
      curve_.begin(), curve_.end(), win,
      [](const BatchUpdatePoint& p, Duration w) { return p.window < w; });
  const auto lower = upper - 1;
  const double x0 = std::log(lower->window.secs());
  const double x1 = std::log(upper->window.secs());
  const double x = std::log(win.secs());
  const double t = (x - x0) / (x1 - x0);
  const double rate =
      lower->rate.bytesPerSec() +
      t * (upper->rate.bytesPerSec() - lower->rate.bytesPerSec());
  return Bandwidth{rate};
}

Bytes WorkloadSpec::uniqueBytes(Duration win) const {
  if (win.isInfinite()) return dataCap_;
  const Bytes raw = batchUpdateRate(win) * win;
  return std::min(raw, dataCap_);
}

}  // namespace stordep
