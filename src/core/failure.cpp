#include "core/failure.hpp"

namespace stordep {

Location Location::at(std::string site, std::string building,
                      std::string region) {
  Location loc;
  loc.building = building.empty() ? site : std::move(building);
  loc.region = region.empty() ? site : std::move(region);
  loc.site = std::move(site);
  return loc;
}

std::string toString(FailureScope scope) {
  switch (scope) {
    case FailureScope::kDataObject:
      return "data object";
    case FailureScope::kArray:
      return "array";
    case FailureScope::kBuilding:
      return "building";
    case FailureScope::kSite:
      return "site";
    case FailureScope::kRegion:
      return "region";
  }
  return "unknown";
}

bool FailureScenario::destroys(const std::string& deviceName,
                               const Location& loc) const {
  switch (scope) {
    case FailureScope::kDataObject:
      return false;
    case FailureScope::kArray:
      return deviceName == target;
    case FailureScope::kBuilding:
      return loc.building == target;
    case FailureScope::kSite:
      return loc.site == target;
    case FailureScope::kRegion:
      return loc.region == target;
  }
  return false;
}

FailureScenario FailureScenario::objectFailure(Duration targetAge,
                                               Bytes objectSize) {
  return FailureScenario{.scope = FailureScope::kDataObject,
                         .target = {},
                         .recoveryTargetAge = targetAge,
                         .recoverySize = objectSize};
}

FailureScenario FailureScenario::arrayFailure(std::string deviceName) {
  return FailureScenario{.scope = FailureScope::kArray,
                         .target = std::move(deviceName),
                         .recoveryTargetAge = Duration::zero(),
                         .recoverySize = std::nullopt};
}

FailureScenario FailureScenario::buildingFailure(std::string building) {
  return FailureScenario{.scope = FailureScope::kBuilding,
                         .target = std::move(building),
                         .recoveryTargetAge = Duration::zero(),
                         .recoverySize = std::nullopt};
}

FailureScenario FailureScenario::siteDisaster(std::string site) {
  return FailureScenario{.scope = FailureScope::kSite,
                         .target = std::move(site),
                         .recoveryTargetAge = Duration::zero(),
                         .recoverySize = std::nullopt};
}

FailureScenario FailureScenario::regionDisaster(std::string region) {
  return FailureScenario{.scope = FailureScope::kRegion,
                         .target = std::move(region),
                         .recoverySize = std::nullopt};
}

}  // namespace stordep
