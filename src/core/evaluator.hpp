// evaluator.hpp — the framework's top-level entry point.
//
// evaluate(design, scenario) composes all sub-models (paper Sec 3.3) and
// returns the four output metrics: normal-mode utilization, worst-case
// recovery time, worst-case recent data loss, and overall cost, together
// with the full supporting detail (per-device utilizations, recovery
// timeline, per-technique outlays, convention warnings).
#pragma once

#include <vector>

#include "core/cost.hpp"
#include "core/data_loss.hpp"
#include "core/hierarchy.hpp"
#include "core/recovery.hpp"
#include "core/utilization.hpp"

namespace stordep {

struct EvaluationResult {
  UtilizationResult utilization;
  RecoveryResult recovery;
  CostResult cost;
  /// Per-level loss assessments (diagnostic view of the source choice).
  std::vector<LevelLossAssessment> levelAssessments;
  /// Soft convention violations from the design (paper Sec 3.2.1).
  std::vector<std::string> warnings;
  /// Whether the design meets the business RTO/RPO (always true when no
  /// objectives are set).
  bool meetsObjectives = false;
};

[[nodiscard]] EvaluationResult evaluate(const StorageDesign& design,
                                        const FailureScenario& scenario);

/// The scenario-independent share of an evaluation: normal-mode utilization,
/// outlay attribution, and convention warnings depend only on the design.
/// Evaluating one design under many scenarios (the optimizer's inner loop)
/// needs them exactly once; precompute them here and pass the result to the
/// three-argument evaluate(). The composed EvaluationResult is bit-identical
/// to the plain evaluate(design, scenario).
struct DesignPrecomputation {
  UtilizationResult utilization;
  std::vector<TechniqueOutlay> outlays;
  std::vector<std::string> warnings;
};

[[nodiscard]] DesignPrecomputation precomputeDesign(const StorageDesign& design);

[[nodiscard]] EvaluationResult evaluate(const StorageDesign& design,
                                        const FailureScenario& scenario,
                                        const DesignPrecomputation& precomputed);

/// The scalar core of an EvaluationResult: every field the optimizer's
/// candidate fold and the dependability reports actually rank on, as a flat
/// trivially-copyable record (no strings, no vectors). This is the output
/// type of the plan-based fast path (engine/plan.hpp); summarizeEvaluation()
/// projects a full legacy result onto it so the two paths can be compared
/// field-for-field (the plan-vs-legacy differential oracle) and so callers
/// can fall back to the legacy evaluator transparently.
struct EvaluationMetrics {
  bool utilizationFeasible = false;
  bool recoverable = false;
  bool meetsObjectives = false;
  /// Chosen recovery source level; -1 when no surviving level has an RP.
  int sourceLevel = -1;
  Duration recoveryTime = Duration::infinite();
  Duration dataLoss = Duration::infinite();
  Bytes payload{0};
  Money totalOutlays = Money::zero();
  Money outagePenalty = Money::zero();
  Money lossPenalty = Money::zero();
  Money totalPenalties = Money::zero();
  Money totalCost = Money::zero();
};

[[nodiscard]] EvaluationMetrics summarizeEvaluation(
    const EvaluationResult& result);

}  // namespace stordep
