#include "core/units.hpp"

#include <array>
#include <cctype>
#include <cstdio>
#include <ostream>
#include <string_view>
#include <vector>

namespace stordep {

namespace {

/// Formats a double with up to `prec` significant-looking decimals, trimming
/// trailing zeros ("2.40" -> "2.4", "12.00" -> "12").
std::string trimmedFixed(double value, int prec) {
  std::array<char, 64> buf{};
  std::snprintf(buf.data(), buf.size(), "%.*f", prec, value);
  std::string s = buf.data();
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

struct UnitDef {
  std::string_view name;
  double factor;
};

// Longest-match-first unit tables for the parsers.
constexpr std::array<UnitDef, 12> kByteUnits{{
    {"bytes", 1.0},
    {"byte", 1.0},
    {"KiB", Bytes::kKB},
    {"MiB", Bytes::kMB},
    {"GiB", Bytes::kGB},
    {"TiB", Bytes::kTB},
    {"KB", Bytes::kKB},
    {"MB", Bytes::kMB},
    {"GB", Bytes::kGB},
    {"TB", Bytes::kTB},
    {"B", 1.0},
    {"b", 1.0},
}};

constexpr std::array<UnitDef, 18> kTimeUnits{{
    {"seconds", 1.0},
    {"second", 1.0},
    {"secs", 1.0},
    {"sec", 1.0},
    {"s", 1.0},
    {"minutes", Duration::kMinute},
    {"minute", Duration::kMinute},
    {"mins", Duration::kMinute},
    {"min", Duration::kMinute},
    {"hours", Duration::kHour},
    {"hour", Duration::kHour},
    {"hrs", Duration::kHour},
    {"hr", Duration::kHour},
    {"days", Duration::kDay},
    {"day", Duration::kDay},
    {"weeks", Duration::kWeek},
    {"week", Duration::kWeek},
    {"wk", Duration::kWeek},
}};

// Suffixes not covered by the table above (checked after it).
constexpr std::array<UnitDef, 4> kTimeUnitsExtra{{
    {"wks", Duration::kWeek},
    {"years", Duration::kYear},
    {"year", Duration::kYear},
    {"yr", Duration::kYear},
}};

std::string_view stripSpace(std::string_view s) {
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.front()))) {
    s.remove_prefix(1);
  }
  while (!s.empty() && std::isspace(static_cast<unsigned char>(s.back()))) {
    s.remove_suffix(1);
  }
  return s;
}

/// Parses "<number> <unit>" against a unit table. Returns value in base units.
template <typename Table>
double parseWithUnits(std::string_view text, const Table& table,
                      const char* kind) {
  std::string_view s = stripSpace(text);
  if (s.empty()) throw ParseError(std::string("empty ") + kind + " literal");

  size_t i = 0;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '.' ||
          s[i] == '-' || s[i] == '+' || s[i] == 'e' || s[i] == 'E')) {
    // Don't swallow unit letters that happen to be 'e'/'E' starts: require the
    // char after 'e' to be a digit or sign for it to be an exponent.
    if ((s[i] == 'e' || s[i] == 'E')) {
      if (i + 1 >= s.size() ||
          (!std::isdigit(static_cast<unsigned char>(s[i + 1])) &&
           s[i + 1] != '-' && s[i + 1] != '+')) {
        break;
      }
    }
    ++i;
  }
  const std::string num{s.substr(0, i)};
  if (num.empty()) {
    throw ParseError(std::string("missing number in ") + kind + " literal '" +
                     std::string(s) + "'");
  }
  double value = 0;
  try {
    size_t pos = 0;
    value = std::stod(num, &pos);
    if (pos != num.size()) throw std::invalid_argument(num);
  } catch (const std::exception&) {
    throw ParseError(std::string("bad number '") + num + "' in " + kind +
                     " literal");
  }

  std::string_view unit = stripSpace(s.substr(i));
  if (unit.empty()) return value;  // bare number -> base units
  for (const auto& u : table) {
    if (unit == u.name) return value * u.factor;
  }
  throw ParseError(std::string("unknown ") + kind + " unit '" +
                   std::string(unit) + "'");
}

double parseTimeTerm(std::string_view term) {
  std::string_view s = stripSpace(term);
  // Check the extra table first by suffix match attempt; simplest correct
  // approach: try the main table, fall back to the extra one.
  try {
    return parseWithUnits(s, kTimeUnits, "duration");
  } catch (const ParseError&) {
    return parseWithUnits(s, kTimeUnitsExtra, "duration");
  }
}

}  // namespace

std::string toString(Bytes b) {
  if (b.isInfinite()) return "inf B";
  const double v = b.bytes();
  if (v >= Bytes::kTB) return trimmedFixed(b.terabytes(), 2) + " TB";
  if (v >= Bytes::kGB) return trimmedFixed(b.gigabytes(), 2) + " GB";
  if (v >= Bytes::kMB) return trimmedFixed(b.megabytes(), 2) + " MB";
  if (v >= Bytes::kKB) return trimmedFixed(b.kilobytes(), 2) + " KB";
  return trimmedFixed(v, 0) + " B";
}

std::string toString(Duration d) {
  if (d.isInfinite()) return "inf";
  const double v = d.secs();
  if (v >= Duration::kYear) return trimmedFixed(d.yrs(), 2) + " yr";
  if (v >= Duration::kWeek) return trimmedFixed(d.wks(), 2) + " wk";
  if (v >= Duration::kDay) return trimmedFixed(d.dys(), 2) + " days";
  if (v >= Duration::kHour) return trimmedFixed(d.hrs(), 2) + " hr";
  if (v >= Duration::kMinute) return trimmedFixed(d.minutes(), 2) + " min";
  return trimmedFixed(v, 3) + " s";
}

std::string toString(Bandwidth bw) {
  if (bw.isInfinite()) return "inf MB/s";
  const double v = bw.bytesPerSec();
  if (v >= Bytes::kMB) return trimmedFixed(bw.mbPerSec(), 2) + " MB/s";
  if (v >= Bytes::kKB) return trimmedFixed(bw.kbPerSec(), 2) + " KB/s";
  return trimmedFixed(v, 1) + " B/s";
}

std::string toString(Money m) {
  const double v = m.usd();
  if (std::fabs(v) >= 1e6) return "$" + trimmedFixed(v / 1e6, 2) + "M";
  if (std::fabs(v) >= 1e3) return "$" + trimmedFixed(v / 1e3, 1) + "K";
  return "$" + trimmedFixed(v, 2);
}

std::string toString(MoneyRate r) {
  return "$" + trimmedFixed(r.usdPerHour(), 2) + "/hr";
}

std::ostream& operator<<(std::ostream& os, Bytes b) { return os << toString(b); }
std::ostream& operator<<(std::ostream& os, Duration d) {
  return os << toString(d);
}
std::ostream& operator<<(std::ostream& os, Bandwidth bw) {
  return os << toString(bw);
}
std::ostream& operator<<(std::ostream& os, Money m) { return os << toString(m); }
std::ostream& operator<<(std::ostream& os, MoneyRate r) {
  return os << toString(r);
}

Bytes parseBytes(const std::string& text) {
  return Bytes{parseWithUnits(text, kByteUnits, "bytes")};
}

Duration parseDuration(const std::string& text) {
  // Support compound literals like the paper's "4 wk + 12 hr".
  std::string_view s{text};
  double total = 0;
  size_t start = 0;
  const std::string& t = text;
  for (size_t i = 0; i <= t.size(); ++i) {
    if (i == t.size() || t[i] == '+') {
      std::string_view term = std::string_view(t).substr(start, i - start);
      if (stripSpace(term).empty()) {
        throw ParseError("empty term in duration literal '" + text + "'");
      }
      total += parseTimeTerm(term);
      start = i + 1;
    }
  }
  (void)s;
  return Duration{total};
}

Bandwidth parseBandwidth(const std::string& text) {
  // Forms: "<bytes>/s", "<bytes>/sec", "155 Mbps".
  std::string_view s = stripSpace(std::string_view{text});
  if (s.ends_with("Mbps")) {
    std::string num{stripSpace(s.substr(0, s.size() - 4))};
    try {
      return megabitsPerSec(std::stod(num));
    } catch (const std::exception&) {
      throw ParseError("bad Mbps literal '" + text + "'");
    }
  }
  const size_t slash = s.rfind('/');
  if (slash == std::string_view::npos) {
    throw ParseError("bandwidth literal '" + text + "' missing '/s'");
  }
  const std::string_view denom = stripSpace(s.substr(slash + 1));
  if (denom != "s" && denom != "sec" && denom != "second") {
    throw ParseError("bandwidth literal '" + text + "' must be per-second");
  }
  const Bytes b = parseBytes(std::string{s.substr(0, slash)});
  return Bandwidth{b.bytes()};
}

Money parseMoney(const std::string& text) {
  std::string_view s = stripSpace(std::string_view{text});
  if (!s.empty() && s.front() == '$') s.remove_prefix(1);
  double scale = 1.0;
  if (!s.empty() && (s.back() == 'M' || s.back() == 'm')) {
    scale = 1e6;
    s.remove_suffix(1);
  } else if (!s.empty() && (s.back() == 'K' || s.back() == 'k')) {
    scale = 1e3;
    s.remove_suffix(1);
  }
  try {
    std::string num{stripSpace(s)};
    size_t pos = 0;
    const double v = std::stod(num, &pos);
    if (pos != num.size()) throw std::invalid_argument(num);
    return Money{v * scale};
  } catch (const std::exception&) {
    throw ParseError("bad money literal '" + text + "'");
  }
}

}  // namespace stordep
