#include "core/degraded.hpp"

#include <algorithm>

#include "core/propagation.hpp"

namespace stordep {

Duration degradedExtraStaleness(const StorageDesign& design, int level,
                                const std::vector<TechniqueOutage>& outages) {
  Duration extra = Duration::zero();
  for (const TechniqueOutage& outage : outages) {
    if (outage.level <= 0 || outage.level >= design.levelCount()) {
      throw DesignError("technique outage references level " +
                        std::to_string(outage.level) +
                        " which is not a protection level");
    }
    if (outage.elapsed.secs() < 0) {
      throw DesignError("technique outage elapsed time must be >= 0");
    }
    // Everything at or above the broken level stops receiving fresh RPs;
    // concurrent outages do not add up — the stalest link dominates.
    if (outage.level <= level) {
      extra = std::max(extra, outage.elapsed);
    }
  }
  return extra;
}

LevelLossAssessment assessLevelDegraded(
    const StorageDesign& design, int level, const FailureScenario& scenario,
    const std::vector<TechniqueOutage>& outages) {
  LevelLossAssessment out = assessLevel(design, level, scenario);
  if (level == 0) return out;  // the live primary is not an RP consumer
  const Duration extra = degradedExtraStaleness(design, level, outages);
  if (extra == Duration::zero()) return out;
  if (out.lossCase == LossCase::kLevelDestroyed) return out;

  // Every RP at (or flowing through) the broken level carries data that is
  // `extra` staler: the whole guaranteed range shifts into the past.
  out.range.youngestAge += extra;
  out.range.oldestAge += extra;
  const Duration targetAge = scenario.recoveryTargetAge;
  const Duration lag = rpTimeLag(design, level) + extra;

  if (targetAge < lag) {
    out.lossCase = LossCase::kNotYetPropagated;
    out.dataLoss = lag - targetAge;
  } else if (targetAge <= out.range.oldestAge) {
    out.lossCase = LossCase::kWithinRange;
    out.dataLoss = design.level(level).policy()->effectiveAccW();
  } else {
    out.lossCase = LossCase::kTooOld;
    out.dataLoss = Duration::infinite();
  }
  return out;
}

std::optional<LevelLossAssessment> chooseDegradedSource(
    const StorageDesign& design, const FailureScenario& scenario,
    const std::vector<TechniqueOutage>& outages) {
  std::optional<LevelLossAssessment> best;
  for (int level = 0; level < design.levelCount(); ++level) {
    const LevelLossAssessment a =
        assessLevelDegraded(design, level, scenario, outages);
    if (!a.dataLoss.isFinite()) continue;
    if (!best || a.dataLoss < best->dataLoss) best = a;
  }
  return best;
}

RecoveryResult computeDegradedRecovery(
    const StorageDesign& design, const FailureScenario& scenario,
    const std::vector<TechniqueOutage>& outages) {
  const auto source = chooseDegradedSource(design, scenario, outages);
  if (!source) {
    RecoveryResult result;
    result.notes.push_back(
        "no surviving level retains an RP for the recovery target under the "
        "imposed technique outages: the data object is lost");
    return result;
  }
  return recoverFrom(design, scenario, *source);
}

Duration catchUpTime(const StorageDesign& design, int level,
                     Duration outageElapsed) {
  if (level <= 0 || level >= design.levelCount()) {
    throw DesignError("catchUpTime: level " + std::to_string(level) +
                      " is not a protection level");
  }
  if (outageElapsed.secs() < 0) {
    throw DesignError("catchUpTime: elapsed time must be >= 0");
  }
  const Technique& tech = design.level(level);
  const ProtectionPolicy& pol = *tech.policy();

  // Backlog: the unique updates accumulated over the outage plus the
  // window that was in flight when it began.
  const Bytes backlog =
      design.workload().uniqueBytes(outageElapsed + pol.effectiveAccW());

  // Inbound bandwidth: the tightest surviving pipe among the devices this
  // level writes during normal propagation (its own normal-mode demand
  // pattern tells us which devices those are).
  Bandwidth inbound = Bandwidth::infinite();
  for (const auto& pd : tech.normalModeDemands(design.workload())) {
    if (pd.device->isTransport() || pd.demand.capacity.bytes() > 0 ||
        pd.demand.bandwidth.bytesPerSec() > 0) {
      const Bandwidth avail = availableBandwidth(
          design, pd.device, backlog, /*fresh=*/false, /*scenario=*/nullptr);
      if (avail.bytesPerSec() > 0) inbound = std::min(inbound, avail);
    }
  }
  if (inbound.isInfinite() || inbound.bytesPerSec() <= 0) {
    // Levels with no bandwidth-constrained path (e.g., vaulting rides
    // shipments): one cycle re-establishes protection.
    return pol.cyclePeriod();
  }
  return backlog / inbound;
}

std::vector<CoverageCell> protectionCoverage(
    const StorageDesign& design,
    const std::vector<std::pair<std::string, FailureScenario>>& scenarios,
    Duration elapsed) {
  std::vector<CoverageCell> out;
  for (int down = 1; down < design.levelCount(); ++down) {
    const std::vector<TechniqueOutage> outages{{down, elapsed}};
    for (const auto& [name, scenario] : scenarios) {
      CoverageCell cell;
      cell.downLevel = down;
      cell.downName = design.level(down).name();
      cell.scenarioName = name;
      const RecoveryResult healthy = computeRecovery(design, scenario);
      const RecoveryResult degraded =
          computeDegradedRecovery(design, scenario, outages);
      cell.recoverable = degraded.recoverable;
      cell.dataLoss = degraded.dataLoss;
      cell.recoveryTime = degraded.recoveryTime;
      cell.sourceLevel = degraded.sourceLevel;
      if (healthy.recoverable && degraded.recoverable) {
        cell.lossIncrease = degraded.dataLoss - healthy.dataLoss;
      } else if (healthy.recoverable) {
        cell.lossIncrease = Duration::infinite();
      }
      out.push_back(std::move(cell));
    }
  }
  return out;
}

}  // namespace stordep
