// failure.hpp — failure scenarios and recovery goals (paper Sec 3.1.3).
//
// The framework evaluates dependability under one imposed failure scenario at
// a time (the business-continuity community designs against hypothesized
// disasters, not failure-frequency-weighted averages). A scenario is a
// *failure scope* — which set of device locations is wiped out — plus a
// *recovery target*: the point in time to which restoration is requested,
// expressed as an age relative to "now" (0 = the instant before the failure).
#pragma once

#include <optional>
#include <string>

#include "core/units.hpp"

namespace stordep {

/// Physical placement of a device; failure scopes knock out matching sets.
struct Location {
  std::string site;      ///< e.g. "primary-site", "recovery-facility"
  std::string building;  ///< e.g. "bldg-1"; defaults to site when empty
  std::string region;    ///< e.g. "west-coast"; defaults to site when empty

  /// Convenience: a location where building and region default sensibly.
  [[nodiscard]] static Location at(std::string site,
                                   std::string building = {},
                                   std::string region = {});

  friend bool operator==(const Location&, const Location&) = default;
};

/// What is destroyed by the failure (paper Table 1, "failure scope").
enum class FailureScope {
  kDataObject,  ///< object corrupted (user/software error); no hardware lost
  kArray,       ///< one named device fails
  kBuilding,    ///< every device in a building fails
  kSite,        ///< every device on a site fails
  kRegion,      ///< every device in a geographic region fails
};

[[nodiscard]] std::string toString(FailureScope scope);

/// An imposed failure scenario.
struct FailureScenario {
  FailureScope scope = FailureScope::kArray;
  /// Scope target: device name for kArray; building/site/region name for the
  /// wider scopes; unused for kDataObject.
  std::string target;
  /// Age of the requested restoration point. Zero means "now" (just before
  /// the failure); a positive value is used for user-error rollback (the
  /// case study rolls a corrupted object back 24 hours).
  Duration recoveryTargetAge = Duration::zero();
  /// For kDataObject failures, the amount of data to restore (the case study
  /// restores a single 1 MB object). Unset means the entire data object.
  std::optional<Bytes> recoverySize;

  /// Field-wise equality; lets batch evaluation dedup adjacent identical
  /// scenarios when hoisting fingerprints out of the per-slot loop.
  friend bool operator==(const FailureScenario&,
                         const FailureScenario&) = default;

  /// True if a device at `loc` named `deviceName` is destroyed.
  [[nodiscard]] bool destroys(const std::string& deviceName,
                              const Location& loc) const;

  // -- Named constructors matching the case study -------------------------
  [[nodiscard]] static FailureScenario objectFailure(Duration targetAge,
                                                     Bytes objectSize);
  [[nodiscard]] static FailureScenario arrayFailure(std::string deviceName);
  [[nodiscard]] static FailureScenario buildingFailure(std::string building);
  [[nodiscard]] static FailureScenario siteDisaster(std::string site);
  [[nodiscard]] static FailureScenario regionDisaster(std::string region);
};

}  // namespace stordep
