#include "core/policy.hpp"

#include <algorithm>

namespace stordep {

std::string toString(Representation rep) {
  return rep == Representation::kFull ? "full" : "partial";
}

ProtectionPolicy::ProtectionPolicy(WindowSpec windows, int retentionCount,
                                   Duration retentionWindow,
                                   Representation copyRep)
    : primary_(windows),
      secondary_(std::nullopt),
      cycleCount_(0),
      cyclePeriod_(windows.accW),
      retentionCount_(retentionCount),
      retentionWindow_(retentionWindow),
      copyRep_(copyRep) {
  checkBasics();
}

ProtectionPolicy::ProtectionPolicy(WindowSpec primary, WindowSpec secondary,
                                   int cycleCount, Duration cyclePeriod,
                                   int retentionCount, Duration retentionWindow,
                                   Representation copyRep)
    : primary_(primary),
      secondary_(secondary),
      cycleCount_(cycleCount),
      cyclePeriod_(cyclePeriod),
      retentionCount_(retentionCount),
      retentionWindow_(retentionWindow),
      copyRep_(copyRep) {
  if (cycleCount_ <= 0) {
    throw PolicyError("cyclic policy requires cycleCount > 0");
  }
  checkBasics();
  if (!(secondary_->accW.secs() > 0)) {
    throw PolicyError("secondary accumulation window must be positive");
  }
  if (secondary_->propW.secs() < 0 || secondary_->holdW.secs() < 0) {
    throw PolicyError("secondary windows must be non-negative");
  }
  if (cyclePeriod_ < secondary_->accW) {
    throw PolicyError("cycle period shorter than the secondary window");
  }
}

void ProtectionPolicy::checkBasics() const {
  // accW == 0 is meaningful: synchronous mirroring propagates every update
  // immediately (no batching), so its accumulation window is zero.
  if (!(primary_.accW.secs() >= 0)) {
    throw PolicyError("accumulation window must be non-negative");
  }
  if (primary_.propW.secs() < 0 || primary_.holdW.secs() < 0) {
    throw PolicyError("propagation and hold windows must be non-negative");
  }
  if (retentionCount_ < 1) {
    throw PolicyError("retention count must be at least 1");
  }
  if (!(retentionWindow_.secs() >= 0)) {
    throw PolicyError("retention window must be non-negative");
  }
  if (!(cyclePeriod_.secs() >= 0)) {
    throw PolicyError("cycle period must be non-negative");
  }
}

Duration ProtectionPolicy::effectiveAccW() const noexcept {
  if (!secondary_) return primary_.accW;
  return std::min(primary_.accW, secondary_->accW);
}

Duration ProtectionPolicy::worstPropW() const noexcept {
  if (!secondary_) return primary_.propW;
  return std::max(primary_.propW, secondary_->propW);
}

Duration ProtectionPolicy::worstArrivalGap() const noexcept {
  if (!secondary_) return primary_.accW;
  // Last incremental of cycle k arrives at
  //   k*P + cycleCnt*accW_i + holdW + propW_i;
  // the next arrival is cycle (k+1)'s first incremental at
  //   (k+1)*P + accW_i + holdW + propW_i
  // (the full created at (k+1)*P arrives later than that whenever
  // propW_f > accW_i + propW_i - accW_f... the incremental is the earlier
  // of the two in every sane configuration; take the smaller gap of the
  // two candidates to stay a guaranteed bound).
  const Duration toNextIncr =
      cyclePeriod() -
      secondary_->accW * static_cast<double>(cycleCount()) +
      secondary_->accW;
  const Duration toNextFull = cyclePeriod() -
                              (secondary_->accW *
                                   static_cast<double>(cycleCount()) +
                               secondary_->holdW + secondary_->propW) +
                              primary_.holdW + primary_.propW;
  const Duration gap = std::min(toNextIncr, toNextFull);
  return std::max(gap, effectiveAccW());
}

std::vector<std::string> ProtectionPolicy::conventionViolations() const {
  std::vector<std::string> out;
  if (primary_.propW > primary_.accW) {
    out.push_back(
        "propW exceeds accW for the primary representation: the level cannot "
        "keep up with RP production (propW " +
        toString(primary_.propW) + " > accW " + toString(primary_.accW) + ")");
  }
  if (secondary_ && secondary_->propW > secondary_->accW) {
    out.push_back(
        "propW exceeds accW for the secondary representation (propW " +
        toString(secondary_->propW) + " > accW " + toString(secondary_->accW) +
        ")");
  }
  // retW should roughly cover retCnt cycles of RPs; a retention window much
  // shorter than the retained range means the bookkeeping is inconsistent.
  const Duration impliedRange =
      cyclePeriod_ * static_cast<double>(retentionCount_);
  if (retentionWindow_.secs() > 0 &&
      retentionWindow_ < impliedRange * (1.0 / 2.0)) {
    out.push_back("retention window " + toString(retentionWindow_) +
                  " is much shorter than retCnt*cyclePer = " +
                  toString(impliedRange));
  }
  return out;
}

}  // namespace stordep
