#include "casestudy/casestudy.hpp"

#include "core/techniques/backup.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "core/techniques/snapshot.hpp"
#include "core/techniques/split_mirror.hpp"
#include "core/techniques/vaulting.hpp"
#include "devices/catalog.hpp"

namespace stordep::casestudy {

namespace {

/// Common device kit for the tape-based designs.
struct TapeKit {
  std::shared_ptr<DiskArray> array;
  std::shared_ptr<TapeLibrary> library;
  std::shared_ptr<MediaVault> vault;
  std::shared_ptr<PhysicalShipment> shipment;
};

TapeKit makeTapeKit() {
  return TapeKit{
      .array = catalog::midrangeDiskArray(kPrimaryArrayName,
                                          Location::at(kPrimarySite)),
      .library = catalog::enterpriseTapeLibrary("tape-library",
                                                Location::at(kPrimarySite)),
      .vault = catalog::offsiteTapeVault("tape-vault", Location::at(kVaultSite)),
      .shipment = catalog::overnightAirShipment("air-shipment",
                                                Location::at("in-transit")),
  };
}

ProtectionPolicy splitMirrorPolicy() {
  return ProtectionPolicy(WindowSpec{.accW = hours(12),
                                     .propW = Duration::zero(),
                                     .holdW = Duration::zero(),
                                     .propRep = Representation::kFull},
                          /*retentionCount=*/4, /*retentionWindow=*/days(2));
}

ProtectionPolicy snapshotPolicy() {
  return ProtectionPolicy(WindowSpec{.accW = hours(12),
                                     .propW = Duration::zero(),
                                     .holdW = Duration::zero(),
                                     .propRep = Representation::kPartial},
                          /*retentionCount=*/4, /*retentionWindow=*/days(2),
                          Representation::kPartial);
}

ProtectionPolicy baselineBackupPolicy() {
  return ProtectionPolicy(WindowSpec{.accW = weeks(1),
                                     .propW = hours(48),
                                     .holdW = hours(1),
                                     .propRep = Representation::kFull},
                          /*retentionCount=*/4, /*retentionWindow=*/weeks(4));
}

ProtectionPolicy fullPlusIncrementalBackupPolicy() {
  // Weekly fulls (48 h backup window) with 5 daily cumulative incrementals
  // (24 h accW, 12 h propW), one-week cycle (Table 7 "F+I").
  return ProtectionPolicy(
      /*primary=*/WindowSpec{.accW = weeks(1),
                             .propW = hours(48),
                             .holdW = hours(1),
                             .propRep = Representation::kFull},
      /*secondary=*/
      WindowSpec{.accW = hours(24),
                 .propW = hours(12),
                 .holdW = hours(1),
                 .propRep = Representation::kPartial},
      /*cycleCount=*/5, /*cyclePeriod=*/weeks(1),
      /*retentionCount=*/4, /*retentionWindow=*/weeks(4));
}

ProtectionPolicy dailyFullBackupPolicy() {
  return ProtectionPolicy(WindowSpec{.accW = hours(24),
                                     .propW = hours(12),
                                     .holdW = hours(1),
                                     .propRep = Representation::kFull},
                          /*retentionCount=*/28, /*retentionWindow=*/weeks(4));
}

ProtectionPolicy baselineVaultPolicy() {
  return ProtectionPolicy(WindowSpec{.accW = weeks(4),
                                     .propW = hours(24),
                                     .holdW = weeks(4) + hours(12),
                                     .propRep = Representation::kFull},
                          /*retentionCount=*/39, /*retentionWindow=*/years(3));
}

ProtectionPolicy weeklyVaultPolicy() {
  // Same 3-year retention at weekly granularity: 157 retained fulls.
  return ProtectionPolicy(WindowSpec{.accW = weeks(1),
                                     .propW = hours(24),
                                     .holdW = hours(12),
                                     .propRep = Representation::kFull},
                          /*retentionCount=*/157, /*retentionWindow=*/years(3));
}

ProtectionPolicy asyncBatchPolicy() {
  return ProtectionPolicy(WindowSpec{.accW = minutes(1),
                                     .propW = minutes(1),
                                     .holdW = Duration::zero(),
                                     .propRep = Representation::kPartial},
                          /*retentionCount=*/1,
                          /*retentionWindow=*/minutes(1));
}

/// Assembles a tape-based design: split mirror (or snapshot) + backup +
/// vaulting on the common device kit.
StorageDesign makeTapeDesign(std::string name, bool useSnapshot,
                             BackupStyle backupStyle,
                             ProtectionPolicy backupPolicy,
                             ProtectionPolicy vaultPolicy) {
  const TapeKit kit = makeTapeKit();
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(kit.array));
  if (useSnapshot) {
    levels.push_back(std::make_shared<VirtualSnapshot>("virtual snapshot",
                                                       kit.array,
                                                       snapshotPolicy()));
  } else {
    levels.push_back(std::make_shared<SplitMirror>("split mirror", kit.array,
                                                   splitMirrorPolicy()));
  }
  const Duration backupRetW = backupPolicy.retentionWindow();
  levels.push_back(std::make_shared<Backup>("tape backup", backupStyle,
                                            kit.array, kit.library,
                                            std::move(backupPolicy)));
  levels.push_back(std::make_shared<Vaulting>(
      "remote vaulting", kit.library, kit.vault, kit.shipment,
      std::move(vaultPolicy), backupRetW));
  return StorageDesign(std::move(name), celloWorkload(), requirements(),
                       std::move(levels), recoveryFacility());
}

}  // namespace

WorkloadSpec celloWorkload() {
  return WorkloadSpec(
      "cello workgroup file server", gigabytes(1360), kbPerSec(1028),
      kbPerSec(799), /*burstMultiplier=*/10.0,
      {
          BatchUpdatePoint{minutes(1), kbPerSec(727)},
          BatchUpdatePoint{hours(12), kbPerSec(350)},
          BatchUpdatePoint{hours(24), kbPerSec(317)},
          BatchUpdatePoint{hours(48), kbPerSec(317)},
          BatchUpdatePoint{weeks(1), kbPerSec(317)},
      });
}

BusinessRequirements requirements() { return caseStudyRequirements(); }

RecoveryFacilitySpec recoveryFacility() {
  return RecoveryFacilitySpec{.location = Location::at(kRecoverySite),
                              .provisioningTime = hours(9),
                              .costDiscount = 0.2};
}

StorageDesign baseline() {
  return makeTapeDesign("baseline", /*useSnapshot=*/false,
                        BackupStyle::kFullOnly, baselineBackupPolicy(),
                        baselineVaultPolicy());
}

StorageDesign weeklyVault() {
  return makeTapeDesign("weekly vault", /*useSnapshot=*/false,
                        BackupStyle::kFullOnly, baselineBackupPolicy(),
                        weeklyVaultPolicy());
}

StorageDesign weeklyVaultFullPlusIncremental() {
  return makeTapeDesign("weekly vault, F+I", /*useSnapshot=*/false,
                        BackupStyle::kCumulativeIncremental,
                        fullPlusIncrementalBackupPolicy(),
                        weeklyVaultPolicy());
}

StorageDesign weeklyVaultDailyFull() {
  return makeTapeDesign("weekly vault, daily F", /*useSnapshot=*/false,
                        BackupStyle::kFullOnly, dailyFullBackupPolicy(),
                        weeklyVaultPolicy());
}

StorageDesign weeklyVaultDailyFullSnapshot() {
  return makeTapeDesign("weekly vault, daily F, snapshot",
                        /*useSnapshot=*/true, BackupStyle::kFullOnly,
                        dailyFullBackupPolicy(), weeklyVaultPolicy());
}

StorageDesign asyncBatchMirror(int linkCount) {
  auto array =
      catalog::midrangeDiskArray(kPrimaryArrayName, Location::at(kPrimarySite));
  // The mirror target is a full-price array but carries no dedicated spare
  // (after a disaster the recovery facility provides replacements).
  auto remote = catalog::midrangeDiskArray(
      "mirror-array", Location::at(kMirrorSite), RaidLevel::kRaid1,
      SpareSpec::none());
  auto links = catalog::oc3WanLinks("wan-links", Location::at("wide-area"),
                                    linkCount);
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<RemoteMirror>(
      "async batch mirror", MirrorMode::kAsyncBatch, array, remote, links,
      asyncBatchPolicy()));
  return StorageDesign("asyncB mirror, " + std::to_string(linkCount) +
                           (linkCount == 1 ? " link" : " links"),
                       celloWorkload(), requirements(), std::move(levels),
                       recoveryFacility());
}

std::vector<std::pair<std::string, StorageDesign>> allWhatIfDesigns() {
  std::vector<std::pair<std::string, StorageDesign>> out;
  out.emplace_back("Baseline", baseline());
  out.emplace_back("Weekly vault", weeklyVault());
  out.emplace_back("Weekly vault, F+I", weeklyVaultFullPlusIncremental());
  out.emplace_back("Weekly vault, daily F", weeklyVaultDailyFull());
  out.emplace_back("Weekly vault, daily F, snapshot",
                   weeklyVaultDailyFullSnapshot());
  out.emplace_back("AsyncB mirror, 1 link", asyncBatchMirror(1));
  out.emplace_back("AsyncB mirror, 10 links", asyncBatchMirror(10));
  return out;
}

FailureScenario objectFailure() {
  return FailureScenario::objectFailure(hours(24), megabytes(1));
}

FailureScenario arrayFailure() {
  return FailureScenario::arrayFailure(kPrimaryArrayName);
}

FailureScenario siteDisaster() {
  return FailureScenario::siteDisaster(kPrimarySite);
}

std::vector<FailureMode> defaultFailureModes() {
  return {
      FailureMode{"object corruption", objectFailure(), 12.0},
      FailureMode{"array failure", arrayFailure(), 0.1},
      FailureMode{"site disaster", siteDisaster(), 0.02},
  };
}

}  // namespace stordep::casestudy
