// casestudy.hpp — the paper's Section 4 case study, ready to evaluate.
//
// Encodes the published inputs exactly:
//   Table 2  the `cello` workgroup file-server workload
//   Table 3  the baseline protection policies (split mirror + weekly full
//            tape backup + 4-weekly vaulting)
//   Table 4  the device configurations (EVA-like array, ESL-like library,
//            tape vault, overnight air shipment)
// plus the six what-if designs of Table 7 and the three failure scenarios
// (object / array / site) the paper evaluates.
//
// Site topology: the primary array and tape library live at kPrimarySite;
// vaulted media at kVaultSite; remote-mirror targets at kMirrorSite; and a
// shared recovery facility (9 h provisioning, 20% of dedicated cost) at
// kRecoverySite.
#pragma once

#include <string>
#include <utility>
#include <vector>

#include "core/evaluator.hpp"
#include "core/hierarchy.hpp"
#include "core/risk.hpp"

namespace stordep::casestudy {

inline constexpr const char* kPrimarySite = "primary-site";
inline constexpr const char* kVaultSite = "vault-site";
inline constexpr const char* kMirrorSite = "mirror-site";
inline constexpr const char* kRecoverySite = "recovery-site";
inline constexpr const char* kPrimaryArrayName = "primary-array";

/// Table 2: the cello workgroup file-server workload.
[[nodiscard]] WorkloadSpec celloWorkload();

/// $50,000/hour penalty rates for both outage and recent data loss.
[[nodiscard]] BusinessRequirements requirements();

/// Shared recovery facility: 9 h provisioning, 20% of dedicated cost.
[[nodiscard]] RecoveryFacilitySpec recoveryFacility();

// ---- Designs (Table 3 baseline + the Table 7 what-ifs) -------------------

/// Baseline: split mirror (12 h) + weekly full tape backup (48 h window) +
/// 4-weekly vaulting retained 3 years.
[[nodiscard]] StorageDesign baseline();

/// Baseline with weekly vaulting (1 wk accW, 12 h holdW, 24 h propW).
[[nodiscard]] StorageDesign weeklyVault();

/// Weekly vaulting + weekly fulls with 5 daily cumulative incrementals.
[[nodiscard]] StorageDesign weeklyVaultFullPlusIncremental();

/// Weekly vaulting + daily full backups (24 h accW, 12 h propW).
[[nodiscard]] StorageDesign weeklyVaultDailyFull();

/// Daily fulls with virtual snapshots instead of split mirrors.
[[nodiscard]] StorageDesign weeklyVaultDailyFullSnapshot();

/// Asynchronous batch mirroring (1-min batches) over `linkCount` OC-3 links
/// to a remote array, replacing tape backup and vaulting.
[[nodiscard]] StorageDesign asyncBatchMirror(int linkCount);

/// All seven Table 7 rows, in the paper's order, labeled as in the paper.
[[nodiscard]] std::vector<std::pair<std::string, StorageDesign>>
allWhatIfDesigns();

// ---- Failure scenarios -----------------------------------------------------

/// A user mistake corrupts a 1 MB object; roll back to 24 hours ago.
[[nodiscard]] FailureScenario objectFailure();

/// The primary disk array fails; recover everything to "now".
[[nodiscard]] FailureScenario arrayFailure();

/// The whole primary site is lost; recover everything to "now".
[[nodiscard]] FailureScenario siteDisaster();

/// The three scenarios annotated with literature-flavored annual rates for
/// the risk model: operator/software corruption monthly (12/yr), array
/// failure once per decade (0.1/yr), site disaster once per half-century
/// (0.02/yr).
[[nodiscard]] std::vector<FailureMode> defaultFailureModes();

}  // namespace stordep::casestudy
