// sweep.hpp — distributed design-space sweeps over mixed-radix grid ranges.
//
// A cluster-mode /v1/search partitions the cursor's grid-index space
// [0, gridCardinality) into one contiguous range per live member (sizes
// within one point of each other), runs its own range in-process, and
// drives each remote range as a worker-mode /v1/search on that member
// (range-restricted cursor, candidates streamed back as NDJSON with the
// checkpoint journal's exact-double encoding). Merging the per-range
// candidates through optimizer::rankEvaluated reproduces the single-node
// ranking bit for bit, because ranges concatenate to exactly the full
// enumeration (DesignSpaceCursor::restrictTo's contract) and the ranking
// comparison is a total order.
//
// Failure semantics: a range whose worker dies (transport failure, non-200,
// stream without a clean un-cancelled result line) is re-run locally with
// the SAME per-range checkpoint path, so work the dead worker journaled
// before dying is restored, not recomputed — this assumes the loopback /
// shared-filesystem deployment the CI cluster exercises; without a shared
// checkpoint directory the fallback recomputes the range from scratch,
// which is slower but produces the identical ranking. Partially streamed
// candidates from a failed worker are discarded (the local re-run covers
// the whole range) so nothing is double-counted.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "cluster/membership.hpp"
#include "engine/batch.hpp"
#include "service/cluster_hooks.hpp"

namespace stordep::cluster {

/// Splits [0, total) into `parts` contiguous ranges with sizes differing by
/// at most one; concatenating them reproduces [0, total) exactly. Empty
/// ranges are possible when parts > total.
[[nodiscard]] std::vector<std::pair<std::uint64_t, std::uint64_t>>
partitionGrid(std::uint64_t total, std::size_t parts);

/// Per-range checkpoint journal path under `dir`.
[[nodiscard]] std::string rangeCheckpointPath(const std::string& dir,
                                              std::uint64_t begin,
                                              std::uint64_t end);

/// Runs one distributed sweep. `members` are the live members to partition
/// across (sorted by id, self included — the caller snapshots them once so
/// the partition is stable for the sweep's lifetime). Blocks until every
/// range is merged. `onProgress` receives cumulative finished-candidate
/// counts and may be called from several range threads.
[[nodiscard]] optimizer::SearchResult runClusterSweep(
    const std::string& selfId, std::vector<MemberInfo> members,
    const service::ClusterSearchParams& params,
    const std::function<void(std::size_t done)>& onProgress,
    engine::CancellationToken token);

}  // namespace stordep::cluster
