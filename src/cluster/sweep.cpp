#include "cluster/sweep.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <optional>
#include <thread>

#include "casestudy/casestudy.hpp"
#include "config/json.hpp"
#include "optimizer/checkpoint.hpp"
#include "service/resilience/resilient_client.hpp"

namespace stordep::cluster {

using config::Json;
using config::JsonObject;

std::vector<std::pair<std::uint64_t, std::uint64_t>> partitionGrid(
    std::uint64_t total, std::size_t parts) {
  std::vector<std::pair<std::uint64_t, std::uint64_t>> ranges;
  if (parts == 0) return ranges;
  ranges.reserve(parts);
  for (std::size_t i = 0; i < parts; ++i) {
    const std::uint64_t begin = total * i / parts;
    const std::uint64_t end = total * (i + 1) / parts;
    ranges.emplace_back(begin, end);
  }
  return ranges;
}

std::string rangeCheckpointPath(const std::string& dir, std::uint64_t begin,
                                std::uint64_t end) {
  return dir + "/range_" + std::to_string(begin) + "_" + std::to_string(end) +
         ".jsonl";
}

namespace {

/// Shared accumulator for the cumulative progress counter.
struct SweepProgress {
  std::atomic<std::size_t> done{0};
  const std::function<void(std::size_t)>* onProgress = nullptr;

  void add(std::size_t delta) {
    const std::size_t now = done.fetch_add(delta) + delta;
    if (onProgress != nullptr && *onProgress) (*onProgress)(now);
  }
};

struct RangeOutcome {
  std::vector<optimizer::EvaluatedCandidate> candidates;
  int skipped = 0;
  bool complete = false;
};

/// Evaluates [begin, end) in-process — the coordinator's own range, and the
/// fallback for any range whose worker died. Re-uses the worker's journal
/// path so journaled work is restored rather than recomputed.
RangeOutcome runRangeLocally(std::uint64_t begin, std::uint64_t end,
                             const service::ClusterSearchParams& params,
                             SweepProgress& progress,
                             engine::CancellationToken token) {
  optimizer::DesignSpaceCursor cursor;
  cursor.restrictTo(begin, end);

  optimizer::SearchOptions options = params.search;
  options.token = token;
  options.checkpointPath =
      params.checkpointDir.empty()
          ? std::string{}
          : rangeCheckpointPath(params.checkpointDir, begin, end);
  options.waveDelay = std::chrono::milliseconds{0};  // pacing is worker-side
  options.onCandidates = nullptr;
  std::size_t reported = 0;
  options.onProgress = [&](std::size_t done) {
    progress.add(done - reported);
    reported = done;
  };

  const optimizer::SearchResult result = optimizer::searchDesignSpaceStreaming(
      cursor, casestudy::celloWorkload(), params.business,
      optimizer::caseStudyScenarios(), options);

  RangeOutcome outcome;
  outcome.skipped = result.skipped;
  outcome.complete = !result.cancelled;
  outcome.candidates.reserve(result.ranked.size() + result.rejected.size());
  for (const auto& c : result.ranked) outcome.candidates.push_back(c);
  for (const auto& c : result.rejected) outcome.candidates.push_back(c);
  return outcome;
}

/// Drives one remote range as a worker-mode /v1/search, streaming finished
/// candidates back. nullopt = the worker did not complete the range (the
/// caller re-runs it locally).
std::optional<RangeOutcome> runRangeRemotely(
    const MemberInfo& member, std::uint64_t begin, std::uint64_t end,
    const service::ClusterSearchParams& params, SweepProgress& progress) {
  namespace res = service::resilience;

  Json body{JsonObject{}};
  Json range{JsonObject{}};
  range.set("begin", Json(static_cast<double>(begin)));
  range.set("end", Json(static_cast<double>(end)));
  body.set("range", range);
  body.set("emitCandidates", Json(true));
  body.set("streamChunk",
           Json(static_cast<double>(std::max<std::size_t>(
               1, params.search.streamChunk))));
  if (params.search.waveDelay.count() > 0) {
    body.set("waveDelayMs",
             Json(static_cast<double>(params.search.waveDelay.count())));
  }
  if (!params.checkpointDir.empty()) {
    body.set("checkpointPath",
             Json(rangeCheckpointPath(params.checkpointDir, begin, end)));
  }
  // The RTO/RPO literals round-trip through the same JSON number parser on
  // the worker, so its BusinessRequirements are bit-identical to ours.
  if (!params.rtoHoursLiteral.empty()) {
    body.set("rtoHours", Json::parse(params.rtoHoursLiteral));
  }
  if (!params.rpoHoursLiteral.empty()) {
    body.set("rpoHours", Json::parse(params.rpoHoursLiteral));
  }

  res::ResilientClientOptions copts;
  copts.retry.maxAttempts = 2;
  copts.timeout = std::chrono::milliseconds{300'000};
  copts.connectTimeout = std::chrono::milliseconds{1'000};
  res::ResilientClient client(member.host,
                              static_cast<std::uint16_t>(member.port), copts);

  RangeOutcome outcome;
  bool sawResult = false;
  bool remoteCancelled = false;
  std::size_t sinceProgress = 0;
  const auto onLine = [&](std::string_view line) {
    if (line.empty()) return;
    try {
      const Json parsed = Json::parse(std::string(line));
      if (const Json* candidate = parsed.find("candidate")) {
        outcome.candidates.push_back(
            optimizer::evaluatedCandidateFromJson(*candidate));
        if (++sinceProgress >= std::max<std::size_t>(
                                   1, params.search.streamChunk)) {
          progress.add(sinceProgress);
          sinceProgress = 0;
        }
      } else if (const Json* result = parsed.find("result")) {
        sawResult = true;
        if (const Json* cancelled = result->find("cancelled")) {
          remoteCancelled = cancelled->asBool();
        }
      }
      // progress lines from the worker are ignored: the coordinator
      // reports its own cumulative counter.
    } catch (...) {
      // A torn tail line surfaces as a missing result line below.
    }
  };

  const res::ResilientClient::Result result =
      client.postStreaming("/v1/search", body.dump(), onLine);
  if (sinceProgress > 0) progress.add(sinceProgress);

  const service::HttpClientResponse* response = result.valueIf();
  if (response == nullptr || response->status != 200 || !sawResult ||
      remoteCancelled) {
    return std::nullopt;
  }
  outcome.complete = true;
  return outcome;
}

}  // namespace

optimizer::SearchResult runClusterSweep(
    const std::string& selfId, std::vector<MemberInfo> members,
    const service::ClusterSearchParams& params,
    const std::function<void(std::size_t done)>& onProgress,
    engine::CancellationToken token) {
  const auto start = std::chrono::steady_clock::now();

  // The partition is a pure function of (grid, member list); members were
  // snapshotted by the caller and sorted by id.
  std::sort(members.begin(), members.end(),
            [](const MemberInfo& a, const MemberInfo& b) { return a.id < b.id; });
  if (members.empty()) members.push_back(MemberInfo{selfId, "", 0, {}, {}});

  const std::uint64_t total =
      optimizer::gridCardinality(optimizer::DesignSpaceOptions{});
  const auto ranges = partitionGrid(total, members.size());

  SweepProgress progress;
  progress.onProgress = &onProgress;

  std::vector<RangeOutcome> outcomes(ranges.size());
  std::vector<std::thread> threads;
  threads.reserve(ranges.size());
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    const auto [begin, end] = ranges[i];
    if (begin == end) {
      outcomes[i].complete = true;
      continue;
    }
    const MemberInfo member = members[i];
    threads.emplace_back([&, i, begin, end, member] {
      if (member.id != selfId) {
        if (std::optional<RangeOutcome> remote =
                runRangeRemotely(member, begin, end, params, progress)) {
          outcomes[i] = std::move(*remote);
          return;
        }
        // The worker died or never finished: partial candidates are
        // dropped and the whole range re-runs here, resuming from the
        // range's journal when one is shared.
        if (token.cancelled()) return;
      }
      outcomes[i] = runRangeLocally(begin, end, params, progress, token);
    });
  }
  for (std::thread& t : threads) t.join();

  std::vector<optimizer::EvaluatedCandidate> all;
  int skipped = 0;
  bool incomplete = false;
  for (RangeOutcome& outcome : outcomes) {
    skipped += outcome.skipped;
    if (!outcome.complete) incomplete = true;
    for (auto& candidate : outcome.candidates) {
      all.push_back(std::move(candidate));
    }
  }

  optimizer::SearchResult result = optimizer::rankEvaluated(std::move(all));
  result.skipped = skipped;
  result.cancelled = incomplete || token.cancelled();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  result.wallSeconds = elapsed.count();
  result.candidatesPerSec =
      result.wallSeconds > 0.0
          ? static_cast<double>(result.evaluated) / result.wallSeconds
          : 0.0;
  return result;
}

}  // namespace stordep::cluster
