// ring.hpp — consistent-hash ring over evaluation fingerprints.
//
// Placement substrate for the sharded fleet: every member contributes a
// fixed number of virtual nodes, each a deterministic point on the 64-bit
// ring (engine::ringPoint over fingerprintBytes("<id>#<vnode>")), and a key
// is owned by the member whose point is the first at or clockwise after the
// key's own ring point. Virtual nodes smooth the per-member share (with one
// point per member, a 3-node ring can easily split 70/20/10); 64 points per
// member keeps the imbalance within a few percent while the full ring stays
// small enough to rebuild from scratch on every membership change — rebuild
// is how the ring stays deterministic: the same member set always produces
// bit-identical point tables regardless of join order.
//
// Ties (two members hashing a vnode to the same point) are broken by member
// id so ownership is still a pure function of the member set.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "engine/fingerprint.hpp"

namespace stordep::cluster {

/// Default virtual nodes per member; overridable for tests and via
/// `stordep_serve --cluster-vnodes`.
inline constexpr int kDefaultVnodes = 64;

class HashRing {
 public:
  HashRing() = default;

  /// Rebuilds the ring from scratch for `memberIds` (duplicates ignored).
  /// The result depends only on the *set* of ids, never on their order.
  void rebuild(const std::vector<std::string>& memberIds,
               int vnodesPerMember = kDefaultVnodes);

  /// Owner of `key`: the member whose vnode point is the first >= the key's
  /// ring point, wrapping past the top. Empty string iff the ring is empty.
  [[nodiscard]] const std::string& ownerOf(
      const engine::Fingerprint& key) const;

  [[nodiscard]] bool empty() const noexcept { return points_.empty(); }
  [[nodiscard]] std::size_t pointCount() const noexcept {
    return points_.size();
  }
  [[nodiscard]] std::size_t memberCount() const noexcept { return members_; }

  /// The member ids currently on the ring, sorted (for observability).
  [[nodiscard]] std::vector<std::string> members() const;

 private:
  struct Point {
    std::uint64_t point;
    std::string member;
  };
  std::vector<Point> points_;  // sorted by (point, member)
  std::size_t members_ = 0;
  static const std::string kEmpty;
};

}  // namespace stordep::cluster
