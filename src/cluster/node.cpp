#include "cluster/node.hpp"

#include <algorithm>
#include <chrono>
#include <set>
#include <stdexcept>
#include <utility>

#include "cluster/sweep.hpp"
#include "config/json.hpp"
#include "service/client.hpp"

namespace stordep::cluster {

using config::Json;
using config::JsonArray;
using config::JsonObject;

namespace {

const char* stateName(MemberState state) {
  return state == MemberState::kAlive ? "alive" : "suspect";
}

}  // namespace

ClusterNode::ClusterNode(service::Server& server, ClusterNodeOptions options)
    : server_(server),
      options_(std::move(options)),
      membership_(options_.nodeId, options_.advertiseHost,
                  options_.advertisePort, options_.membership,
                  std::chrono::steady_clock::now()),
      router_(options_.router) {}

ClusterNode::~ClusterNode() { stop(); }

void ClusterNode::start() {
  if (options_.nodeId.empty()) {
    throw std::runtime_error("cluster node requires a non-empty node id");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (started_) return;
    started_ = true;
    // Ephemeral-port servers only know their address after start(); the
    // membership self entry is rebuilt with the resolved advertisement.
    if (options_.advertisePort == 0) {
      options_.advertisePort = static_cast<int>(server_.port());
    }
    membership_ =
        Membership(options_.nodeId, options_.advertiseHost,
                   options_.advertisePort, options_.membership,
                   std::chrono::steady_clock::now());
    lastRingVersion_ = 0;
    maybeRebuildRingLocked();
  }
  server_.attachCluster(this);
  if (options_.enableHeartbeat) {
    heartbeatThread_ = std::thread([this] { heartbeatLoop(); });
  }
}

void ClusterNode::stop() {
  if (stopping_.exchange(true)) {
    server_.shutdown();  // idempotent re-entry: just make sure it is down
    return;
  }
  heartbeatCv_.notify_all();
  // The server's loop thread reads the hooks pointer per request, so the
  // server must be fully down before this node tears anything else apart.
  server_.shutdown();
  if (heartbeatThread_.joinable()) heartbeatThread_.join();
  router_.stop();
  server_.attachCluster(nullptr);
}

void ClusterNode::heartbeatLoop() {
  while (!stopping_.load(std::memory_order_acquire)) {
    gossipOnce();
    std::unique_lock<std::mutex> lock(heartbeatMu_);
    heartbeatCv_.wait_for(lock, options_.membership.heartbeatInterval, [this] {
      return stopping_.load(std::memory_order_acquire);
    });
  }
}

void ClusterNode::gossipOnce() {
  // Snapshot dial targets under the lock, dial without it.
  std::set<std::pair<std::string, int>> targets;
  std::string selfHost;
  int selfPort = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    selfHost = options_.advertiseHost;
    selfPort = options_.advertisePort;
    for (const auto& seed : options_.seeds) targets.insert(seed);
    for (const MemberInfo& m : membership_.snapshot()) {
      if (m.id == options_.nodeId) continue;
      targets.insert({m.host, m.port});
    }
  }
  targets.erase({selfHost, selfPort});

  Json ping{JsonObject{}};
  ping.set("id", Json(options_.nodeId));
  ping.set("host", Json(selfHost));
  ping.set("port", Json(selfPort));
  const std::string pingBody = ping.dump();

  for (const auto& [host, port] : targets) {
    if (stopping_.load(std::memory_order_acquire)) break;
    if (host.empty() || port <= 0) continue;
    try {
      service::Client client(
          host, static_cast<std::uint16_t>(port),
          service::ClientOptions{std::chrono::milliseconds{2'000},
                                 std::chrono::milliseconds{500}});
      const service::HttpClientResponse response =
          client.post("/v1/cluster/ping", pingBody,
                      {{"Content-Type", "application/json"}});
      if (response.status != 200) continue;
      const Json doc = Json::parse(response.body);
      const Json* responderId = doc.find("id");
      const Json* members = doc.find("members");
      if (responderId == nullptr) continue;

      const auto now = std::chrono::steady_clock::now();
      std::lock_guard<std::mutex> lock(mu_);
      // The responder itself answered on (host, port): direct evidence.
      membership_.heardFrom(responderId->asString(), host, port, now);
      if (members != nullptr && members->isArray()) {
        for (const Json& entry : members->asArray()) {
          const Json* id = entry.find("id");
          const Json* mhost = entry.find("host");
          const Json* mport = entry.find("port");
          if (id == nullptr || mhost == nullptr || mport == nullptr) continue;
          if (id->asString() == responderId->asString()) {
            // Prefer the responder's advertised address over the dialed one
            // (a seed entry may be stale).
            membership_.heardFrom(id->asString(), mhost->asString(),
                                  static_cast<int>(mport->asNumber()), now);
          } else {
            // Transitive: learn the member exists, but second-hand gossip
            // never refreshes liveness (membership.hpp::introduce).
            membership_.introduce(id->asString(), mhost->asString(),
                                  static_cast<int>(mport->asNumber()), now);
          }
        }
      }
    } catch (const service::TransportError&) {
      // Unreachable peer: silence is the signal; tick() below handles it.
    } catch (const std::exception&) {
      // Malformed response: ignore this round.
    }
  }

  std::lock_guard<std::mutex> lock(mu_);
  membership_.tick(std::chrono::steady_clock::now());
  maybeRebuildRingLocked();
}

void ClusterNode::maybeRebuildRingLocked() {
  if (membership_.version() == lastRingVersion_) return;
  ring_.rebuild(membership_.ringMemberIds(), options_.vnodes);
  lastRingVersion_ = membership_.version();
}

bool ClusterNode::ownsEvaluation(const engine::Fingerprint& key,
                                 std::string* ownerId) {
  std::lock_guard<std::mutex> lock(mu_);
  if (ring_.empty()) {
    localOwned_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  const std::string& owner = ring_.ownerOf(key);
  if (owner == options_.nodeId) {
    localOwned_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  // Suspect owners stay on the ring (placement must not flap on one missed
  // heartbeat) but are not forwarded to: compute locally instead.
  if (!membership_.isAlive(owner)) {
    localOwned_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
  if (ownerId != nullptr) *ownerId = owner;
  return false;
}

void ClusterNode::forwardEvaluate(
    const std::string& ownerId, const std::string& body,
    std::function<void(service::ForwardReply)> done) {
  std::string host;
  int port = 0;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const std::optional<MemberInfo> info = membership_.find(ownerId);
    if (info.has_value()) {
      host = info->host;
      port = info->port;
    }
  }
  if (host.empty() || port <= 0) {
    // The owner vanished between routing and forwarding; local fallback.
    localFallback_.fetch_add(1, std::memory_order_relaxed);
    done(service::ForwardReply{});
    return;
  }
  router_.forward(host, port, body,
                  [this, done = std::move(done)](service::ForwardReply reply) {
                    if (!reply.ok) {
                      localFallback_.fetch_add(1, std::memory_order_relaxed);
                    }
                    done(std::move(reply));
                  });
}

config::Json ClusterNode::handlePing(const config::Json& body) {
  const Json* id = body.find("id");
  const Json* host = body.find("host");
  const Json* port = body.find("port");

  std::lock_guard<std::mutex> lock(mu_);
  if (id != nullptr && host != nullptr && port != nullptr) {
    membership_.heardFrom(id->asString(), host->asString(),
                          static_cast<int>(port->asNumber()),
                          std::chrono::steady_clock::now());
    maybeRebuildRingLocked();
  }
  Json response{JsonObject{}};
  response.set("id", Json(options_.nodeId));
  response.set("members", membersJsonLocked());
  return response;
}

config::Json ClusterNode::membersJsonLocked() const {
  JsonArray members;
  for (const MemberInfo& m : membership_.snapshot()) {
    Json entry{JsonObject{}};
    entry.set("id", Json(m.id));
    entry.set("host", Json(m.host));
    entry.set("port", Json(m.port));
    entry.set("state", Json(stateName(m.state)));
    members.push_back(std::move(entry));
  }
  return Json(std::move(members));
}

config::Json ClusterNode::membersJson() {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc{JsonObject{}};
  doc.set("node", Json(options_.nodeId));
  doc.set("ringVersion", Json(static_cast<double>(lastRingVersion_)));
  doc.set("members", membersJsonLocked());
  return doc;
}

config::Json ClusterNode::healthJson() {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc{JsonObject{}};
  doc.set("nodeId", Json(options_.nodeId));
  doc.set("ringPoints", Json(static_cast<double>(ring_.pointCount())));
  doc.set("membersAlive",
          Json(static_cast<double>(membership_.aliveCount())));
  doc.set("membersSuspect",
          Json(static_cast<double>(membership_.suspectCount())));
  return doc;
}

config::Json ClusterNode::metricsJson() {
  std::lock_guard<std::mutex> lock(mu_);
  Json doc{JsonObject{}};
  doc.set("nodeId", Json(options_.nodeId));
  doc.set("ringPoints", Json(static_cast<double>(ring_.pointCount())));
  doc.set("membersAlive",
          Json(static_cast<double>(membership_.aliveCount())));
  doc.set("membersSuspect",
          Json(static_cast<double>(membership_.suspectCount())));
  doc.set("evaluateLocal", Json(static_cast<double>(
                               localOwned_.load(std::memory_order_relaxed))));
  doc.set("evaluateForwarded",
          Json(static_cast<double>(router_.forwarded())));
  doc.set("forwardFailures",
          Json(static_cast<double>(router_.forwardFailures())));
  doc.set("localFallbacks",
          Json(static_cast<double>(
              localFallback_.load(std::memory_order_relaxed))));
  return doc;
}

optimizer::SearchResult ClusterNode::clusterSearch(
    const service::ClusterSearchParams& params,
    const std::function<void(std::size_t done)>& onProgress,
    engine::CancellationToken token) {
  std::vector<MemberInfo> members;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const MemberInfo& m : membership_.snapshot()) {
      if (m.state == MemberState::kAlive) members.push_back(m);
    }
  }
  return runClusterSweep(options_.nodeId, std::move(members), params,
                         onProgress, token);
}

}  // namespace stordep::cluster
