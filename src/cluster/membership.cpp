#include "cluster/membership.hpp"

#include <algorithm>

namespace stordep::cluster {

namespace {

// members_ stays sorted by id; lookups are binary searches.
auto lowerBound(std::vector<MemberInfo>& members, const std::string& id) {
  return std::lower_bound(
      members.begin(), members.end(), id,
      [](const MemberInfo& m, const std::string& key) { return m.id < key; });
}

auto lowerBound(const std::vector<MemberInfo>& members, const std::string& id) {
  return std::lower_bound(
      members.begin(), members.end(), id,
      [](const MemberInfo& m, const std::string& key) { return m.id < key; });
}

}  // namespace

Membership::Membership(std::string selfId, std::string selfHost, int selfPort,
                       MembershipOptions options,
                       std::chrono::steady_clock::time_point now)
    : selfId_(std::move(selfId)), options_(options) {
  members_.push_back(MemberInfo{selfId_, std::move(selfHost), selfPort,
                                MemberState::kAlive, now});
}

void Membership::heardFrom(const std::string& id, const std::string& host,
                           int port,
                           std::chrono::steady_clock::time_point now) {
  if (id.empty() || id == selfId_) return;
  auto it = lowerBound(members_, id);
  if (it == members_.end() || it->id != id) {
    members_.insert(it, MemberInfo{id, host, port, MemberState::kAlive, now});
    ++version_;
    return;
  }
  it->host = host;
  it->port = port;
  it->lastHeard = now;
  if (it->state != MemberState::kAlive) {
    it->state = MemberState::kAlive;
    ++version_;
  }
}

void Membership::introduce(const std::string& id, const std::string& host,
                           int port,
                           std::chrono::steady_clock::time_point now) {
  if (id.empty() || id == selfId_) return;
  auto it = lowerBound(members_, id);
  if (it != members_.end() && it->id == id) return;
  members_.insert(it, MemberInfo{id, host, port, MemberState::kAlive, now});
  ++version_;
}

void Membership::tick(std::chrono::steady_clock::time_point now) {
  bool changed = false;
  for (auto it = members_.begin(); it != members_.end();) {
    if (it->id == selfId_) {
      it->lastHeard = now;
      ++it;
      continue;
    }
    const auto silence = now - it->lastHeard;
    if (silence >= options_.evictAfter) {
      it = members_.erase(it);
      changed = true;
      continue;
    }
    if (silence >= options_.suspectAfter &&
        it->state == MemberState::kAlive) {
      it->state = MemberState::kSuspect;
      changed = true;
    }
    ++it;
  }
  if (changed) ++version_;
}

std::vector<MemberInfo> Membership::snapshot() const { return members_; }

std::vector<std::string> Membership::ringMemberIds() const {
  std::vector<std::string> ids;
  ids.reserve(members_.size());
  for (const MemberInfo& m : members_) ids.push_back(m.id);
  return ids;
}

std::optional<MemberInfo> Membership::find(const std::string& id) const {
  const auto it = lowerBound(members_, id);
  if (it == members_.end() || it->id != id) return std::nullopt;
  return *it;
}

bool Membership::isAlive(const std::string& id) const {
  const auto info = find(id);
  return info.has_value() && info->state == MemberState::kAlive;
}

std::size_t Membership::aliveCount() const {
  return static_cast<std::size_t>(
      std::count_if(members_.begin(), members_.end(), [](const MemberInfo& m) {
        return m.state == MemberState::kAlive;
      }));
}

std::size_t Membership::suspectCount() const {
  return members_.size() - aliveCount();
}

}  // namespace stordep::cluster
