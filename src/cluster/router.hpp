// router.hpp — asynchronous forwarding of /v1/evaluate to owner shards.
//
// The server's event loop must never block on a peer's network, so
// forwarding is queued here and executed by a small worker pool. Each
// worker keeps one ResilientClient per peer address (keep-alive reuse,
// retry/backoff, per-path circuit breaker — the PR 7 machinery; hedging
// stays off because the fallback for a slow owner is computing locally,
// not a second network copy of the same request) with the connect timeout
// set so a black-holed owner fails fast.
//
// Every forwarded request carries the X-Stordep-Forwarded: 1 header; a
// receiving node always computes such requests locally, so two nodes with
// momentarily divergent rings cannot bounce a request between themselves.
//
// Transport failure, breaker short-circuit, 429 and 5xx all surface as
// ForwardReply{ok=false}: the owner is degraded, the forwarding node falls
// back to local compute (the evaluation is pure; only the shared-cache
// locality is lost). 2xx–4xx pass through byte-for-byte — the envelope a
// client sees must be exactly what the owner (or any node) would produce.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "service/cluster_hooks.hpp"

namespace stordep::cluster {

struct RouterOptions {
  int workers = 2;
  /// Per-attempt socket timeout on forwarded exchanges.
  std::chrono::milliseconds timeout{10'000};
  /// Per-attempt connect bound (the satellite knob this layer exists for).
  std::chrono::milliseconds connectTimeout{500};
  /// Attempts per forward; kept low because local fallback is cheap.
  int maxAttempts = 2;
};

class Router {
 public:
  explicit Router(RouterOptions options = {});
  ~Router();

  Router(const Router&) = delete;
  Router& operator=(const Router&) = delete;

  /// Enqueues one forward; `done` runs exactly once on a router thread.
  /// After stop(), jobs complete immediately with ok=false.
  void forward(const std::string& host, int port, const std::string& body,
               std::function<void(service::ForwardReply)> done);

  /// Drains the queue (pending jobs fail fast) and joins the workers.
  void stop();

  /// Forwards attempted / failed over this router's lifetime (relaxed).
  [[nodiscard]] std::uint64_t forwarded() const noexcept;
  [[nodiscard]] std::uint64_t forwardFailures() const noexcept;

 private:
  struct Job {
    std::string host;
    int port = 0;
    std::string body;
    std::function<void(service::ForwardReply)> done;
  };

  void workerLoop();

  RouterOptions options_;
  std::mutex mu_;
  std::condition_variable cv_;
  std::deque<Job> queue_;
  bool stopping_ = false;
  std::vector<std::thread> workers_;
  std::atomic<std::uint64_t> forwarded_{0};
  std::atomic<std::uint64_t> failures_{0};
};

}  // namespace stordep::cluster
