#include "cluster/ring.hpp"

#include <algorithm>
#include <set>

namespace stordep::cluster {

const std::string HashRing::kEmpty;

void HashRing::rebuild(const std::vector<std::string>& memberIds,
                       int vnodesPerMember) {
  const std::set<std::string> unique(memberIds.begin(), memberIds.end());
  points_.clear();
  members_ = unique.size();
  if (vnodesPerMember < 1) vnodesPerMember = 1;
  points_.reserve(unique.size() * static_cast<std::size_t>(vnodesPerMember));
  for (const std::string& id : unique) {
    for (int v = 0; v < vnodesPerMember; ++v) {
      const std::uint64_t point = engine::ringPoint(
          engine::fingerprintBytes(id + "#" + std::to_string(v)));
      points_.push_back(Point{point, id});
    }
  }
  std::sort(points_.begin(), points_.end(),
            [](const Point& a, const Point& b) {
              if (a.point != b.point) return a.point < b.point;
              return a.member < b.member;
            });
}

const std::string& HashRing::ownerOf(const engine::Fingerprint& key) const {
  if (points_.empty()) return kEmpty;
  const std::uint64_t point = engine::ringPoint(key);
  const auto it = std::lower_bound(
      points_.begin(), points_.end(), point,
      [](const Point& p, std::uint64_t k) { return p.point < k; });
  return it == points_.end() ? points_.front().member : it->member;
}

std::vector<std::string> HashRing::members() const {
  std::set<std::string> unique;
  for (const Point& p : points_) unique.insert(p.member);
  return {unique.begin(), unique.end()};
}

}  // namespace stordep::cluster
