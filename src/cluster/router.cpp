#include "cluster/router.hpp"

#include <map>
#include <memory>
#include <utility>

#include "service/resilience/resilient_client.hpp"

namespace stordep::cluster {

Router::Router(RouterOptions options) : options_(options) {
  const int workers = options_.workers < 1 ? 1 : options_.workers;
  workers_.reserve(static_cast<std::size_t>(workers));
  for (int i = 0; i < workers; ++i) {
    workers_.emplace_back([this] { workerLoop(); });
  }
}

Router::~Router() { stop(); }

void Router::stop() {
  std::deque<Job> drained;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopping_) return;
    stopping_ = true;
    drained.swap(queue_);
  }
  cv_.notify_all();
  for (std::thread& t : workers_) {
    if (t.joinable()) t.join();
  }
  // Pending jobs must still resolve: the server's connection state waits on
  // each `done`.
  for (Job& job : drained) {
    failures_.fetch_add(1, std::memory_order_relaxed);
    job.done(service::ForwardReply{});
  }
}

void Router::forward(const std::string& host, int port,
                     const std::string& body,
                     std::function<void(service::ForwardReply)> done) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!stopping_) {
      queue_.push_back(Job{host, port, body, std::move(done)});
      cv_.notify_one();
      return;
    }
  }
  failures_.fetch_add(1, std::memory_order_relaxed);
  done(service::ForwardReply{});
}

void Router::workerLoop() {
  namespace res = service::resilience;
  // One ResilientClient per peer address, owned by this worker thread
  // (Client is not synchronized). Keyed by "host:port" so a peer that
  // rejoins under a new id but the same address reuses the connection.
  std::map<std::string, std::unique_ptr<res::ResilientClient>> clients;
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      job = std::move(queue_.front());
      queue_.pop_front();
    }
    forwarded_.fetch_add(1, std::memory_order_relaxed);

    const std::string key = job.host + ":" + std::to_string(job.port);
    auto it = clients.find(key);
    if (it == clients.end()) {
      res::ResilientClientOptions copts;
      copts.retry.maxAttempts = options_.maxAttempts;
      copts.timeout = options_.timeout;
      copts.connectTimeout = options_.connectTimeout;
      it = clients
               .emplace(key, std::make_unique<res::ResilientClient>(
                                 job.host,
                                 static_cast<std::uint16_t>(job.port), copts))
               .first;
    }

    // Evaluation is pure, so replays are idempotent by construction.
    const service::HttpHeaders headers{
        {"Content-Type", "application/json"},
        {"X-Stordep-Forwarded", "1"},
    };
    res::ResilientClient::Result result = it->second->request(
        "POST", "/v1/evaluate", job.body, headers, /*idempotent=*/true);

    service::ForwardReply reply;
    if (const service::HttpClientResponse* response = result.valueIf();
        response != nullptr && response->status < 500 &&
        response->status != 429) {
      reply.ok = true;
      reply.status = response->status;
      reply.body = response->body;
    } else {
      failures_.fetch_add(1, std::memory_order_relaxed);
    }
    job.done(std::move(reply));
  }
}

std::uint64_t Router::forwarded() const noexcept {
  return forwarded_.load(std::memory_order_relaxed);
}

std::uint64_t Router::forwardFailures() const noexcept {
  return failures_.load(std::memory_order_relaxed);
}

}  // namespace stordep::cluster
