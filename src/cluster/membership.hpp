// membership.hpp — seed-list gossip membership with failure suspicion.
//
// Pure bookkeeping, no threads, no sockets, no clock reads: every mutator
// takes the current steady_clock time as a parameter, exactly like the
// resilience layer's CircuitBreaker, so unit tests drive suspicion and
// eviction with an injected clock instead of sleeps. The owning ClusterNode
// supplies the I/O around it: a heartbeat thread POSTs /v1/cluster/ping to
// seeds and known peers and upserts whatever the responses report; the
// server's loop thread upserts whoever pings it.
//
// State machine per peer:
//
//   (heard from) ──▶ Alive ──suspectAfter silence──▶ Suspect
//                      ▲                                │
//                      └──────── heard again ◀──────────┤
//                                                       │ evictAfter silence
//                                                     evicted (forgotten)
//
// Suspect members stay on the hash ring — ownership must not flap on one
// missed heartbeat or two nodes would briefly disagree about placement —
// but the router stops forwarding to them (local-compute fallback). Only
// eviction changes the ring, and eviction is deterministic in (last-heard
// time, injected now), so every node that has seen the same pings rebuilds
// the same ring.
//
// `version()` increments on any observable change (join, state transition,
// eviction); callers rebuild derived structures when it moves.
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace stordep::cluster {

enum class MemberState { kAlive, kSuspect };

struct MemberInfo {
  std::string id;
  std::string host;
  int port = 0;
  MemberState state = MemberState::kAlive;
  std::chrono::steady_clock::time_point lastHeard{};
};

struct MembershipOptions {
  /// Heartbeat cadence (used by the node's gossip thread, recorded here so
  /// the whole timing contract lives in one struct).
  std::chrono::milliseconds heartbeatInterval{500};
  /// Silence before an Alive peer turns Suspect (forwarding stops).
  std::chrono::milliseconds suspectAfter{2'000};
  /// Silence before a Suspect peer is evicted (ring rebuilds without it).
  std::chrono::milliseconds evictAfter{6'000};
};

class Membership {
 public:
  Membership(std::string selfId, std::string selfHost, int selfPort,
             MembershipOptions options,
             std::chrono::steady_clock::time_point now);

  /// Records a peer as heard-from at `now` (join or refresh). The self entry
  /// cannot be overwritten. A re-joining evicted peer is simply a new join.
  void heardFrom(const std::string& id, const std::string& host, int port,
                 std::chrono::steady_clock::time_point now);

  /// Insert-only variant for members learned transitively (another node's
  /// ping response listed them). A new member joins as Alive at `now`; an
  /// already-known member is left untouched — in particular its lastHeard is
  /// NOT refreshed, because second-hand gossip is not evidence the peer is
  /// reachable and refreshing on it would delay death detection.
  void introduce(const std::string& id, const std::string& host, int port,
                 std::chrono::steady_clock::time_point now);

  /// Applies suspicion/eviction timeouts at `now`. Self is exempt.
  void tick(std::chrono::steady_clock::time_point now);

  /// Bumps on every observable change; compare across calls to decide
  /// whether to rebuild the ring.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Every current member (self included), sorted by id.
  [[nodiscard]] std::vector<MemberInfo> snapshot() const;

  /// Ids of every current member (Alive AND Suspect — the ring keeps
  /// suspects), sorted.
  [[nodiscard]] std::vector<std::string> ringMemberIds() const;

  [[nodiscard]] std::optional<MemberInfo> find(const std::string& id) const;
  [[nodiscard]] bool isAlive(const std::string& id) const;

  [[nodiscard]] std::size_t aliveCount() const;
  [[nodiscard]] std::size_t suspectCount() const;

  [[nodiscard]] const std::string& selfId() const noexcept { return selfId_; }
  [[nodiscard]] const MembershipOptions& options() const noexcept {
    return options_;
  }

 private:
  std::string selfId_;
  MembershipOptions options_;
  std::vector<MemberInfo> members_;  // sorted by id, self always present
  std::uint64_t version_ = 1;
};

}  // namespace stordep::cluster
