// node.hpp — one member of a sharded evaluation cluster.
//
// A ClusterNode wires the pure pieces of this directory (HashRing,
// Membership, Router, runClusterSweep) onto a running service::Server by
// implementing its ClusterHooks seam:
//
//   * Placement: every single-item /v1/evaluate is keyed by its structural
//     design fingerprint and routed to the ring owner; non-owners forward
//     over the resilient router and fall back to local compute when the
//     owner is degraded (suspect, breaker open, 5xx, transport failure).
//     Evaluation is a pure function, so "wrong owner computed it" can never
//     change a byte of the response — ownership only concentrates cache
//     heat.
//   * Membership: a heartbeat thread POSTs /v1/cluster/ping to seeds and
//     known peers on the configured cadence, learns members transitively
//     from ping responses, and applies the suspicion/eviction state machine
//     (membership.hpp). The ring rebuilds whenever the member set's version
//     moves — deterministically, so nodes that saw the same pings agree on
//     placement.
//   * Sweeps: cluster-mode /v1/search calls clusterSearch(), which
//     partitions the design grid over the live members (sweep.hpp).
//
// Lifecycle: construct with a started (or about-to-start) Server, then
// start() after server.start() — it reads the bound port for
// advertisement, attaches the hooks and launches the heartbeat. stop()
// shuts the SERVER down first (the loop thread reads the hooks pointer, so
// the node must outlive the loop), then the heartbeat and router; the
// destructor calls it. Declare the Server before the ClusterNode so
// destruction order is node-then-server.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "cluster/membership.hpp"
#include "cluster/ring.hpp"
#include "cluster/router.hpp"
#include "service/cluster_hooks.hpp"
#include "service/server.hpp"

namespace stordep::cluster {

struct ClusterNodeOptions {
  /// Unique member id (required). Doubles as the ring hash salt, so ids
  /// must be stable across restarts for placement to be stable.
  std::string nodeId;

  /// Address peers should dial. Port 0 = resolve from the server's bound
  /// port at start() (the common ephemeral-port case).
  std::string advertiseHost = "127.0.0.1";
  int advertisePort = 0;

  /// Bootstrap contacts, dialed every heartbeat alongside known peers.
  std::vector<std::pair<std::string, int>> seeds;

  MembershipOptions membership;
  int vnodes = kDefaultVnodes;
  RouterOptions router;

  /// Tests that drive membership with injected time disable the real
  /// heartbeat thread.
  bool enableHeartbeat = true;
};

class ClusterNode final : public service::ClusterHooks {
 public:
  ClusterNode(service::Server& server, ClusterNodeOptions options);
  ~ClusterNode() override;

  ClusterNode(const ClusterNode&) = delete;
  ClusterNode& operator=(const ClusterNode&) = delete;

  /// Attaches to the server and starts the heartbeat. Call after
  /// server.start(); throws std::runtime_error if nodeId is empty.
  void start();

  /// Server shutdown first, then heartbeat and router. Idempotent.
  void stop();

  [[nodiscard]] const std::string& nodeId() const noexcept {
    return options_.nodeId;
  }

  /// Forces one synchronous gossip round (dial seeds + peers, tick, rebuild
  /// ring). The heartbeat thread does exactly this on its cadence; tests
  /// and the serve binary's startup call it directly.
  void gossipOnce();

  // -- ClusterHooks --------------------------------------------------------
  bool ownsEvaluation(const engine::Fingerprint& key,
                      std::string* ownerId) override;
  void forwardEvaluate(const std::string& ownerId, const std::string& body,
                       std::function<void(service::ForwardReply)> done)
      override;
  config::Json handlePing(const config::Json& body) override;
  config::Json membersJson() override;
  config::Json healthJson() override;
  config::Json metricsJson() override;
  optimizer::SearchResult clusterSearch(
      const service::ClusterSearchParams& params,
      const std::function<void(std::size_t done)>& onProgress,
      engine::CancellationToken token) override;

 private:
  void heartbeatLoop();
  /// Rebuilds the ring iff membership's version moved. Caller holds mu_.
  void maybeRebuildRingLocked();
  [[nodiscard]] config::Json membersJsonLocked() const;

  service::Server& server_;
  ClusterNodeOptions options_;

  /// Guards membership_, ring_, lastRingVersion_ and advertisePort_.
  /// Loop-thread hooks only take it for short map lookups — never across
  /// I/O.
  mutable std::mutex mu_;
  Membership membership_;
  HashRing ring_;
  std::uint64_t lastRingVersion_ = 0;

  Router router_;

  std::atomic<std::uint64_t> localOwned_{0};     ///< owned → computed here
  std::atomic<std::uint64_t> localFallback_{0};  ///< forward failed → local

  std::atomic<bool> stopping_{false};
  bool started_ = false;
  std::mutex heartbeatMu_;
  std::condition_variable heartbeatCv_;
  std::thread heartbeatThread_;
};

}  // namespace stordep::cluster
