#include "engine/fingerprint.hpp"

#include <array>
#include <cstdio>

#include "config/design_io.hpp"

namespace stordep::engine {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;
constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ull;
/// Second, independent seed for the high word (an arbitrary odd constant;
/// any fixed value distinct from the offset basis works).
constexpr std::uint64_t kAltBasis = 0x6C62272E07BB0142ull;

std::uint64_t mixWord(std::uint64_t hash, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xFFu;
    hash *= kFnvPrime;
  }
  return hash;
}
}  // namespace

std::string Fingerprint::toHex() const {
  std::array<char, 33> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf.data());
}

std::optional<Fingerprint> Fingerprint::fromHex(std::string_view hex) noexcept {
  if (hex.size() != 32) return std::nullopt;
  std::uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(w * 16 + i)];
      std::uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
      words[w] = (words[w] << 4) | digit;
    }
  }
  return Fingerprint{words[0], words[1]};
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

Fingerprint fingerprintBytes(std::string_view bytes) {
  return Fingerprint{fnv1a64(bytes, kAltBasis), fnv1a64(bytes, kOffsetBasis)};
}

std::string canonicalSerialization(const StorageDesign& design) {
  return config::designToJson(design).dump();
}

std::string canonicalSerialization(const FailureScenario& scenario) {
  return config::scenarioToJson(scenario).dump();
}

Fingerprint fingerprintDesign(const StorageDesign& design) {
  return fingerprintBytes(canonicalSerialization(design));
}

Fingerprint fingerprintScenario(const FailureScenario& scenario) {
  return fingerprintBytes(canonicalSerialization(scenario));
}

Fingerprint combine(const Fingerprint& a, const Fingerprint& b) {
  // Continue each FNV stream through the other fingerprint's words; the
  // byte-wise feed keeps the combination order-sensitive.
  Fingerprint out;
  out.lo = mixWord(mixWord(mixWord(mixWord(a.lo, a.hi), b.lo), b.hi), 1);
  out.hi = mixWord(mixWord(mixWord(mixWord(a.hi, a.lo), b.hi), b.lo), 2);
  return out;
}

Fingerprint fingerprintEvaluation(const StorageDesign& design,
                                  const FailureScenario& scenario) {
  return combine(fingerprintDesign(design), fingerprintScenario(scenario));
}

}  // namespace stordep::engine
