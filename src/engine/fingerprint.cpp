#include "engine/fingerprint.hpp"

#include <array>
#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <functional>
#include <unordered_map>

#include "config/design_io.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/foreground.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "core/techniques/snapshot.hpp"
#include "core/techniques/split_mirror.hpp"
#include "core/techniques/vaulting.hpp"
#include "devices/disk_array.hpp"
#include "devices/interconnect.hpp"
#include "devices/tape_library.hpp"
#include "devices/vault.hpp"

namespace stordep::engine {

namespace {
constexpr std::uint64_t kFnvPrime = 0x100000001B3ull;
constexpr std::uint64_t kOffsetBasis = 0xCBF29CE484222325ull;
/// Second, independent seed for the high word (an arbitrary odd constant;
/// any fixed value distinct from the offset basis works).
constexpr std::uint64_t kAltBasis = 0x6C62272E07BB0142ull;

std::uint64_t mixWord(std::uint64_t hash, std::uint64_t word) {
  for (int i = 0; i < 8; ++i) {
    hash ^= (word >> (8 * i)) & 0xFFu;
    hash *= kFnvPrime;
  }
  return hash;
}

// ---- Perf counters ---------------------------------------------------------

std::atomic<bool> g_timingEnabled{false};
std::atomic<std::uint64_t> g_designFingerprints{0};
std::atomic<std::uint64_t> g_scenarioFingerprints{0};
std::atomic<std::uint64_t> g_bytesHashed{0};
std::atomic<std::uint64_t> g_hashNanos{0};

/// Scopes one public fingerprint call: counts the op and, when timing is
/// enabled, its wall time. Byte counts are added by the hashers themselves.
class CountedOp {
 public:
  explicit CountedOp(std::atomic<std::uint64_t>& ops)
      : timed_(g_timingEnabled.load(std::memory_order_relaxed)) {
    ops.fetch_add(1, std::memory_order_relaxed);
    if (timed_) start_ = std::chrono::steady_clock::now();
  }
  ~CountedOp() {
    if (timed_) {
      const auto elapsed = std::chrono::steady_clock::now() - start_;
      g_hashNanos.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(elapsed)
                  .count()),
          std::memory_order_relaxed);
    }
  }
  CountedOp(const CountedOp&) = delete;
  CountedOp& operator=(const CountedOp&) = delete;

 private:
  bool timed_;
  std::chrono::steady_clock::time_point start_;
};

// ---- Structural hashing ----------------------------------------------------
//
// A StructuralHasher feeds a *tagged token stream* word-at-a-time into the
// same two seeded FNV-1a streams fingerprintBytes uses (word-wise rather
// than byte-wise — the equality classes, not the bit values, are what must
// match the JSON path). Injectivity of the stream: every token starts with
// a kind word, strings are length-prefixed, arrays are count-prefixed and
// optional fields carry explicit present/absent markers, so two different
// token sequences can never serialize to the same word sequence.
//
// Number tokens replicate config's writeNumber exactly: a finite double is
// hashed by its bit pattern (writeNumber is injective on finite doubles,
// including -0.0 vs 0.0), while *every* non-finite double is collapsed to
// the single null token, because writeNumber prints "null" for all of them.
// Integral model fields are widened to double first, mirroring their trip
// through Json's number representation.
class StructuralHasher {
 public:
  void str(std::string_view s) {
    word(kStr);
    word(s.size());
    std::size_t i = 0;
    for (; i + 8 <= s.size(); i += 8) {
      std::uint64_t w;
      std::memcpy(&w, s.data() + i, 8);
      word(w);
    }
    if (i < s.size()) {
      std::uint64_t w = 0;
      std::memcpy(&w, s.data() + i, s.size() - i);
      word(w);
    }
  }

  void num(double v) {
    if (std::isfinite(v)) {
      std::uint64_t bits;
      std::memcpy(&bits, &v, 8);
      word(kNum);
      word(bits);
    } else {
      word(kNull);  // writeNumber prints "null" for every non-finite value
    }
  }

  void num(int v) { num(static_cast<double>(v)); }

  /// Enum ordinal / discriminator.
  void tag(unsigned v) {
    word(kTag);
    word(v);
  }

  /// Marks an optional field; mirrors the JSON writers' conditional set().
  void present(bool p) { word(p ? kPresent : kAbsent); }

  /// Array-length prefix.
  void count(std::size_t n) {
    word(kCount);
    word(n);
  }

  /// Folds a sub-fingerprint (a nested section hashed in its own stream).
  void fold(const Fingerprint& fp) {
    word(kFold);
    word(fp.hi);
    word(fp.lo);
  }

  [[nodiscard]] Fingerprint finish() const {
    g_bytesHashed.fetch_add(bytes_, std::memory_order_relaxed);
    return Fingerprint{hi_, lo_};
  }

 private:
  enum TokenKind : std::uint64_t {
    kStr = 1,
    kNum = 2,
    kNull = 3,
    kTag = 4,
    kPresent = 5,
    kAbsent = 6,
    kCount = 7,
    kFold = 8,
  };

  void word(std::uint64_t w) {
    lo_ = (lo_ ^ w) * kFnvPrime;
    hi_ = (hi_ ^ w) * kFnvPrime;
    bytes_ += 8;
  }

  std::uint64_t lo_ = kOffsetBasis;
  std::uint64_t hi_ = kAltBasis;
  std::uint64_t bytes_ = 0;
};

// Each hash* helper mirrors the corresponding *ToJson writer in
// config/design_io.cpp field for field, including every conditional
// omission — that replication is what makes structural equality coincide
// with canonical-serialization equality.

void hashLocation(StructuralHasher& h, const Location& loc) {
  h.str(loc.site);
  if (loc.building != loc.site) {
    h.present(true);
    h.str(loc.building);
  } else {
    h.present(false);
  }
  if (loc.region != loc.site) {
    h.present(true);
    h.str(loc.region);
  } else {
    h.present(false);
  }
}

void hashSpare(StructuralHasher& h, const SpareSpec& spare) {
  h.tag(static_cast<unsigned>(spare.type));
  if (spare.type != SpareType::kNone) {
    h.num(spare.provisioningTime.secs());
    h.num(spare.discountFactor);
  }
}

void hashCost(StructuralHasher& h, const DeviceCostModel& cost) {
  h.num(cost.fixedCost.usd());
  h.num(cost.costPerGB);
  h.num(cost.costPerMBps);
  h.num(cost.costPerShipment);
}

void hashWindows(StructuralHasher& h, const WindowSpec& w) {
  h.num(w.accW.secs());
  h.num(w.propW.secs());
  h.num(w.holdW.secs());
  h.tag(static_cast<unsigned>(w.propRep));
}

void hashPolicy(StructuralHasher& h, const ProtectionPolicy& policy) {
  hashWindows(h, policy.primaryWindows());
  if (policy.isCyclic()) {
    h.present(true);
    hashWindows(h, *policy.secondaryWindows());
    h.num(policy.cycleCount());
    h.num(policy.cyclePeriod().secs());
  } else {
    h.present(false);
  }
  h.num(policy.retentionCount());
  h.num(policy.retentionWindow().secs());
  h.tag(static_cast<unsigned>(policy.copyRep()));
}

Fingerprint hashDeviceTokens(const DeviceModel& device) {
  StructuralHasher h;
  const DeviceSpec& spec = device.spec();
  if (const auto* array = dynamic_cast<const DiskArray*>(&device)) {
    h.tag(0);  // disk_array
    h.tag(static_cast<unsigned>(array->raidLevel()));
    h.num(array->raidGroupSize());
  } else if (dynamic_cast<const TapeLibrary*>(&device) != nullptr) {
    h.tag(1);  // tape_library
  } else if (dynamic_cast<const MediaVault*>(&device) != nullptr) {
    h.tag(2);  // vault
  } else if (const auto* link = dynamic_cast<const NetworkLink*>(&device)) {
    h.tag(3);  // network_link
    h.num(link->linkCount());
    h.num(link->perLinkBandwidth().bytesPerSec());
  } else if (dynamic_cast<const PhysicalShipment*>(&device) != nullptr) {
    h.tag(4);  // shipment
  } else {
    // Same contract as deviceToJson: an unknown device type has no
    // canonical form, so the design has no fingerprint either.
    throw config::DesignIoError(
        "cannot serialize unknown device type for '" + device.name() + "'");
  }
  h.str(spec.name);
  hashLocation(h, spec.location);
  h.num(spec.maxCapSlots);
  h.num(spec.slotCap.bytes());
  h.num(spec.maxBWSlots);
  h.num(spec.slotBW.bytesPerSec());
  h.num(spec.enclosureBW.bytesPerSec());
  h.num(spec.accessDelay.secs());
  hashCost(h, spec.cost);
  hashSpare(h, spec.spare);
  return h.finish();
}

Fingerprint hashWorkloadTokens(const WorkloadSpec& workload) {
  StructuralHasher h;
  h.str(workload.name());
  h.num(workload.dataCap().bytes());
  h.num(workload.avgAccessRate().bytesPerSec());
  h.num(workload.avgUpdateRate().bytesPerSec());
  h.num(workload.burstMultiplier());
  h.count(workload.batchCurve().size());
  for (const BatchUpdatePoint& point : workload.batchCurve()) {
    h.num(point.window.secs());
    h.num(point.rate.bytesPerSec());
  }
  return h.finish();
}

/// Hashes one level: technique discriminator + device references + policy
/// (mirroring levelToJson). Each referenced device contributes its *name*
/// (what the JSON writes) and its full spec fingerprint via `fpFor` — the
/// latter so per-level keys distinguish candidates that differ only in a
/// referenced device's configuration (e.g. the wan-link count axis).
Fingerprint hashLevelTokens(
    const Technique& level,
    const std::function<Fingerprint(const DevicePtr&)>& fpFor) {
  StructuralHasher h;
  auto ref = [&](const DevicePtr& device) {
    h.str(device->name());
    h.fold(fpFor(device));
  };
  switch (level.kind()) {
    case TechniqueKind::kPrimaryCopy: {
      const auto& primary = static_cast<const PrimaryCopy&>(level);
      h.tag(0);  // primary_copy — the one level serialized without a name
      ref(primary.array());
      break;
    }
    case TechniqueKind::kVirtualSnapshot: {
      const auto& snap = static_cast<const VirtualSnapshot&>(level);
      h.tag(1);  // virtual_snapshot
      h.str(level.name());
      ref(snap.array());
      break;
    }
    case TechniqueKind::kSplitMirror: {
      const auto& sm = static_cast<const SplitMirror&>(level);
      h.tag(2);  // split_mirror
      h.str(level.name());
      ref(sm.array());
      break;
    }
    case TechniqueKind::kSyncMirror:
    case TechniqueKind::kAsyncMirror:
    case TechniqueKind::kAsyncBatchMirror: {
      // All three kinds serialize as "remote_mirror"; the mode field is the
      // discriminator, exactly as in levelToJson.
      const auto& mirror = static_cast<const RemoteMirror&>(level);
      h.tag(3);  // remote_mirror
      h.str(level.name());
      h.tag(static_cast<unsigned>(mirror.mode()));
      ref(mirror.sourceArray());
      ref(mirror.destArray());
      ref(mirror.links());
      break;
    }
    case TechniqueKind::kBackup: {
      const auto& backup = static_cast<const Backup&>(level);
      h.tag(4);  // backup
      h.str(level.name());
      h.tag(static_cast<unsigned>(backup.style()));
      ref(backup.sourceArray());
      ref(backup.backupDevice());
      if (backup.transport()) {
        h.present(true);
        ref(backup.transport());
      } else {
        h.present(false);
      }
      break;
    }
    case TechniqueKind::kVaulting: {
      const auto& vaulting = static_cast<const Vaulting&>(level);
      h.tag(5);  // vaulting
      h.str(level.name());
      ref(vaulting.backupDevice());
      ref(vaulting.vault());
      ref(vaulting.shipment());
      break;
    }
  }
  if (level.policy() != nullptr) {
    h.present(true);
    hashPolicy(h, *level.policy());
  } else {
    h.present(false);
  }
  return h.finish();
}

/// One structural pass over a whole design; fills `parts` when non-null.
Fingerprint hashDesignTokens(const StorageDesign& design,
                             DesignFingerprints* parts) {
  StructuralHasher h;
  h.str(design.name());

  const Fingerprint workloadFp = hashWorkloadTokens(design.workload());
  h.fold(workloadFp);

  const BusinessRequirements& business = design.business();
  h.num(business.unavailabilityPenaltyRate.usdPerHour());
  h.num(business.lossPenaltyRate.usdPerHour());
  if (business.rto) {
    h.present(true);
    h.num(business.rto->secs());
  } else {
    h.present(false);
  }
  if (business.rpo) {
    h.present(true);
    h.num(business.rpo->secs());
  } else {
    h.present(false);
  }

  // Device section in the same deterministic order designToJson writes it;
  // the per-device fingerprints double as the level-key ingredients.
  const std::vector<DevicePtr> devices = design.devices();
  std::unordered_map<const DeviceModel*, Fingerprint> deviceFps;
  deviceFps.reserve(devices.size());
  auto fpFor = [&](const DevicePtr& device) -> Fingerprint {
    const auto it = deviceFps.find(device.get());
    if (it != deviceFps.end()) return it->second;
    // Levels only reference devices that devices() already visited; compute
    // defensively anyway so a future technique cannot silently alias.
    return deviceFps.emplace(device.get(), hashDeviceTokens(*device))
        .first->second;
  };
  h.count(devices.size());
  for (const DevicePtr& device : devices) {
    h.fold(fpFor(device));
  }

  h.count(static_cast<std::size_t>(design.levelCount()));
  if (parts != nullptr) {
    parts->levelKeys.reserve(static_cast<std::size_t>(design.levelCount()));
  }
  for (int i = 0; i < design.levelCount(); ++i) {
    const Fingerprint levelFp = hashLevelTokens(design.level(i), fpFor);
    h.fold(levelFp);
    if (parts != nullptr) parts->levelKeys.push_back(levelFp);
  }

  if (design.facility()) {
    h.present(true);
    hashLocation(h, design.facility()->location);
    h.num(design.facility()->provisioningTime.secs());
    h.num(design.facility()->costDiscount);
  } else {
    h.present(false);
  }

  const Fingerprint fp = h.finish();
  if (parts != nullptr) {
    parts->design = fp;
    parts->workload = workloadFp;
  }
  return fp;
}

}  // namespace

std::string Fingerprint::toHex() const {
  std::array<char, 33> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx%016llx",
                static_cast<unsigned long long>(hi),
                static_cast<unsigned long long>(lo));
  return std::string(buf.data());
}

std::optional<Fingerprint> Fingerprint::fromHex(std::string_view hex) noexcept {
  if (hex.size() != 32) return std::nullopt;
  std::uint64_t words[2] = {0, 0};
  for (int w = 0; w < 2; ++w) {
    for (int i = 0; i < 16; ++i) {
      const char c = hex[static_cast<std::size_t>(w * 16 + i)];
      std::uint64_t digit;
      if (c >= '0' && c <= '9') {
        digit = static_cast<std::uint64_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        digit = static_cast<std::uint64_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        digit = static_cast<std::uint64_t>(c - 'A' + 10);
      } else {
        return std::nullopt;
      }
      words[w] = (words[w] << 4) | digit;
    }
  }
  return Fingerprint{words[0], words[1]};
}

std::uint64_t fnv1a64(std::string_view bytes, std::uint64_t seed) {
  std::uint64_t hash = seed;
  for (const char c : bytes) {
    hash ^= static_cast<unsigned char>(c);
    hash *= kFnvPrime;
  }
  return hash;
}

Fingerprint fingerprintBytes(std::string_view bytes) {
  return Fingerprint{fnv1a64(bytes, kAltBasis), fnv1a64(bytes, kOffsetBasis)};
}

std::string canonicalSerialization(const StorageDesign& design) {
  return config::designToJson(design).dump();
}

std::string canonicalSerialization(const FailureScenario& scenario) {
  return config::scenarioToJson(scenario).dump();
}

Fingerprint fingerprintDesign(const StorageDesign& design) {
  const CountedOp op(g_designFingerprints);
  return hashDesignTokens(design, nullptr);
}

Fingerprint fingerprintScenario(const FailureScenario& scenario) {
  const CountedOp op(g_scenarioFingerprints);
  StructuralHasher h;
  h.tag(static_cast<unsigned>(scenario.scope));
  if (!scenario.target.empty()) {
    h.present(true);
    h.str(scenario.target);
  } else {
    h.present(false);
  }
  // Mirrors scenarioToJson: an age of zero (or less, or NaN) is omitted.
  if (scenario.recoveryTargetAge > Duration::zero()) {
    h.present(true);
    h.num(scenario.recoveryTargetAge.secs());
  } else {
    h.present(false);
  }
  if (scenario.recoverySize) {
    h.present(true);
    h.num(scenario.recoverySize->bytes());
  } else {
    h.present(false);
  }
  return h.finish();
}

Fingerprint fingerprintWorkload(const WorkloadSpec& workload) {
  return hashWorkloadTokens(workload);
}

Fingerprint fingerprintDesignJson(const StorageDesign& design) {
  return fingerprintBytes(canonicalSerialization(design));
}

Fingerprint fingerprintScenarioJson(const FailureScenario& scenario) {
  return fingerprintBytes(canonicalSerialization(scenario));
}

DesignFingerprints fingerprintDesignParts(const StorageDesign& design) {
  const CountedOp op(g_designFingerprints);
  DesignFingerprints parts;
  hashDesignTokens(design, &parts);
  return parts;
}

Fingerprint combine(const Fingerprint& a, const Fingerprint& b) {
  // Continue each FNV stream through the other fingerprint's words; the
  // byte-wise feed keeps the combination order-sensitive.
  Fingerprint out;
  out.lo = mixWord(mixWord(mixWord(mixWord(a.lo, a.hi), b.lo), b.hi), 1);
  out.hi = mixWord(mixWord(mixWord(mixWord(a.hi, a.lo), b.hi), b.lo), 2);
  return out;
}

Fingerprint fingerprintEvaluation(const StorageDesign& design,
                                  const FailureScenario& scenario) {
  return combine(fingerprintDesign(design), fingerprintScenario(scenario));
}

std::uint64_t ringPoint(const Fingerprint& fp) noexcept {
  // splitmix64 finalizer over a fold of both words; the golden-ratio
  // multiplier keeps lo's contribution from cancelling against hi for
  // related fingerprints.
  std::uint64_t x = fp.hi ^ (fp.lo * 0x9E3779B97F4A7C15ull);
  x ^= x >> 30;
  x *= 0xBF58476D1CE4E5B9ull;
  x ^= x >> 27;
  x *= 0x94D049BB133111EBull;
  x ^= x >> 31;
  return x;
}

FingerprintCounters fingerprintCounters() noexcept {
  FingerprintCounters out;
  out.designFingerprints = g_designFingerprints.load(std::memory_order_relaxed);
  out.scenarioFingerprints =
      g_scenarioFingerprints.load(std::memory_order_relaxed);
  out.bytesHashed = g_bytesHashed.load(std::memory_order_relaxed);
  out.hashNanos = g_hashNanos.load(std::memory_order_relaxed);
  return out;
}

void resetFingerprintCounters() noexcept {
  g_designFingerprints.store(0, std::memory_order_relaxed);
  g_scenarioFingerprints.store(0, std::memory_order_relaxed);
  g_bytesHashed.store(0, std::memory_order_relaxed);
  g_hashNanos.store(0, std::memory_order_relaxed);
}

FingerprintCounters fingerprintCountersReset() noexcept {
  FingerprintCounters out;
  out.designFingerprints =
      g_designFingerprints.exchange(0, std::memory_order_relaxed);
  out.scenarioFingerprints =
      g_scenarioFingerprints.exchange(0, std::memory_order_relaxed);
  out.bytesHashed = g_bytesHashed.exchange(0, std::memory_order_relaxed);
  out.hashNanos = g_hashNanos.exchange(0, std::memory_order_relaxed);
  return out;
}

void setFingerprintTiming(bool enabled) noexcept {
  g_timingEnabled.store(enabled, std::memory_order_relaxed);
}

bool fingerprintTimingEnabled() noexcept {
  return g_timingEnabled.load(std::memory_order_relaxed);
}

}  // namespace stordep::engine
