#include "engine/plan.hpp"

#include <algorithm>
#include <cstring>

#include "core/propagation.hpp"

namespace stordep::engine {

namespace {

const std::string kNoDeviceName;

/// Byte-stream accumulator for the plan fingerprint. Doubles go in by bit
/// pattern (the tables are produced deterministically, so -0.0/NaN patterns
/// are stable), strings length-prefixed.
struct FpStream {
  std::string buf;

  void u64(std::uint64_t v) {
    char b[sizeof v];
    std::memcpy(b, &v, sizeof v);
    buf.append(b, sizeof v);
  }
  void d(double v) {
    std::uint64_t bits;
    std::memcpy(&bits, &v, sizeof bits);
    u64(bits);
  }
  void i(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void b(bool v) { buf.push_back(v ? '\1' : '\0'); }
  void s(const std::string& v) {
    u64(v.size());
    buf.append(v);
  }
  void loc(const Location& l) {
    s(l.site);
    s(l.building);
    s(l.region);
  }
  void fp(const Fingerprint& f) {
    u64(f.hi);
    u64(f.lo);
  }
};

}  // namespace

std::shared_ptr<const EvalPlan> EvalPlan::compile(const StorageDesign& design) {
  if (design.levelCount() == 0) return nullptr;
  const DevicePtr primaryArray = design.primary().array();
  if (!primaryArray) return nullptr;

  auto plan = std::shared_ptr<EvalPlan>(new EvalPlan());
  const WorkloadSpec& workload = design.workload();
  plan->workload_ = workload;
  plan->business_ = design.business();
  if (design.facility()) {
    plan->hasFacility_ = true;
    plan->facilityLocation_ = design.facility()->location;
    plan->facilityProvisioningTime_ = design.facility()->provisioningTime;
  }

  // Distinct device rows, first-seen order: storage devices level by level,
  // then restore-leg endpoints/transports level by level.
  auto addDevice = [&](const DevicePtr& d) -> std::int32_t {
    for (std::size_t i = 0; i < plan->devices_.size(); ++i) {
      if (plan->devices_[i].device.get() == d.get()) {
        return static_cast<std::int32_t>(i);
      }
    }
    DeviceRow row;
    row.device = d;
    row.name = d->name();
    row.location = d->location();
    row.hasSpare = d->spec().spare.type != SpareType::kNone;
    row.spareProvisioningTime = d->spareProvisioningTime();
    plan->devices_.push_back(std::move(row));
    return static_cast<std::int32_t>(plan->devices_.size() - 1);
  };

  const int levelCount = design.levelCount();
  std::vector<std::vector<PlacedDemand>> perLevelDemands;
  perLevelDemands.reserve(static_cast<std::size_t>(levelCount));

  for (int i = 0; i < levelCount; ++i) {
    const Technique& tech = design.level(i);
    LevelRow row;
    row.technique = design.levelPtr(i);

    const LevelRecoveryWindow window = levelRecoveryWindow(design, i);
    row.lag = window.lag;
    row.oldestAge = window.oldestAge;
    row.withinLoss = tech.policy() != nullptr ? tech.policy()->effectiveAccW()
                                              : Duration::zero();
    if (i > 0) {
      row.defaultPayload = tech.restorePayload(workload, workload.dataCap());
    }

    row.storageBegin = static_cast<std::uint32_t>(plan->storageIdx_.size());
    for (const DevicePtr& d : tech.storageDevices()) {
      if (!d) return nullptr;
      plan->storageIdx_.push_back(static_cast<std::uint32_t>(addDevice(d)));
    }
    row.storageEnd = static_cast<std::uint32_t>(plan->storageIdx_.size());

    row.legBegin = static_cast<std::uint32_t>(plan->legs_.size());
    for (const RecoveryLeg& leg : tech.recoveryLegs(primaryArray)) {
      // A leg with a missing endpoint is a diagnostic-note path in the
      // legacy evaluator; such designs stay on the legacy path.
      if (!leg.from || !leg.to) return nullptr;
      LegRow lr;
      lr.from = addDevice(leg.from);
      lr.to = addDevice(leg.to);
      lr.originallyCrossSite =
          leg.from->location().site != leg.to->location().site;
      lr.serializedFix = leg.serializedFix;
      if (leg.via) {
        lr.via = addDevice(leg.via);
        lr.viaPhysical = leg.via->deliversPhysically();
        lr.viaTransit = leg.via->accessDelay();
      }
      plan->legs_.push_back(lr);
    }
    row.legEnd = static_cast<std::uint32_t>(plan->legs_.size());

    plan->levels_.push_back(std::move(row));
    perLevelDemands.push_back(tech.normalModeDemands(workload));
  }

  // Flat per-device bandwidth-contribution table for the availableBw fold,
  // in the exact order the legacy fold adds them: levels outer, each
  // level's demand vector inner.
  for (DeviceRow& row : plan->devices_) {
    row.contribBegin = static_cast<std::uint32_t>(plan->contribLevel_.size());
    for (int i = 0; i < levelCount; ++i) {
      for (const PlacedDemand& pd : perLevelDemands[static_cast<std::size_t>(i)]) {
        if (pd.device.get() != row.device.get()) continue;
        plan->contribLevel_.push_back(i);
        plan->contribBandwidth_.push_back(pd.demand.bandwidth);
      }
    }
    row.contribEnd = static_cast<std::uint32_t>(plan->contribLevel_.size());
  }

  // Scenario-independent half of the evaluation, resolved once. The demand
  // vector is assembled exactly like StorageDesign::allDemands() (level
  // order), so both folds see the legacy operand order.
  std::vector<PlacedDemand> all;
  for (auto& demands : perLevelDemands) {
    all.insert(all.end(), std::make_move_iterator(demands.begin()),
               std::make_move_iterator(demands.end()));
  }
  UtilizationFeasibility feasibility = computeUtilizationFeasibility(all);
  plan->utilFeasible_ = feasibility.feasible;
  plan->utilError_ = std::move(feasibility.firstError);
  for (const TechniqueOutlay& o : computeOutlays(all)) {
    plan->totalOutlays_ += o.total();
  }

  // ---- Plan fingerprint ----------------------------------------------
  // Everything evaluate() reads must be covered: the flattened tables, the
  // workload/business inputs, and behavioural probes of the virtuals the
  // tables defer to per eval (restorePayload, transferBandwidth), so two
  // plans with equal fingerprints evaluate identically under any scenario.
  FpStream fs;
  fs.buf.reserve(1024);
  fs.s("stordep-evalplan-v1");
  fs.fp(fingerprintWorkload(workload));
  fs.b(plan->hasFacility_);
  if (plan->hasFacility_) {
    fs.loc(plan->facilityLocation_);
    fs.d(plan->facilityProvisioningTime_.raw());
  }
  fs.d(plan->business_.unavailabilityPenaltyRate.raw());
  fs.d(plan->business_.lossPenaltyRate.raw());
  fs.b(plan->business_.rto.has_value());
  if (plan->business_.rto) fs.d(plan->business_.rto->raw());
  fs.b(plan->business_.rpo.has_value());
  if (plan->business_.rpo) fs.d(plan->business_.rpo->raw());
  fs.b(plan->utilFeasible_);
  fs.s(plan->utilError_);
  fs.d(plan->totalOutlays_.raw());

  const Bytes probePayload = megabytes(1);
  fs.u64(plan->devices_.size());
  for (const DeviceRow& row : plan->devices_) {
    fs.s(row.name);
    fs.loc(row.location);
    fs.b(row.hasSpare);
    fs.d(row.spareProvisioningTime.raw());
    fs.u64(row.contribBegin);
    fs.u64(row.contribEnd);
    fs.d(row.device->transferBandwidth(probePayload).raw());
    fs.d(row.device->transferBandwidth(workload.dataCap()).raw());
  }
  fs.u64(plan->levels_.size());
  for (const LevelRow& row : plan->levels_) {
    fs.i(static_cast<std::int64_t>(row.technique->kind()));
    fs.d(row.lag.raw());
    fs.d(row.oldestAge.raw());
    fs.d(row.withinLoss.raw());
    fs.d(row.defaultPayload.raw());
    fs.d(row.technique->restorePayload(workload, probePayload).raw());
    fs.u64(row.storageBegin);
    fs.u64(row.storageEnd);
    fs.u64(row.legBegin);
    fs.u64(row.legEnd);
  }
  fs.u64(plan->legs_.size());
  for (const LegRow& leg : plan->legs_) {
    fs.i(leg.from);
    fs.i(leg.to);
    fs.i(leg.via);
    fs.b(leg.originallyCrossSite);
    fs.b(leg.viaPhysical);
    fs.d(leg.viaTransit.raw());
    fs.d(leg.serializedFix.raw());
  }
  fs.u64(plan->storageIdx_.size());
  for (std::uint32_t idx : plan->storageIdx_) fs.u64(idx);
  fs.u64(plan->contribLevel_.size());
  for (std::size_t c = 0; c < plan->contribLevel_.size(); ++c) {
    fs.i(plan->contribLevel_[c]);
    fs.d(plan->contribBandwidth_[c].raw());
  }
  plan->fingerprint_ = fingerprintBytes(fs.buf);

  return plan;
}

Bandwidth EvalPlan::availableBw(std::int32_t devIdx, Bytes payload, bool fresh,
                                const bool* lvlDestroyed) const {
  const DeviceRow& row = devices_[static_cast<std::size_t>(devIdx)];
  const Bandwidth base = row.device->transferBandwidth(payload);
  if (fresh) return base;
  Bandwidth demands = Bandwidth::zero();
  for (std::uint32_t c = row.contribBegin; c < row.contribEnd; ++c) {
    const std::int32_t lvl = contribLevel_[c];
    if (lvlDestroyed[lvl]) continue;
    if (lvl > 0 && lvlDestroyed[lvl - 1]) continue;
    demands += contribBandwidth_[c];
  }
  if (demands >= base) return Bandwidth::zero();
  return base - demands;
}

std::vector<char> EvalPlan::destroyedLevels(
    const FailureScenario& scenario) const {
  std::vector<char> out(levels_.size(), 0);
  for (std::size_t i = 0; i < levels_.size(); ++i) {
    bool all = true;
    for (std::uint32_t s = levels_[i].storageBegin; s < levels_[i].storageEnd;
         ++s) {
      const DeviceRow& row = devices_[storageIdx_[s]];
      if (!scenario.destroys(row.name, row.location)) {
        all = false;
        break;
      }
    }
    out[i] = all ? 1 : 0;
  }
  return out;
}

EvalPlan::ResolvedRecovery EvalPlan::resolveRecovery(
    const FailureScenario& scenario, int sourceLevel) const {
  ResolvedRecovery out;
  if (sourceLevel <= 0 || sourceLevel >= levelCount()) return out;
  const LevelRow& src = levels_[static_cast<std::size_t>(sourceLevel)];
  if (src.legBegin == src.legEnd) return out;
  out.hasLegs = true;

  const std::size_t nDev = devices_.size();
  std::vector<char> devDestroyed(nDev, 0);
  for (std::size_t i = 0; i < nDev; ++i) {
    devDestroyed[i] =
        scenario.destroys(devices_[i].name, devices_[i].location) ? 1 : 0;
  }
  const std::vector<char> lvlDestroyed = destroyedLevels(scenario);

  // The demand half of availableBandwidth(), in the legacy fold order.
  const auto demandFold = [&](std::int32_t devIdx) {
    const DeviceRow& row = devices_[static_cast<std::size_t>(devIdx)];
    Bandwidth demands = Bandwidth::zero();
    for (std::uint32_t c = row.contribBegin; c < row.contribEnd; ++c) {
      const std::int32_t lvl = contribLevel_[c];
      if (lvlDestroyed[static_cast<std::size_t>(lvl)]) continue;
      if (lvl > 0 && lvlDestroyed[static_cast<std::size_t>(lvl - 1)]) continue;
      demands += contribBandwidth_[c];
    }
    return demands;
  };

  // resolveNode (recovery.cpp), minus the diagnostics.
  struct Resolved {
    const Location* loc;
    Duration parFix;
    bool fresh;
    bool viable;
  };
  const auto resolve = [&](std::int32_t idx) -> Resolved {
    const DeviceRow& row = devices_[static_cast<std::size_t>(idx)];
    if (!devDestroyed[static_cast<std::size_t>(idx)]) {
      return {&row.location, Duration::zero(), false, true};
    }
    if (scenario.scope == FailureScope::kArray && row.hasSpare) {
      return {&row.location, row.spareProvisioningTime, true, true};
    }
    if (hasFacility_ && !scenario.destroys(kNoDeviceName, facilityLocation_)) {
      return {&facilityLocation_, facilityProvisioningTime_, true, true};
    }
    return {&row.location, Duration::zero(), false, false};
  };

  out.legs.reserve(src.legEnd - src.legBegin);
  for (std::uint32_t l = src.legBegin; l < src.legEnd; ++l) {
    const LegRow& leg = legs_[l];
    const Resolved from = resolve(leg.from);
    const Resolved to = resolve(leg.to);
    if (!from.viable || !to.viable) {
      // recoverFrom() returns unrecoverable at the first unviable leg; the
      // legs after it are never walked.
      out.pathLost = true;
      break;
    }
    ResolvedLeg r;
    r.from = devices_[static_cast<std::size_t>(leg.from)].device.get();
    r.to = devices_[static_cast<std::size_t>(leg.to)].device.get();
    const bool resolvedSameSite = from.loc->site == to.loc->site;
    const bool useVia =
        leg.via >= 0 && !(leg.originallyCrossSite && resolvedSameSite);
    r.physical = useVia && leg.viaPhysical;
    r.transit = useVia ? leg.viaTransit : Duration::zero();
    r.serFix = r.physical ? Duration::zero() : leg.serializedFix;
    r.fromFresh = from.fresh;
    r.toFresh = to.fresh;
    r.fromParFix = from.parFix;
    r.toParFix = to.parFix;
    if (!r.physical) {
      if (!from.fresh) r.fromDemands = demandFold(leg.from);
      if (useVia) {
        r.via = devices_[static_cast<std::size_t>(leg.via)].device.get();
        r.viaDemands = demandFold(leg.via);
      }
      if (!to.fresh) r.toDemands = demandFold(leg.to);
    }
    out.legs.push_back(r);
  }
  return out;
}

Duration EvalPlan::runResolvedLegs(const ResolvedRecovery& path,
                                   Bytes payload) {
  if (path.pathLost || !path.hasLegs) return Duration::infinite();
  // availableBandwidth() with the demand fold precomputed: same subtraction,
  // same saturation comparison, same operand order.
  const auto remainingBw = [&](const DeviceModel& device, bool fresh,
                               Bandwidth demands) {
    const Bandwidth base = device.transferBandwidth(payload);
    if (fresh) return base;
    if (demands >= base) return Bandwidth::zero();
    return base - demands;
  };
  Duration clock = Duration::zero();
  for (const ResolvedLeg& leg : path.legs) {
    const Duration sendReady = std::max(clock, leg.fromParFix);
    Duration drainTime = Duration::zero();
    Duration applyTime = Duration::zero();
    if (!leg.physical) {
      Bandwidth drainRate = remainingBw(*leg.from, leg.fromFresh,
                                        leg.fromDemands);
      if (leg.via != nullptr) {
        drainRate =
            std::min(drainRate, remainingBw(*leg.via, false, leg.viaDemands));
      }
      drainTime = drainRate.bytesPerSec() > 0 ? payload / drainRate
                                              : Duration::infinite();
      const Bandwidth destRate = remainingBw(*leg.to, leg.toFresh,
                                             leg.toDemands);
      applyTime = destRate.bytesPerSec() > 0 ? payload / destRate
                                             : Duration::infinite();
    }
    const Duration drainDone = sendReady + leg.transit + leg.serFix + drainTime;
    const Duration ready = std::max(drainDone, leg.toParFix) + applyTime;
    clock = ready;
    if (!clock.isFinite()) break;
  }
  return clock;
}

EvaluationMetrics EvalPlan::evaluate(const FailureScenario& scenario,
                                     BumpArena& arena) const {
  BumpArena::Frame frame(arena);
  EvaluationMetrics m;
  m.utilizationFeasible = utilFeasible_;
  m.totalOutlays = totalOutlays_;

  const std::size_t nDev = devices_.size();
  bool* devDestroyed = arena.array<bool>(nDev);
  for (std::size_t i = 0; i < nDev; ++i) {
    devDestroyed[i] = scenario.destroys(devices_[i].name, devices_[i].location);
  }

  const std::size_t nLvl = levels_.size();
  bool* lvlDestroyed = arena.array<bool>(nLvl);
  for (std::size_t i = 0; i < nLvl; ++i) {
    bool all = true;
    for (std::uint32_t s = levels_[i].storageBegin; s < levels_[i].storageEnd;
         ++s) {
      if (!devDestroyed[storageIdx_[s]]) {
        all = false;
        break;
      }
    }
    lvlDestroyed[i] = all;
  }

  // Recovery-source choice: assessLevel + chooseRecoverySource, branch for
  // branch (data_loss.cpp). Levels whose assessed loss is infinite
  // (destroyed, corrupted primary, or target beyond retention) are skipped;
  // strictly smaller loss wins, ties keep the lower level.
  const Duration targetAge = scenario.recoveryTargetAge;
  int bestLevel = -1;
  Duration bestLoss = Duration::infinite();
  for (std::size_t i = 0; i < nLvl; ++i) {
    if (lvlDestroyed[i]) continue;
    if (i == 0 && scenario.scope == FailureScope::kDataObject) continue;
    const LevelRow& row = levels_[i];
    Duration loss;
    if (targetAge < row.lag) {
      loss = row.lag - targetAge;
    } else if (targetAge <= row.oldestAge) {
      loss = row.withinLoss;
    } else {
      continue;
    }
    if (!loss.isFinite()) continue;
    if (bestLevel < 0 || loss < bestLoss) {
      bestLevel = static_cast<int>(i);
      bestLoss = loss;
    }
  }

  // Defaults already mirror the no-source case (computeRecovery with no
  // surviving RP): unrecoverable, sourceLevel -1, infinite RT/DL.
  if (bestLevel >= 0) {
    m.sourceLevel = bestLevel;
    m.dataLoss = bestLoss;
    if (bestLevel == 0) {
      // Recovering from the primary itself: nothing to restore.
      m.recoverable = true;
      m.recoveryTime = Duration::zero();
      m.payload = Bytes{0};
    } else {
      const LevelRow& src = levels_[static_cast<std::size_t>(bestLevel)];
      m.payload = scenario.recoverySize
                      ? src.technique->restorePayload(*workload_,
                                                      *scenario.recoverySize)
                      : src.defaultPayload;
      if (src.legBegin == src.legEnd) {
        // "source level has no restore path": unrecoverable, RT stays
        // infinite, DL keeps the source assessment.
      } else {
        // Leg walk: recoverFrom (recovery.cpp), minus the reporting.
        struct Resolved {
          const Location* loc;
          Duration parFix;
          bool fresh;
          bool viable;
        };
        auto resolve = [&](std::int32_t idx) -> Resolved {
          const DeviceRow& row = devices_[static_cast<std::size_t>(idx)];
          if (!devDestroyed[idx]) {
            return {&row.location, Duration::zero(), false, true};
          }
          if (scenario.scope == FailureScope::kArray && row.hasSpare) {
            return {&row.location, row.spareProvisioningTime, true, true};
          }
          if (hasFacility_ &&
              !scenario.destroys(kNoDeviceName, facilityLocation_)) {
            return {&facilityLocation_, facilityProvisioningTime_, true, true};
          }
          return {&row.location, Duration::zero(), false, false};
        };

        Duration clock = Duration::zero();
        bool pathLost = false;
        for (std::uint32_t l = src.legBegin; l < src.legEnd; ++l) {
          const LegRow& leg = legs_[l];
          const Resolved from = resolve(leg.from);
          const Resolved to = resolve(leg.to);
          if (!from.viable || !to.viable) {
            // An RP survives but there is nowhere to restore it.
            m.dataLoss = Duration::infinite();
            m.recoveryTime = Duration::infinite();
            m.recoverable = false;
            pathLost = true;
            break;
          }
          const bool resolvedSameSite = from.loc->site == to.loc->site;
          const bool useVia =
              leg.via >= 0 && !(leg.originallyCrossSite && resolvedSameSite);
          const bool physical = useVia && leg.viaPhysical;
          const Duration transit = useVia ? leg.viaTransit : Duration::zero();

          const Duration sendReady = std::max(clock, from.parFix);
          Duration drainTime = Duration::zero();
          Duration applyTime = Duration::zero();
          if (!physical) {
            Bandwidth drainRate =
                availableBw(leg.from, m.payload, from.fresh, lvlDestroyed);
            if (useVia) {
              drainRate = std::min(
                  drainRate,
                  availableBw(leg.via, m.payload, false, lvlDestroyed));
            }
            drainTime = drainRate.bytesPerSec() > 0 ? m.payload / drainRate
                                                    : Duration::infinite();
            const Bandwidth destRate =
                availableBw(leg.to, m.payload, to.fresh, lvlDestroyed);
            applyTime = destRate.bytesPerSec() > 0 ? m.payload / destRate
                                                   : Duration::infinite();
          }
          const Duration serFix =
              physical ? Duration::zero() : leg.serializedFix;
          const Duration drainDone = sendReady + transit + serFix + drainTime;
          const Duration ready = std::max(drainDone, to.parFix) + applyTime;
          clock = ready;
          if (!clock.isFinite()) break;
        }
        if (!pathLost) {
          m.recoverable = clock.isFinite();
          m.recoveryTime = clock;
        }
      }
    }
  }

  // computeCosts + meetsObjectives (cost.cpp, business.hpp).
  m.outagePenalty = business_.outagePenalty(m.recoveryTime);
  m.lossPenalty = business_.lossPenalty(m.dataLoss);
  m.totalPenalties = m.outagePenalty + m.lossPenalty;
  m.totalCost = m.totalOutlays + m.totalPenalties;
  m.meetsObjectives = business_.meetsObjectives(m.recoveryTime, m.dataLoss);
  return m;
}

}  // namespace stordep::engine
