#include "engine/precompute.hpp"

#include <utility>

#include "core/technique.hpp"
#include "core/utilization.hpp"

namespace stordep::engine {

namespace {
std::size_t roundUpPow2(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

DemandCache::DemandCache(std::size_t capacity, std::size_t shards) {
  const std::size_t count = roundUpPow2(shards == 0 ? 1 : shards);
  shards_.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  perShardCapacity_ = (capacity == 0 ? 1 : (capacity + count - 1) / count);
}

DemandCache::Entry DemandCache::lookup(const Fingerprint& key) {
  Shard& shard = shardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  ++shard.probes;
  const auto it = shard.map.find(key);
  if (it == shard.map.end()) return nullptr;
  ++shard.hits;
  return it->second;
}

void DemandCache::insert(const Fingerprint& key, Entry value) {
  Shard& shard = shardFor(key);
  const std::lock_guard<std::mutex> lock(shard.mu);
  if (shard.map.size() >= perShardCapacity_) return;
  if (shard.map.emplace(key, std::move(value)).second) ++shard.inserts;
}

void DemandCache::insertBatch(
    std::vector<std::pair<Fingerprint, Entry>>&& entries) {
  if (entries.empty()) return;
  std::vector<std::vector<std::size_t>> byShard(shards_.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    byShard[entries[i].first.hi & (shards_.size() - 1)].push_back(i);
  }
  for (std::size_t s = 0; s < byShard.size(); ++s) {
    if (byShard[s].empty()) continue;
    Shard& shard = *shards_[s];
    const std::lock_guard<std::mutex> lock(shard.mu);
    for (const std::size_t i : byShard[s]) {
      if (shard.map.size() >= perShardCapacity_) break;
      if (shard.map.emplace(entries[i].first, std::move(entries[i].second))
              .second) {
        ++shard.inserts;
      }
    }
  }
  entries.clear();
}

DemandCache::Stats DemandCache::stats() const {
  Stats out;
  out.capacity = perShardCapacity_ * shards_.size();
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    out.probes += shard->probes;
    out.hits += shard->hits;
    out.inserts += shard->inserts;
    out.entries += shard->map.size();
  }
  return out;
}

void DemandCache::clear() {
  for (const auto& shard : shards_) {
    const std::lock_guard<std::mutex> lock(shard->mu);
    shard->map.clear();
    shard->probes = 0;
    shard->hits = 0;
    shard->inserts = 0;
  }
}

DesignPrecomputation precomputeDesignCached(
    const StorageDesign& design, const DesignFingerprints& parts,
    DemandCache& cache,
    std::vector<std::pair<Fingerprint, DemandCache::Entry>>* pendingInserts) {
  const int levels = design.levelCount();
  if (parts.levelKeys.size() != static_cast<std::size_t>(levels)) {
    return precomputeDesign(design);  // stale parts; never guess
  }

  // Name -> device map for rebinding cached demands. A duplicate name would
  // make the rebinding ambiguous, so bail to the direct path (the validator
  // flags such designs anyway).
  std::unordered_map<std::string, DevicePtr> byName;
  const std::vector<DevicePtr> devices = design.devices();
  byName.reserve(devices.size());
  for (const DevicePtr& device : devices) {
    if (!byName.emplace(device->name(), device).second) {
      return precomputeDesign(design);
    }
  }

  // Assemble the demand vector level by level, in the exact order
  // StorageDesign::allDemands() would produce it.
  std::vector<PlacedDemand> demands;
  for (int i = 0; i < levels; ++i) {
    const Fingerprint key = combine(parts.levelKeys[i], parts.workload);
    if (const DemandCache::Entry hit = cache.lookup(key)) {
      bool rebound = true;
      const std::size_t base = demands.size();
      demands.reserve(base + hit->size());
      for (const CachedDemand& cached : *hit) {
        const auto it = byName.find(cached.device);
        if (it == byName.end()) {
          rebound = false;  // level key collided across device sets
          break;
        }
        demands.push_back(PlacedDemand{it->second, cached.demand});
      }
      if (rebound) continue;
      demands.resize(base);
    }
    std::vector<PlacedDemand> fresh =
        design.level(i).normalModeDemands(design.workload());
    auto entry = std::make_shared<std::vector<CachedDemand>>();
    entry->reserve(fresh.size());
    for (const PlacedDemand& placed : fresh) {
      entry->push_back(CachedDemand{placed.device->name(), placed.demand});
    }
    if (pendingInserts != nullptr) {
      pendingInserts->emplace_back(key, std::move(entry));
    } else {
      cache.insert(key, std::move(entry));
    }
    demands.insert(demands.end(), std::make_move_iterator(fresh.begin()),
                   std::make_move_iterator(fresh.end()));
  }

  DesignPrecomputation out;
  out.utilization = computeUtilization(demands);
  out.outlays = computeOutlays(demands);
  out.warnings = design.validate();
  return out;
}

}  // namespace stordep::engine
