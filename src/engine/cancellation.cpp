#include "engine/cancellation.hpp"

namespace stordep::engine {

EvalError CancellationToken::toError() const {
  const EvalErrorCode code = reason();
  return EvalError{
      code,
      code == EvalErrorCode::kCancelled ? "cancelled before evaluation"
                                        : "deadline exceeded before evaluation",
      /*transient=*/false,
      /*attempts=*/0,
  };
}

}  // namespace stordep::engine
