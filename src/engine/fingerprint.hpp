// fingerprint.hpp — canonical identity of an evaluation request.
//
// The memoizing cache needs a deterministic key for a (StorageDesign,
// FailureScenario) pair. Hashing in-memory object graphs directly would be
// fragile (pointer identity, padding, float bit patterns for -0.0/NaN), so
// the key is *defined* over a canonical serialization: the design-document
// JSON from config::designToJson / scenarioToJson, dumped compactly. That
// serialization writes every quantity as a number in base units at full
// round-trip precision (%.17g), and its field order is fixed by the writer,
// so two pairs serialize identically iff the models would evaluate
// identically. A 128-bit fingerprint makes accidental collisions (a cache
// silently returning the wrong result) a non-concern at any realistic sweep
// size.
//
// The hot path, however, never materializes that JSON. fingerprintDesign /
// fingerprintScenario hash the model fields *structurally*: a tagged token
// stream (strings length-prefixed, finite doubles by bit pattern, every
// non-finite double collapsed to one null token exactly as the JSON writer
// collapses them to "null", optional fields preceded by presence markers,
// conditional fields replicated from the writers' own conditions) fed
// word-at-a-time into the same two independently seeded FNV streams — zero
// string allocation, no number formatting. The token stream is a function
// of exactly the fields the canonical JSON contains, so structural
// fingerprint equality coincides with canonical-serialization equality
// (property-tested in tests/fingerprint_equivalence_test.cpp). The JSON-
// based reference path is kept as fingerprintDesignJson / ...ScenarioJson
// for that test and for the bench that measures the speedup.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "core/failure.hpp"
#include "core/hierarchy.hpp"

namespace stordep::engine {

/// 128-bit content fingerprint; value-comparable and hashable.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex digits, hi word first (for logs and tests).
  [[nodiscard]] std::string toHex() const;

  /// Parses the toHex() form; nullopt unless exactly 32 hex digits. Used by
  /// the checkpoint journal to round-trip keys through text.
  [[nodiscard]] static std::optional<Fingerprint> fromHex(
      std::string_view hex) noexcept;
};

struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(const Fingerprint& fp) const noexcept {
    // The words are already uniform; fold them.
    return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9E3779B97F4A7C15ull));
  }
};

/// FNV-1a over `bytes`, starting from `seed` (defaults to the standard
/// 64-bit offset basis).
[[nodiscard]] std::uint64_t fnv1a64(
    std::string_view bytes, std::uint64_t seed = 0xCBF29CE484222325ull);

/// Fingerprint of an arbitrary byte string (two seeded FNV-1a passes).
[[nodiscard]] Fingerprint fingerprintBytes(std::string_view bytes);

/// The canonical byte strings the fingerprint *equality classes* are defined
/// over (exposed for tests and debugging).
[[nodiscard]] std::string canonicalSerialization(const StorageDesign& design);
[[nodiscard]] std::string canonicalSerialization(
    const FailureScenario& scenario);

/// Structural (serialization-free) fingerprints: the hot path.
[[nodiscard]] Fingerprint fingerprintDesign(const StorageDesign& design);
[[nodiscard]] Fingerprint fingerprintScenario(const FailureScenario& scenario);
[[nodiscard]] Fingerprint fingerprintWorkload(const WorkloadSpec& workload);

/// JSON-based reference implementations (two FNV passes over
/// canonicalSerialization). Same equality classes as the structural pair
/// above — the bit values differ; never mix the two families as cache keys.
[[nodiscard]] Fingerprint fingerprintDesignJson(const StorageDesign& design);
[[nodiscard]] Fingerprint fingerprintScenarioJson(
    const FailureScenario& scenario);

/// One structural pass over a design, exposing the sub-fingerprints the
/// partial-result cache keys on, so a candidate differing in one grid axis
/// shares every other level's cached work.
struct DesignFingerprints {
  /// Whole-design fingerprint; identical to fingerprintDesign(design).
  Fingerprint design;
  /// The workload section alone; identical to fingerprintWorkload().
  Fingerprint workload;
  /// Per-level key: the level's technique/policy tokens folded with the
  /// fingerprints of every device the level references (a level whose
  /// tokens match but whose wan-link device differs must not share demands).
  /// levelKeys[i] corresponds to design.level(i).
  std::vector<Fingerprint> levelKeys;
};

[[nodiscard]] DesignFingerprints fingerprintDesignParts(
    const StorageDesign& design);

/// Order-sensitive combination of two fingerprints (design ⊕ scenario). Lets
/// callers fingerprint a design once and pair it with many scenarios without
/// re-hashing the design.
[[nodiscard]] Fingerprint combine(const Fingerprint& a, const Fingerprint& b);

/// Fingerprint of one evaluation request:
/// combine(fingerprintDesign(d), fingerprintScenario(s)).
[[nodiscard]] Fingerprint fingerprintEvaluation(const StorageDesign& design,
                                                const FailureScenario& scenario);

/// Folds a fingerprint into one well-mixed 64-bit value for consistent-hash
/// placement (src/cluster): the shard ring is keyed on these points. A
/// splitmix64-style finalizer over both words, so every fingerprint bit
/// perturbs every point bit — uniform ring coverage regardless of how the
/// FNV streams cluster.
[[nodiscard]] std::uint64_t ringPoint(const Fingerprint& fp) noexcept;

// ---- Perf counters ---------------------------------------------------------
// Process-wide relaxed counters over every structural fingerprint computed
// (design parts count as one design fingerprint). Nanosecond accounting is
// off by default because the clock reads would rival the hash cost; the
// benches switch it on around their timed sections.

struct FingerprintCounters {
  std::uint64_t designFingerprints = 0;
  std::uint64_t scenarioFingerprints = 0;
  std::uint64_t bytesHashed = 0;  ///< token-stream bytes fed to the FNV state
  std::uint64_t hashNanos = 0;    ///< 0 unless timing is enabled

  [[nodiscard]] double nanosPerFingerprint() const noexcept {
    const std::uint64_t ops = designFingerprints + scenarioFingerprints;
    return ops == 0 ? 0.0
                    : static_cast<double>(hashNanos) / static_cast<double>(ops);
  }
};

[[nodiscard]] FingerprintCounters fingerprintCounters() noexcept;
void resetFingerprintCounters() noexcept;
/// Atomically reads *and zeroes* the counters, returning the values they
/// held. A periodic scraper (the service's /metrics endpoint) calls this
/// once per scrape so consecutive snapshots are per-interval rates rather
/// than process-lifetime totals, without a read-then-reset race dropping
/// ops counted in between.
[[nodiscard]] FingerprintCounters fingerprintCountersReset() noexcept;
/// Enables steady_clock accounting of hash time (benches only).
void setFingerprintTiming(bool enabled) noexcept;
[[nodiscard]] bool fingerprintTimingEnabled() noexcept;

}  // namespace stordep::engine
