// fingerprint.hpp — canonical identity of an evaluation request.
//
// The memoizing cache needs a deterministic key for a (StorageDesign,
// FailureScenario) pair. Hashing in-memory object graphs directly would be
// fragile (pointer identity, padding, float bit patterns for -0.0/NaN), so
// the key is defined over a *canonical serialization* instead: the design-
// document JSON from config::designToJson / scenarioToJson, dumped compactly.
// That serialization writes every quantity as a number in base units at full
// round-trip precision (%.17g), and its field order is fixed by the writer,
// so two pairs serialize identically iff the models would evaluate
// identically. A 128-bit fingerprint is computed as two independently seeded
// FNV-1a passes over those bytes, which makes accidental collisions
// (a cache silently returning the wrong result) a non-concern at any
// realistic sweep size.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "core/failure.hpp"
#include "core/hierarchy.hpp"

namespace stordep::engine {

/// 128-bit content fingerprint; value-comparable and hashable.
struct Fingerprint {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend bool operator==(const Fingerprint&, const Fingerprint&) = default;

  /// 32 lowercase hex digits, hi word first (for logs and tests).
  [[nodiscard]] std::string toHex() const;

  /// Parses the toHex() form; nullopt unless exactly 32 hex digits. Used by
  /// the checkpoint journal to round-trip keys through text.
  [[nodiscard]] static std::optional<Fingerprint> fromHex(
      std::string_view hex) noexcept;
};

struct FingerprintHash {
  [[nodiscard]] std::size_t operator()(const Fingerprint& fp) const noexcept {
    // The words are already uniform; fold them.
    return static_cast<std::size_t>(fp.lo ^ (fp.hi * 0x9E3779B97F4A7C15ull));
  }
};

/// FNV-1a over `bytes`, starting from `seed` (defaults to the standard
/// 64-bit offset basis).
[[nodiscard]] std::uint64_t fnv1a64(
    std::string_view bytes, std::uint64_t seed = 0xCBF29CE484222325ull);

/// Fingerprint of an arbitrary byte string (two seeded FNV-1a passes).
[[nodiscard]] Fingerprint fingerprintBytes(std::string_view bytes);

/// The canonical byte strings the fingerprints are defined over (exposed for
/// tests and debugging).
[[nodiscard]] std::string canonicalSerialization(const StorageDesign& design);
[[nodiscard]] std::string canonicalSerialization(
    const FailureScenario& scenario);

[[nodiscard]] Fingerprint fingerprintDesign(const StorageDesign& design);
[[nodiscard]] Fingerprint fingerprintScenario(const FailureScenario& scenario);

/// Order-sensitive combination of two fingerprints (design ⊕ scenario). Lets
/// callers fingerprint a design once and pair it with many scenarios without
/// re-serializing the design.
[[nodiscard]] Fingerprint combine(const Fingerprint& a, const Fingerprint& b);

/// Fingerprint of one evaluation request:
/// combine(fingerprintDesign(d), fingerprintScenario(s)).
[[nodiscard]] Fingerprint fingerprintEvaluation(const StorageDesign& design,
                                                const FailureScenario& scenario);

}  // namespace stordep::engine
