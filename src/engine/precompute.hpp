// precompute.hpp — partial-result reuse across a design-space sweep.
//
// The grid the optimizer sweeps varies one axis at a time, so consecutive
// candidates share almost every protection level: a candidate that differs
// only in its mirror link count has byte-identical snapshot and backup
// levels. The scenario-independent half of an evaluation (utilization,
// outlays) is a pure function of the per-level normal-mode demand sets, and
// each level's demands depend only on that level's technique configuration
// (policy, referenced devices) and the workload. DemandCache memoizes those
// per-level demand sets under combine(levelKey, workloadFp) — the level
// sub-fingerprints DesignFingerprints exposes — so a candidate differing in
// one grid axis recomputes only that axis's level before reassembling the
// demand vector and running the (cheap, deterministic) utilization/outlay
// folds over it. Results are bit-identical to precomputeDesign() because
// computeUtilization(design) / computeOutlays(design.allDemands()) are
// themselves defined over the same level-order demand vector.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/evaluator.hpp"
#include "devices/device.hpp"
#include "engine/fingerprint.hpp"

namespace stordep::engine {

/// One memoized demand: the device is stored *by name* and rebound to the
/// candidate's own DevicePtr at reuse time, so entries cached from one
/// materialized design apply to every later design with an equal level.
struct CachedDemand {
  std::string device;
  DeviceDemand demand;
};

/// Sharded, bounded memo table for per-level demand sets. Insert-only up to
/// capacity (no LRU: a sweep's working set is the handful of distinct levels
/// in the grid, orders of magnitude below capacity; when full, new entries
/// are simply not cached, which is always correct).
class DemandCache {
 public:
  using Entry = std::shared_ptr<const std::vector<CachedDemand>>;

  static constexpr std::size_t kDefaultCapacity = 4096;
  static constexpr std::size_t kDefaultShards = 8;

  explicit DemandCache(std::size_t capacity = kDefaultCapacity,
                       std::size_t shards = kDefaultShards);

  /// nullptr on miss. Counts a probe either way.
  [[nodiscard]] Entry lookup(const Fingerprint& key);

  /// No-op when the shard is at capacity or the key is already present.
  void insert(const Fingerprint& key, Entry value);

  /// Bulk insert for write-behind merges: groups entries by shard and takes
  /// each shard lock once. Same semantics as insert() per entry in order.
  void insertBatch(std::vector<std::pair<Fingerprint, Entry>>&& entries);

  struct Stats {
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;
    std::uint64_t entries = 0;
    std::uint64_t capacity = 0;

    [[nodiscard]] double hitRate() const noexcept {
      return probes == 0
                 ? 0.0
                 : static_cast<double>(hits) / static_cast<double>(probes);
    }
  };

  [[nodiscard]] Stats stats() const;
  void clear();

 private:
  struct Shard {
    mutable std::mutex mu;
    std::unordered_map<Fingerprint, Entry, FingerprintHash> map;
    std::uint64_t probes = 0;
    std::uint64_t hits = 0;
    std::uint64_t inserts = 0;
  };

  [[nodiscard]] Shard& shardFor(const Fingerprint& key) noexcept {
    return *shards_[key.hi & (shards_.size() - 1)];
  }

  std::vector<std::unique_ptr<Shard>> shards_;
  std::size_t perShardCapacity_;
};

/// precomputeDesign() with per-level demand memoization through `cache`.
/// `parts` must be fingerprintDesignParts(design). Falls back to the direct
/// computation whenever reuse would be ambiguous (duplicate device names,
/// stale part count); the result is bit-identical to precomputeDesign(design)
/// in every case. When `pendingInserts` is non-null, newly computed levels
/// are appended there instead of being inserted into the shared cache —
/// the write-behind mode (engine/batch.hpp): the caller merges the pending
/// vector via insertBatch() after its batch joins, so cold sweeps stop
/// serializing on the demand-cache shard locks.
[[nodiscard]] DesignPrecomputation precomputeDesignCached(
    const StorageDesign& design, const DesignFingerprints& parts,
    DemandCache& cache,
    std::vector<std::pair<Fingerprint, DemandCache::Entry>>* pendingInserts =
        nullptr);

}  // namespace stordep::engine
