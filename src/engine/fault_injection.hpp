// fault_injection.hpp — deterministic fault injection for the engine.
//
// The fault-tolerance paths (per-request isolation, retry with bounded
// backoff, cancellation, deadline expiry) are only trustworthy if they are
// testable, and they are only testable if failures can be provoked on
// demand, deterministically, at each layer they guard. A FaultInjector is
// installed on an Engine (Engine::setFaultInjector) and consulted at four
// sites:
//
//   kEvaluate    — before the model computation for a request;
//   kCacheLookup — before the result-cache probe;
//   kCacheInsert — before the result-cache insert (the engine swallows
//                  injected insert faults: losing a cache write must never
//                  fail a request that already has its result);
//   kPool        — at batch dispatch, standing in for scheduler faults.
//
// Determinism under parallelism: a probability-targeted decision is a pure
// function of (seed, site, request fingerprint) — a seeded sim::Rng stream
// keyed by that triple — so the *same requests* fail no matter how the
// batch is chunked across threads or in what order chunks run. Fingerprint
// targets fail a specific request; `failuresPerTarget` bounds how many
// times each target fires (N transient faults, then success: the retry
// test). Injected latency slows matching sites without failing them, which
// is how deadline expiry is exercised.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "engine/errors.hpp"
#include "engine/fingerprint.hpp"

namespace stordep::engine {

enum class FaultSite : unsigned {
  kEvaluate = 0,
  kCacheLookup = 1,
  kCacheInsert = 2,
  kPool = 3,
};

[[nodiscard]] const char* toString(FaultSite site) noexcept;

[[nodiscard]] constexpr unsigned faultSiteBit(FaultSite site) noexcept {
  return 1u << static_cast<unsigned>(site);
}

/// The exception an armed site throws; classified as kInjected by
/// errorFromCurrentException(), transient per the plan.
class InjectedFault : public std::runtime_error {
 public:
  InjectedFault(FaultSite site, bool transient, const std::string& what)
      : std::runtime_error(what), site_(site), transient_(transient) {}
  [[nodiscard]] FaultSite site() const noexcept { return site_; }
  [[nodiscard]] bool transient() const noexcept { return transient_; }

 private:
  FaultSite site_;
  bool transient_;
};

struct FaultPlan {
  /// Seed for the per-request hash stream (probability decisions).
  std::uint64_t seed = 0x5EEDu;
  /// Which sites are armed (OR of faultSiteBit()).
  unsigned sites = faultSiteBit(FaultSite::kEvaluate);
  /// Probability that an armed site fails a given request. The decision is
  /// a pure function of (seed, site, fingerprint): deterministic across
  /// thread counts and retries (a probability-hit request fails its retries
  /// too — use targets + failuresPerTarget for transient faults).
  double probability = 0.0;
  /// Request fingerprints that always fail at armed sites...
  std::vector<Fingerprint> targets;
  /// ...at most this many times each (< 0 = unlimited). With transient =
  /// true and failuresPerTarget = N, a retry bound > N succeeds and a
  /// smaller one gives up — the retry contract, made testable.
  int failuresPerTarget = -1;
  /// Injected failures are reported transient (retryable) when true.
  bool transient = false;
  /// Extra latency applied on every visit to an armed site (whether or not
  /// the visit ends in a fault). Used to provoke deadline expiry
  /// deterministically.
  std::chrono::microseconds latency{0};
};

class FaultInjector {
 public:
  explicit FaultInjector(FaultPlan plan);

  /// Consults the plan for (site, key): applies injected latency, then
  /// throws InjectedFault if the site should fail this request. No-op for
  /// unarmed sites.
  void maybeInject(FaultSite site, const Fingerprint& key);

  /// Would (site, key) fail right now? Does not consume a per-target
  /// budget and does not sleep.
  [[nodiscard]] bool wouldFail(FaultSite site, const Fingerprint& key) const;

  [[nodiscard]] const FaultPlan& plan() const noexcept { return plan_; }
  /// Faults fired so far (across threads).
  [[nodiscard]] std::uint64_t injected() const noexcept {
    return injected_.load(std::memory_order_relaxed);
  }
  /// Site visits observed so far (armed sites only).
  [[nodiscard]] std::uint64_t visits() const noexcept {
    return visits_.load(std::memory_order_relaxed);
  }

 private:
  [[nodiscard]] bool probabilityHit(FaultSite site,
                                    const Fingerprint& key) const;

  FaultPlan plan_;
  std::atomic<std::uint64_t> visits_{0};
  std::atomic<std::uint64_t> injected_{0};
  mutable std::mutex mu_;  // guards budgets_
  std::unordered_map<Fingerprint, int, FingerprintHash> budgets_;
};

}  // namespace stordep::engine
