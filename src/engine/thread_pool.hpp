// thread_pool.hpp — work-stealing thread pool for the evaluation engine.
//
// The analytic models are pure functions of (design, scenario), so a design-
// space sweep is embarrassingly parallel; what it needs from the runtime is
// cheap fan-out and load balancing when per-candidate work is uneven (some
// candidates bail out at the first infeasible scenario, others evaluate the
// full set). Each worker owns a deque: it pushes and pops its own work LIFO
// for locality and steals FIFO from the back of a sibling's deque when it
// runs dry. External submissions are distributed round-robin.
//
// Two entry points:
//  * submit(f) -> std::future<R>: one task, exceptions captured in the future;
//  * parallelFor(n, body): index-space fan-out over [0, n). The calling
//    thread participates in the loop (so a pool of size 1 — or a nested call
//    from a worker — cannot deadlock), chunks are handed out through an
//    atomic cursor, and the first exception thrown by any chunk is rethrown
//    on the caller after the loop drains.
//
// Failure drain contract: the first exception poisons the loop — the cursor
// stops handing out chunks AND every runner re-checks a shared stop flag
// before each body call, so in-flight chunks abandon their remaining
// indices. Post-failure work is bounded by the number of body calls already
// executing (≤ runners), independent of chunk size or count.
// parallelForCancellable() applies the same mechanism to a
// CancellationToken: once the token fires, un-started indices are skipped
// and the call reports incompletion instead of throwing.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "engine/cancellation.hpp"

namespace stordep::engine {

class ThreadPool {
 public:
  /// Spawns `threads` workers; values < 1 (including the 0 that
  /// std::thread::hardware_concurrency() may report) mean "one per
  /// hardware thread, at least one".
  explicit ThreadPool(int threads = 0);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  [[nodiscard]] int threadCount() const noexcept {
    return static_cast<int>(workers_.size());
  }

  /// Schedules `f()` on the pool; the future carries its result or exception.
  template <typename F>
  [[nodiscard]] auto submit(F&& f) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task = std::make_shared<std::packaged_task<R()>>(std::forward<F>(f));
    std::future<R> future = task->get_future();
    enqueue([task]() { (*task)(); });
    return future;
  }

  /// Runs body(i) for every i in [0, count). Blocks until the loop drains;
  /// the calling thread executes chunks alongside the workers. If any call
  /// throws, the first captured exception is rethrown here; remaining
  /// indices — including the rest of already-grabbed chunks — are skipped
  /// (see the failure drain contract above). `grain` is the number of
  /// indices handed out per grab; 0 picks a grain that yields ~4 chunks per
  /// thread.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body,
                   std::size_t grain = 0);

  /// parallelFor that additionally polls `token` at each chunk grab (and
  /// stops in-flight chunks via the shared stop flag once it fires).
  /// Returns true when every index ran; false when cancellation skipped
  /// some. Callers that need per-index accounting of skipped work should
  /// also poll the token inside `body` — the pool only guarantees prompt
  /// draining, not which indices were reached. Exceptions rethrow as in
  /// parallelFor.
  bool parallelForCancellable(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              const CancellationToken& token,
                              std::size_t grain = 0);

  /// A process-wide pool sized to the hardware, for callers that do not
  /// manage their own. Constructed on first use.
  [[nodiscard]] static ThreadPool& shared();

 private:
  struct Queue {
    std::mutex mu;
    std::deque<std::function<void()>> tasks;
  };

  void enqueue(std::function<void()> task);
  void workerLoop(std::size_t self);
  bool tryPop(std::size_t self, std::function<void()>& task);

  std::vector<std::unique_ptr<Queue>> queues_;
  std::vector<std::thread> workers_;
  std::mutex sleepMu_;
  std::condition_variable sleepCv_;
  std::size_t pending_ = 0;  // guarded by sleepMu_
  bool stop_ = false;        // guarded by sleepMu_
  std::atomic<std::size_t> nextQueue_{0};
};

}  // namespace stordep::engine
