#include "engine/batch.hpp"

#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>

namespace stordep::engine {

namespace {
int resolveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}
}  // namespace

Engine::Engine(EngineOptions options)
    : options_(options),
      threads_(resolveThreads(options.threads)),
      cache_(options.cacheCapacity, options.cacheShards) {
  if (threads_ > 1) {
    // The calling thread participates in parallelFor, so threads_ - 1
    // workers give exactly threads_ concurrent executors.
    pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  }
}

EvaluationResult Engine::evaluate(const StorageDesign& design,
                                  const FailureScenario& scenario) {
  std::optional<DesignPrecomputation> precomputed;
  return evaluateKeyed(design, scenario,
                       fingerprintEvaluation(design, scenario), precomputed);
}

EvaluationResult Engine::evaluateKeyed(
    const StorageDesign& design, const FailureScenario& scenario,
    const Fingerprint& pairKey,
    std::optional<DesignPrecomputation>& precomputed) {
  if (!options_.useCache) {
    if (!precomputed) precomputed = precomputeDesign(design);
    return stordep::evaluate(design, scenario, *precomputed);
  }
  if (std::optional<EvaluationResult> hit = cache_.lookup(pairKey)) {
    return std::move(*hit);
  }
  if (!precomputed) precomputed = precomputeDesign(design);
  EvaluationResult result = stordep::evaluate(design, scenario, *precomputed);
  cache_.insert(pairKey, result);
  return result;
}

BatchResult Engine::evaluateBatch(const std::vector<EvalRequest>& requests) {
  const auto start = std::chrono::steady_clock::now();

  BatchResult out;
  out.results.resize(requests.size());
  out.stats.threadsUsed = threads_;
  out.stats.requests = requests.size();

  // Fingerprint each distinct design once (batches typically pair a few
  // designs with many scenarios).
  std::unordered_map<const StorageDesign*, Fingerprint> designFps;
  for (const EvalRequest& request : requests) {
    designFps.emplace(request.design.get(), Fingerprint{});
  }
  std::vector<const StorageDesign*> uniqueDesigns;
  uniqueDesigns.reserve(designFps.size());
  for (const auto& [design, fp] : designFps) uniqueDesigns.push_back(design);
  parallelFor(uniqueDesigns.size(), [&](std::size_t i) {
    designFps[uniqueDesigns[i]] = fingerprintDesign(*uniqueDesigns[i]);
  });

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> computed{0};
  parallelFor(requests.size(), [&](std::size_t i) {
    const EvalRequest& request = requests[i];
    const Fingerprint key = combine(designFps.at(request.design.get()),
                                    fingerprintScenario(request.scenario));
    if (options_.useCache) {
      if (std::optional<EvaluationResult> hit = cache_.lookup(key)) {
        out.results[i] = std::move(*hit);
        hits.fetch_add(1, std::memory_order_relaxed);
        return;
      }
    }
    out.results[i] = stordep::evaluate(*request.design, request.scenario);
    computed.fetch_add(1, std::memory_order_relaxed);
    if (options_.useCache) cache_.insert(key, out.results[i]);
  });

  out.stats.cacheHits = hits.load();
  out.stats.evaluations = computed.load();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  out.stats.wallSeconds = elapsed.count();
  out.stats.evalsPerSec =
      out.stats.wallSeconds > 0.0
          ? static_cast<double>(out.stats.requests) / out.stats.wallSeconds
          : 0.0;
  return out;
}

void Engine::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)>& body) {
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool_->parallelFor(count, body);
}

Engine& Engine::shared() {
  static Engine engine;
  return engine;
}

}  // namespace stordep::engine
