#include "engine/batch.hpp"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <unordered_map>
#include <utility>

namespace stordep::engine {

namespace {
int resolveThreads(int requested) {
  if (requested >= 1) return requested;
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

/// Backoff before retry `attempt` (0-based): base * 2^attempt, capped.
std::chrono::milliseconds backoffFor(const BatchOptions& options,
                                     int attempt) {
  if (options.retryBackoff.count() <= 0) return std::chrono::milliseconds{0};
  std::chrono::milliseconds delay = options.retryBackoff;
  for (int i = 0; i < attempt && delay < BatchOptions::kMaxRetryBackoff; ++i) {
    delay *= 2;
  }
  return std::min(delay, BatchOptions::kMaxRetryBackoff);
}

/// Which engine's write-behind buffers this thread currently holds. The
/// epoch ties the cached pointer to one scope: registry teardown at scope
/// close bumps the epoch, so a stale pointer is never dereferenced.
struct ThreadWriteBehind {
  const Engine* engine = nullptr;
  std::uint64_t epoch = 0;
  Engine::WriteBehindBuffers* buffers = nullptr;
};
thread_local ThreadWriteBehind tlsWriteBehind;

/// Epochs are drawn from one process-wide counter, not per engine: a thread's
/// cached buffer pointer is only trusted when (engine, epoch) both match, and
/// a per-engine counter restarts at zero when an engine is destroyed and a
/// new one is constructed at the same address — which would revalidate a
/// dangling pointer into the dead engine's freed registry. A never-repeating
/// epoch makes that impossible.
std::atomic<std::uint64_t> writeBehindEpochSource{0};
}  // namespace

Engine::WriteBehindScope::WriteBehindScope(Engine& engine) : engine_(engine) {
  // Degrade to a no-op (direct per-insert path) whenever buffering would
  // change observable semantics or an outer scope already buffers.
  if (engine.injector_ != nullptr || !engine.options_.useCache ||
      engine.options_.writeBehindLimit == 0 ||
      engine.writeBehindActive_.load(std::memory_order_relaxed)) {
    return;
  }
  engine.writeBehindEpoch_.store(
      writeBehindEpochSource.fetch_add(1, std::memory_order_relaxed) + 1,
      std::memory_order_release);
  engine.writeBehindActive_.store(true, std::memory_order_release);
  active_ = true;
}

Engine::WriteBehindScope::~WriteBehindScope() {
  if (!active_) return;
  engine_.writeBehindActive_.store(false, std::memory_order_release);
  engine_.mergeWriteBehind();
}

Engine::WriteBehindBuffers* Engine::writeBehindBuffers() {
  if (!writeBehindActive_.load(std::memory_order_acquire)) return nullptr;
  const std::uint64_t epoch = writeBehindEpoch_.load(std::memory_order_acquire);
  ThreadWriteBehind& tls = tlsWriteBehind;
  if (tls.engine == this && tls.epoch == epoch) return tls.buffers;
  auto buffers = std::make_unique<WriteBehindBuffers>();
  WriteBehindBuffers* raw = buffers.get();
  {
    const std::lock_guard<std::mutex> lock(writeBehindMu_);
    writeBehindRegistry_.push_back(std::move(buffers));
  }
  tls = ThreadWriteBehind{this, epoch, raw};
  return raw;
}

void Engine::mergeWriteBehind() {
  // Runs on the scope-owning thread after every covered parallelFor has
  // joined, so no worker can be appending concurrently.
  std::vector<std::unique_ptr<WriteBehindBuffers>> registry;
  {
    const std::lock_guard<std::mutex> lock(writeBehindMu_);
    registry.swap(writeBehindRegistry_);
  }
  for (const auto& buffers : registry) {
    cache_.insertBatch(std::move(buffers->evalPending));
    demandCache_.insertBatch(std::move(buffers->demandPending));
  }
}

Engine::Engine(EngineOptions options)
    : options_(options),
      threads_(resolveThreads(options.threads)),
      cache_(options.cacheCapacity, options.cacheShards) {
  if (threads_ > 1) {
    // The calling thread participates in parallelFor, so threads_ - 1
    // workers give exactly threads_ concurrent executors.
    pool_ = std::make_unique<ThreadPool>(threads_ - 1);
  }
}

void Engine::setFaultInjector(std::shared_ptr<FaultInjector> injector) {
  injector_ = injector;
  cache_.setFaultInjector(std::move(injector));
}

EvaluationResult Engine::evaluate(const StorageDesign& design,
                                  const FailureScenario& scenario) {
  std::optional<DesignPrecomputation> precomputed;
  return evaluateKeyed(design, scenario,
                       fingerprintEvaluation(design, scenario), precomputed);
}

EvalOutcome Engine::tryEvaluate(const StorageDesign& design,
                                const FailureScenario& scenario,
                                const BatchOptions& options) {
  try {
    std::optional<DesignPrecomputation> precomputed;
    return tryEvaluateKeyed(design, scenario,
                            fingerprintEvaluation(design, scenario),
                            precomputed, options);
  } catch (...) {
    // Fingerprinting itself rejected the design (unserializable).
    return errorFromCurrentException();
  }
}

EvaluationResult Engine::evaluateKeyed(
    const StorageDesign& design, const FailureScenario& scenario,
    const Fingerprint& pairKey,
    std::optional<DesignPrecomputation>& precomputed,
    const DesignFingerprints* parts) {
  if (options_.useCache) {
    // May throw an injected kCacheLookup fault; a lookup that cannot be
    // trusted must not silently serve a result.
    if (std::optional<EvaluationResult> hit = cache_.lookup(pairKey)) {
      return std::move(*hit);
    }
  }
  if (injector_) injector_->maybeInject(FaultSite::kEvaluate, pairKey);
  WriteBehindBuffers* writeBehind =
      options_.useCache ? writeBehindBuffers() : nullptr;
  if (!precomputed) {
    // Demand-cache writes stay direct even under a write-behind scope:
    // candidates *within* one sweep share protection levels, so a deferred
    // level insert would make every sharer recompute it. Level inserts are
    // rare (one per distinct level in the sweep), so the shard lock they
    // take is noise; pair-result inserts below are the hot ones.
    precomputed = parts != nullptr
                      ? precomputeDesignCached(design, *parts, demandCache_)
                      : precomputeDesign(design);
  }
  EvaluationResult result = stordep::evaluate(design, scenario, *precomputed);
  if (options_.useCache) {
    if (writeBehind != nullptr) {
      // Deferred write: merged into the shared cache (bulk, one lock per
      // shard) when the enclosing WriteBehindScope closes, or flushed here
      // once the buffer hits its bound.
      writeBehind->evalPending.emplace_back(pairKey, result);
      if (writeBehind->evalPending.size() >= options_.writeBehindLimit) {
        cache_.insertBatch(std::move(writeBehind->evalPending));
      }
    } else {
      try {
        cache_.insert(pairKey, result);
      } catch (...) {
        // Losing a cache write (injected kCacheInsert fault, allocation
        // failure) never fails a request that already has its result.
      }
    }
  }
  return result;
}

EvalOutcome Engine::tryEvaluateKeyed(
    const StorageDesign& design, const FailureScenario& scenario,
    const Fingerprint& pairKey,
    std::optional<DesignPrecomputation>& precomputed,
    const BatchOptions& options, std::uint64_t* retriesOut,
    const DesignFingerprints* parts) {
  const int maxRetries = std::max(0, options.maxRetries);
  for (int attempt = 0;; ++attempt) {
    try {
      return EvalOutcome(
          evaluateKeyed(design, scenario, pairKey, precomputed, parts));
    } catch (...) {
      EvalError error = errorFromCurrentException();
      error.attempts = attempt + 1;
      if (!isRetryable(error) || attempt >= maxRetries) return error;
      if (retriesOut != nullptr) ++*retriesOut;
      const std::chrono::milliseconds delay = backoffFor(options, attempt);
      if (delay.count() > 0) std::this_thread::sleep_for(delay);
    }
  }
}

BatchResult Engine::evaluateBatch(const std::vector<EvalRequest>& requests,
                                  const BatchOptions& options) {
  const auto start = std::chrono::steady_clock::now();

  // No write-behind scope here: a batch may legitimately contain duplicate
  // pairs (the service batcher coalesces concurrent requests), and deferred
  // inserts would make every duplicate recompute instead of hitting. The
  // optimizer's sweeps — whose pair keys are unique — open the scope
  // themselves around their candidate fan-outs.
  BatchResult out;
  // Default-constructed slots read "not evaluated"; every request below
  // overwrites its own slot exactly once.
  out.results.resize(requests.size());
  out.stats.threadsUsed = threads_;
  out.stats.requests = requests.size();

  CancellationToken token = options.token;
  if (options.deadline.count() > 0) {
    token = token.withDeadline(options.deadline);
  }
  const bool cancellable = token.cancellable();

  // Fingerprint each distinct design once (batches typically pair a few
  // designs with many scenarios). A design that cannot be fingerprinted is
  // itself invalid; the error is attached to each of its requests rather
  // than aborting the batch.
  struct DesignEntry {
    DesignFingerprints parts;
    std::optional<EvalError> error;
  };
  std::unordered_map<const StorageDesign*, DesignEntry> designFps;
  for (const EvalRequest& request : requests) {
    if (request.design != nullptr) {
      designFps.emplace(request.design.get(), DesignEntry{});
    }
  }
  std::vector<const StorageDesign*> uniqueDesigns;
  uniqueDesigns.reserve(designFps.size());
  for (const auto& [design, entry] : designFps) {
    uniqueDesigns.push_back(design);
  }
  parallelFor(uniqueDesigns.size(), [&](std::size_t i) {
    DesignEntry& entry = designFps[uniqueDesigns[i]];
    try {
      entry.parts = fingerprintDesignParts(*uniqueDesigns[i]);
    } catch (...) {
      entry.error = errorFromCurrentException();
    }
  });

  // Scenario fingerprints hoisted out of the per-slot loop: each is computed
  // once per batch rather than once per (design, scenario) pair. Batches are
  // typically grouped by scenario, so adjacent duplicates collapse to one
  // hash each.
  std::vector<Fingerprint> scenarioFps(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i > 0 && requests[i].scenario == requests[i - 1].scenario) {
      scenarioFps[i] = scenarioFps[i - 1];
    } else {
      scenarioFps[i] = fingerprintScenario(requests[i].scenario);
    }
  }

  std::atomic<std::uint64_t> hits{0};
  std::atomic<std::uint64_t> computed{0};
  std::atomic<std::uint64_t> failed{0};
  std::atomic<std::uint64_t> cancelled{0};
  std::atomic<std::uint64_t> retries{0};

  auto evaluateOne = [&](std::size_t i) -> EvalOutcome {
    const EvalRequest& request = requests[i];
    if (request.design == nullptr) {
      return EvalError{EvalErrorCode::kInvalidDesign,
                       "request " + std::to_string(i) + " has a null design",
                       /*transient=*/false, /*attempts=*/0};
    }
    const DesignEntry& entry = designFps.at(request.design.get());
    if (entry.error) return *entry.error;
    // Cancellation/deadline is polled before a request starts, never mid-
    // evaluation: finished work stays valid, un-started work is skipped.
    if (cancellable && token.cancelled()) return token.toError();

    const Fingerprint key = combine(entry.parts.design, scenarioFps[i]);
    // The pool site stands in for dispatch-layer faults; it is not retried.
    if (injector_) injector_->maybeInject(FaultSite::kPool, key);

    const std::uint64_t misses0 = cache_.stats().misses;
    std::optional<DesignPrecomputation> precomputed;
    std::uint64_t localRetries = 0;
    EvalOutcome outcome = tryEvaluateKeyed(*request.design, request.scenario,
                                           key, precomputed, options,
                                           &localRetries, &entry.parts);
    retries.fetch_add(localRetries, std::memory_order_relaxed);
    if (outcome.ok()) {
      // Computed iff the retried lookup path missed; hit otherwise. The
      // per-shard miss counter is exact even under concurrency because the
      // same key cannot be in flight twice within one batch slot.
      if (options_.useCache && cache_.stats().misses == misses0) {
        hits.fetch_add(1, std::memory_order_relaxed);
      } else {
        computed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    return outcome;
  };

  parallelFor(requests.size(), [&](std::size_t i) {
    EvalOutcome outcome;
    try {
      outcome = evaluateOne(i);
    } catch (...) {
      outcome = errorFromCurrentException();
    }
    if (const EvalError* error = outcome.errorIf()) {
      if (error->code == EvalErrorCode::kCancelled ||
          error->code == EvalErrorCode::kDeadlineExceeded) {
        cancelled.fetch_add(1, std::memory_order_relaxed);
      } else {
        failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    out.results[i] = std::move(outcome);
  });

  out.stats.cacheHits = hits.load();
  out.stats.evaluations = computed.load();
  out.stats.failed = failed.load();
  out.stats.cancelled = cancelled.load();
  out.stats.retries = retries.load();
  const std::chrono::duration<double> elapsed =
      std::chrono::steady_clock::now() - start;
  out.stats.wallSeconds = elapsed.count();
  out.stats.evalsPerSec =
      out.stats.wallSeconds > 0.0
          ? static_cast<double>(out.stats.requests) / out.stats.wallSeconds
          : 0.0;
  return out;
}

BumpArena& Engine::threadArena() {
  static thread_local BumpArena arena;
  return arena;
}

std::vector<EvaluationMetrics> Engine::evaluatePlanMatrix(
    const std::vector<std::shared_ptr<const StorageDesign>>& designs,
    const std::vector<FailureScenario>& scenarios,
    PlanBatchStats* statsOut) {
  const auto start = std::chrono::steady_clock::now();
  const std::size_t designCount = designs.size();
  const std::size_t scenarioCount = scenarios.size();
  std::vector<EvaluationMetrics> out(designCount * scenarioCount);

  // Phase 1: one plan compile per design (parallel across designs). The
  // rare plan-incompatible design gets its scenario-independent sub-models
  // precomputed here instead, so its legacy fallback evals don't repeat
  // them per scenario.
  std::vector<std::shared_ptr<const EvalPlan>> plans(designCount);
  std::vector<std::optional<DesignPrecomputation>> legacyPre(designCount);
  std::atomic<std::uint64_t> compiled{0};
  std::atomic<std::uint64_t> incompatible{0};
  parallelFor(designCount, [&](std::size_t d) {
    if (designs[d] == nullptr) return;
    plans[d] = EvalPlan::compile(*designs[d]);
    if (plans[d] != nullptr) {
      compiled.fetch_add(1, std::memory_order_relaxed);
    } else {
      incompatible.fetch_add(1, std::memory_order_relaxed);
      legacyPre[d] = precomputeDesign(*designs[d]);
    }
  });

  // Phase 2: every (design, scenario) pair, allocation-free via the
  // per-thread arenas. Design-major order keeps a design's plan hot in
  // cache across its scenario row.
  parallelFor(designCount * scenarioCount, [&](std::size_t k) {
    const std::size_t d = k / scenarioCount;
    if (designs[d] == nullptr) return;
    const std::size_t s = k % scenarioCount;
    if (plans[d] != nullptr) {
      out[k] = plans[d]->evaluate(scenarios[s], threadArena());
    } else {
      out[k] = summarizeEvaluation(
          stordep::evaluate(*designs[d], scenarios[s], *legacyPre[d]));
    }
  });

  if (statsOut != nullptr) {
    statsOut->threadsUsed = threads_;
    statsOut->pairs = designCount * scenarioCount;
    statsOut->planCompiles = compiled.load();
    statsOut->planIncompatible = incompatible.load();
    const std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    statsOut->wallSeconds = elapsed.count();
    statsOut->pairsPerSec =
        statsOut->wallSeconds > 0.0
            ? static_cast<double>(statsOut->pairs) / statsOut->wallSeconds
            : 0.0;
  }
  return out;
}

void Engine::parallelFor(std::size_t count,
                         const std::function<void(std::size_t)>& body) {
  if (pool_ == nullptr) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  pool_->parallelFor(count, body);
}

bool Engine::parallelForCancellable(
    std::size_t count, const std::function<void(std::size_t)>& body,
    const CancellationToken& token) {
  if (pool_ == nullptr) {
    const bool cancellable = token.cancellable();
    for (std::size_t i = 0; i < count; ++i) {
      if (cancellable && token.cancelled()) return false;
      body(i);
    }
    return true;
  }
  return pool_->parallelForCancellable(count, body, token);
}

Engine& Engine::shared() {
  static Engine engine;
  return engine;
}

}  // namespace stordep::engine
