// cancellation.hpp — cooperative cancellation and deadlines for sweeps.
//
// A CancellationSource owns a flag; the CancellationTokens it hands out are
// cheap copyable views of that flag, optionally tightened with a wall-clock
// deadline. Long-running loops (parallelFor chunk dispatch, the optimizer's
// candidate loop, batch evaluation) poll token.cancelled() at natural
// checkpoints — nothing is interrupted mid-evaluation, so results already
// computed stay valid and un-started work is skipped with a structured
// kCancelled / kDeadlineExceeded error.
//
// A default-constructed token is "never cancelled" and costs one branch to
// poll, so APIs can take tokens unconditionally.
#pragma once

#include <atomic>
#include <chrono>
#include <memory>
#include <optional>

#include "engine/errors.hpp"

namespace stordep::engine {

class CancellationToken {
 public:
  using Clock = std::chrono::steady_clock;

  /// Never cancelled, no deadline.
  CancellationToken() = default;

  /// True when cancellation was requested or the deadline has passed.
  [[nodiscard]] bool cancelled() const noexcept {
    if (flag_ && flag_->load(std::memory_order_acquire)) return true;
    return deadline_ && Clock::now() >= *deadline_;
  }

  /// Why cancelled() is true (call only when it is): an explicit cancel()
  /// wins over an elapsed deadline.
  [[nodiscard]] EvalErrorCode reason() const noexcept {
    if (flag_ && flag_->load(std::memory_order_acquire)) {
      return EvalErrorCode::kCancelled;
    }
    return EvalErrorCode::kDeadlineExceeded;
  }

  /// A structured error describing the current cancellation state.
  [[nodiscard]] EvalError toError() const;

  /// A token sharing this token's flag whose deadline is the earlier of
  /// this token's and now + budget.
  [[nodiscard]] CancellationToken withDeadline(
      std::chrono::nanoseconds budget) const {
    CancellationToken out = *this;
    const Clock::time_point candidate = Clock::now() + budget;
    if (!out.deadline_ || candidate < *out.deadline_) {
      out.deadline_ = candidate;
    }
    return out;
  }

  /// True when this token can ever fire (has a flag or a deadline).
  [[nodiscard]] bool cancellable() const noexcept {
    return flag_ != nullptr || deadline_.has_value();
  }

  [[nodiscard]] std::optional<Clock::time_point> deadline() const noexcept {
    return deadline_;
  }

 private:
  friend class CancellationSource;
  explicit CancellationToken(
      std::shared_ptr<const std::atomic<bool>> flag) noexcept
      : flag_(std::move(flag)) {}

  std::shared_ptr<const std::atomic<bool>> flag_;
  std::optional<Clock::time_point> deadline_;
};

class CancellationSource {
 public:
  CancellationSource() : flag_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; idempotent, thread-safe, never blocks.
  void cancel() noexcept { flag_->store(true, std::memory_order_release); }

  [[nodiscard]] bool cancelRequested() const noexcept {
    return flag_->load(std::memory_order_acquire);
  }

  [[nodiscard]] CancellationToken token() const noexcept {
    return CancellationToken(flag_);
  }

 private:
  std::shared_ptr<std::atomic<bool>> flag_;
};

}  // namespace stordep::engine
