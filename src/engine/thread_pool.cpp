#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace stordep::engine {

namespace {
/// Set inside workerLoop so submissions from a worker land on its own deque
/// (LIFO reuse of a warm cache) instead of round-robining.
thread_local std::size_t tlsWorkerIndex = static_cast<std::size_t>(-1);
thread_local const ThreadPool* tlsWorkerPool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i]() { workerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleepMu_);
    stop_ = true;
  }
  sleepCv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t target;
  if (tlsWorkerPool == this) {
    target = tlsWorkerIndex;  // keep a worker's own spawns local
  } else {
    target = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    if (tlsWorkerPool == this) {
      queues_[target]->tasks.push_front(std::move(task));
    } else {
      queues_[target]->tasks.push_back(std::move(task));
    }
  }
  {
    std::lock_guard<std::mutex> lock(sleepMu_);
    ++pending_;
  }
  sleepCv_.notify_one();
}

bool ThreadPool::tryPop(std::size_t self, std::function<void()>& task) {
  // Own queue first (front = most recently pushed by this worker).
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of a sibling's queue (its oldest work).
  for (std::size_t step = 1; step < queues_.size(); ++step) {
    Queue& victim = *queues_[(self + step) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t self) {
  tlsWorkerIndex = self;
  tlsWorkerPool = this;
  for (;;) {
    std::function<void()> task;
    if (tryPop(self, task)) {
      {
        std::lock_guard<std::mutex> lock(sleepMu_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleepMu_);
    sleepCv_.wait(lock, [this]() { return pending_ > 0 || stop_; });
    if (stop_ && pending_ == 0) return;
  }
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  (void)parallelForCancellable(count, body, CancellationToken{}, grain);
}

bool ThreadPool::parallelForCancellable(
    std::size_t count, const std::function<void(std::size_t)>& body,
    const CancellationToken& token, std::size_t grain) {
  if (count == 0) return true;
  const auto threads = static_cast<std::size_t>(threadCount());
  if (grain == 0) {
    grain = std::max<std::size_t>(1, count / (threads * 4));
  }

  struct ForState {
    std::atomic<std::size_t> cursor{0};
    std::atomic<int> inflight{0};
    // Set on the first exception or cancellation. Runners poll it before
    // every body call, so a poisoned loop abandons even the chunks it has
    // already grabbed: post-failure work is bounded by the body calls that
    // were mid-execution, not by the chunk size.
    std::atomic<bool> stop{false};
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;  // first exception, guarded by mu
  };
  auto state = std::make_shared<ForState>();
  const bool cancellable = token.cancellable();

  auto runner = [state, count, grain, cancellable, &token, &body]() {
    state->inflight.fetch_add(1, std::memory_order_acq_rel);
    while (!state->stop.load(std::memory_order_acquire)) {
      const std::size_t begin =
          state->cursor.fetch_add(grain, std::memory_order_relaxed);
      // The cursor check must precede any touch of `body`/`token` (captured
      // by reference): a helper that starts after the call returned sees an
      // exhausted cursor and bails before dereferencing them.
      if (begin >= count) break;
      // The token is polled once per chunk grab (a deadline poll reads the
      // clock); the stop flag relays the verdict to every other runner.
      if (cancellable && token.cancelled()) {
        state->stop.store(true, std::memory_order_release);
        state->cursor.store(count, std::memory_order_relaxed);
        break;
      }
      const std::size_t end = std::min(begin + grain, count);
      try {
        for (std::size_t i = begin; i < end; ++i) {
          if (state->stop.load(std::memory_order_acquire)) break;
          body(i);
        }
      } catch (...) {
        {
          std::lock_guard<std::mutex> lock(state->mu);
          if (!state->error) state->error = std::current_exception();
        }
        // Poison the loop: no new chunks, and in-flight chunks abandon
        // their remaining indices at the next per-index stop check.
        state->stop.store(true, std::memory_order_release);
        state->cursor.store(count, std::memory_order_relaxed);
      }
    }
    if (state->inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done.notify_all();
    }
  };

  // Recruit at most one helper per worker; the caller runs the loop too, so
  // progress never depends on a worker being free.
  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t helpers = std::min(threads, chunks > 0 ? chunks - 1 : 0);
  for (std::size_t i = 0; i < helpers; ++i) {
    // The helper's copy of `runner` captures `body` (and `token`) by
    // reference; that is safe because this function does not return before
    // inflight drains and the cursor is exhausted — a helper that starts
    // later sees cursor >= count (or stop) and returns without touching
    // them.
    enqueue(runner);
  }
  runner();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&]() {
    return state->inflight.load(std::memory_order_acquire) == 0 &&
           state->cursor.load(std::memory_order_relaxed) >= count;
  });
  if (state->error) std::rethrow_exception(state->error);
  return !state->stop.load(std::memory_order_acquire);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace stordep::engine
