#include "engine/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <exception>

namespace stordep::engine {

namespace {
/// Set inside workerLoop so submissions from a worker land on its own deque
/// (LIFO reuse of a warm cache) instead of round-robining.
thread_local std::size_t tlsWorkerIndex = static_cast<std::size_t>(-1);
thread_local const ThreadPool* tlsWorkerPool = nullptr;
}  // namespace

ThreadPool::ThreadPool(int threads) {
  if (threads < 1) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw == 0 ? 1 : static_cast<int>(hw);
  }
  queues_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    queues_.push_back(std::make_unique<Queue>());
  }
  workers_.reserve(static_cast<std::size_t>(threads));
  for (int i = 0; i < threads; ++i) {
    workers_.emplace_back(
        [this, i]() { workerLoop(static_cast<std::size_t>(i)); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(sleepMu_);
    stop_ = true;
  }
  sleepCv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

void ThreadPool::enqueue(std::function<void()> task) {
  std::size_t target;
  if (tlsWorkerPool == this) {
    target = tlsWorkerIndex;  // keep a worker's own spawns local
  } else {
    target = nextQueue_.fetch_add(1, std::memory_order_relaxed) %
             queues_.size();
  }
  {
    std::lock_guard<std::mutex> lock(queues_[target]->mu);
    if (tlsWorkerPool == this) {
      queues_[target]->tasks.push_front(std::move(task));
    } else {
      queues_[target]->tasks.push_back(std::move(task));
    }
  }
  {
    std::lock_guard<std::mutex> lock(sleepMu_);
    ++pending_;
  }
  sleepCv_.notify_one();
}

bool ThreadPool::tryPop(std::size_t self, std::function<void()>& task) {
  // Own queue first (front = most recently pushed by this worker).
  {
    Queue& own = *queues_[self];
    std::lock_guard<std::mutex> lock(own.mu);
    if (!own.tasks.empty()) {
      task = std::move(own.tasks.front());
      own.tasks.pop_front();
      return true;
    }
  }
  // Steal from the back of a sibling's queue (its oldest work).
  for (std::size_t step = 1; step < queues_.size(); ++step) {
    Queue& victim = *queues_[(self + step) % queues_.size()];
    std::lock_guard<std::mutex> lock(victim.mu);
    if (!victim.tasks.empty()) {
      task = std::move(victim.tasks.back());
      victim.tasks.pop_back();
      return true;
    }
  }
  return false;
}

void ThreadPool::workerLoop(std::size_t self) {
  tlsWorkerIndex = self;
  tlsWorkerPool = this;
  for (;;) {
    std::function<void()> task;
    if (tryPop(self, task)) {
      {
        std::lock_guard<std::mutex> lock(sleepMu_);
        --pending_;
      }
      task();
      continue;
    }
    std::unique_lock<std::mutex> lock(sleepMu_);
    sleepCv_.wait(lock, [this]() { return pending_ > 0 || stop_; });
    if (stop_ && pending_ == 0) return;
  }
}

void ThreadPool::parallelFor(std::size_t count,
                             const std::function<void(std::size_t)>& body,
                             std::size_t grain) {
  if (count == 0) return;
  const auto threads = static_cast<std::size_t>(threadCount());
  if (grain == 0) {
    grain = std::max<std::size_t>(1, count / (threads * 4));
  }

  struct ForState {
    std::atomic<std::size_t> cursor{0};
    std::atomic<int> inflight{0};
    std::mutex mu;
    std::condition_variable done;
    std::exception_ptr error;  // first exception, guarded by mu
  };
  auto state = std::make_shared<ForState>();

  auto runner = [state, count, grain, &body]() {
    state->inflight.fetch_add(1, std::memory_order_acq_rel);
    for (;;) {
      const std::size_t begin =
          state->cursor.fetch_add(grain, std::memory_order_relaxed);
      if (begin >= count) break;
      const std::size_t end = std::min(begin + grain, count);
      try {
        for (std::size_t i = begin; i < end; ++i) body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock(state->mu);
        if (!state->error) state->error = std::current_exception();
        // Poison the cursor so remaining chunks are abandoned.
        state->cursor.store(count, std::memory_order_relaxed);
      }
    }
    if (state->inflight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      std::lock_guard<std::mutex> lock(state->mu);
      state->done.notify_all();
    }
  };

  // Recruit at most one helper per worker; the caller runs the loop too, so
  // progress never depends on a worker being free.
  const std::size_t chunks = (count + grain - 1) / grain;
  const std::size_t helpers = std::min(threads, chunks > 0 ? chunks - 1 : 0);
  for (std::size_t i = 0; i < helpers; ++i) {
    // The helper's copy of `runner` captures `body` by reference; that is
    // safe because this function does not return before inflight drains and
    // the cursor is exhausted.
    enqueue(runner);
  }
  runner();

  std::unique_lock<std::mutex> lock(state->mu);
  state->done.wait(lock, [&]() {
    return state->inflight.load(std::memory_order_acquire) == 0 &&
           state->cursor.load(std::memory_order_relaxed) >= count;
  });
  if (state->error) std::rethrow_exception(state->error);
}

ThreadPool& ThreadPool::shared() {
  static ThreadPool pool;
  return pool;
}

}  // namespace stordep::engine
