// arena.hpp — bump-pointer arena for allocation-free evaluation loops.
//
// Plan-based evaluation (engine/plan.hpp) needs a handful of small scratch
// arrays per scenario — destroyed-device flags, per-level loss assessments —
// whose sizes are known up front from the compiled plan. Allocating them
// from the general heap would put malloc/free on the hottest loop in the
// system and serialize threads on the allocator. A BumpArena instead hands
// out memory by advancing a pointer through pre-allocated blocks: after the
// first eval warms the block list, every subsequent eval is allocation-free.
//
// Ownership protocol: each worker thread owns one arena (usually a
// thread_local); arenas are NOT thread-safe and must never be shared.
// A Frame is a watermark — it records the bump position on construction and
// rewinds to it on destruction, so per-eval scratch vanishes in O(1) without
// running destructors. Consequently only trivially-destructible types may
// be placed in the arena (enforced via static_assert in array<T>()).
// reset() rewinds everything but keeps the blocks for reuse.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <new>
#include <type_traits>
#include <vector>

namespace stordep::engine {

class BumpArena {
 public:
  static constexpr std::size_t kDefaultBlockBytes = 64 * 1024;

  explicit BumpArena(std::size_t blockBytes = kDefaultBlockBytes)
      : blockBytes_(blockBytes == 0 ? kDefaultBlockBytes : blockBytes) {}

  BumpArena(const BumpArena&) = delete;
  BumpArena& operator=(const BumpArena&) = delete;

  /// Raw aligned allocation. Alignment must be a power of two.
  [[nodiscard]] void* allocate(std::size_t bytes, std::size_t align) {
    if (bytes == 0) bytes = 1;
    while (true) {
      if (blockIdx_ < blocks_.size()) {
        Block& b = blocks_[blockIdx_];
        const std::size_t base =
            reinterpret_cast<std::size_t>(b.data.get()) + offset_;
        const std::size_t aligned = (base + align - 1) & ~(align - 1);
        const std::size_t padded = offset_ + (aligned - base) + bytes;
        if (padded <= b.size) {
          offset_ = padded;
          if (used() > highWater_) highWater_ = used();
          return reinterpret_cast<void*>(aligned);
        }
        // Current block exhausted; move to the next (or grow).
        if (blockIdx_ + 1 < blocks_.size()) {
          ++blockIdx_;
          offset_ = 0;
          continue;
        }
      }
      grow(bytes + align);
    }
  }

  /// Typed array of n default-initialized elements. T must be trivially
  /// destructible: Frame rewinds never run destructors.
  template <typename T>
  [[nodiscard]] T* array(std::size_t n) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "BumpArena memory is reclaimed without running destructors");
    T* p = static_cast<T*>(allocate(n * sizeof(T), alignof(T)));
    for (std::size_t i = 0; i < n; ++i) ::new (static_cast<void*>(p + i)) T();
    return p;
  }

  /// Rewind to empty, keeping all blocks for reuse.
  void reset() noexcept {
    blockIdx_ = 0;
    offset_ = 0;
  }

  /// Watermark guard: rewinds the arena to the position captured at
  /// construction. Per-eval scratch lives inside one Frame.
  class Frame {
   public:
    explicit Frame(BumpArena& arena) noexcept
        : arena_(arena), blockIdx_(arena.blockIdx_), offset_(arena.offset_) {}
    ~Frame() {
      arena_.blockIdx_ = blockIdx_;
      arena_.offset_ = offset_;
    }
    Frame(const Frame&) = delete;
    Frame& operator=(const Frame&) = delete;

   private:
    BumpArena& arena_;
    std::size_t blockIdx_;
    std::size_t offset_;
  };

  [[nodiscard]] std::size_t blockCount() const noexcept {
    return blocks_.size();
  }
  [[nodiscard]] std::size_t capacity() const noexcept {
    std::size_t total = 0;
    for (const Block& b : blocks_) total += b.size;
    return total;
  }
  /// Bytes currently handed out (including alignment padding).
  [[nodiscard]] std::size_t used() const noexcept {
    std::size_t total = offset_;
    for (std::size_t i = 0; i < blockIdx_ && i < blocks_.size(); ++i)
      total += blocks_[i].size;
    return total;
  }
  [[nodiscard]] std::size_t highWater() const noexcept { return highWater_; }

 private:
  struct Block {
    std::unique_ptr<std::byte[]> data;
    std::size_t size = 0;
  };

  void grow(std::size_t atLeast) {
    // If we were mid-list, skip to a fresh block at the end.
    const std::size_t size = atLeast > blockBytes_ ? atLeast : blockBytes_;
    blocks_.push_back(Block{std::make_unique<std::byte[]>(size), size});
    blockIdx_ = blocks_.size() - 1;
    offset_ = 0;
  }

  std::size_t blockBytes_;
  std::vector<Block> blocks_;
  std::size_t blockIdx_ = 0;
  std::size_t offset_ = 0;
  std::size_t highWater_ = 0;
};

}  // namespace stordep::engine
