// eval_cache.hpp — sharded, LRU-bounded memoization of evaluation results.
//
// evaluate() is a pure function, so its results can be memoized by the
// canonical fingerprint of (design, scenario). Design-space search, local
// refinement and portfolio sweeps re-evaluate the same pairs constantly
// (refinement revisits the grid winner's neighborhood; repeated what-if
// sweeps re-ask identical questions), so a bounded cache turns those
// re-evaluations into lookups.
//
// Concurrency: the table is striped into N shards (N rounded up to a power
// of two), each an independent mutex + LRU list + hash index, selected by
// fingerprint bits. Worker threads evaluating different pairs contend only
// when they land on the same shard. Statistics (hits/misses/inserts/
// evictions) are aggregated across shards on demand.
//
// Fault injection: an installed FaultInjector is consulted at the top of
// lookup() (site kCacheLookup) and insert() (site kCacheInsert), outside
// the shard lock, so cache-layer failures are exercised exactly where a
// real storage-backed cache would fail. A throwing probe leaves the shard
// untouched.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <unordered_map>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/fault_injection.hpp"
#include "engine/fingerprint.hpp"

namespace stordep::engine {

class EvalCache {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t probes = 0;  ///< hits + misses (lookup traffic)
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
    /// insert() calls that threw before reaching the table (injected
    /// kCacheInsert faults, allocation failures). The engine swallows these
    /// — losing a cache write never fails a request that already has its
    /// result — so this counter is the only audit trail an injected-fault
    /// run leaves.
    std::uint64_t insertFailures = 0;
    std::size_t entries = 0;
    std::size_t capacity = 0;

    [[nodiscard]] double hitRate() const noexcept {
      const std::uint64_t total = hits + misses;
      return total == 0 ? 0.0
                        : static_cast<double>(hits) /
                              static_cast<double>(total);
    }

    /// Snapshot diff: the traffic counters accumulated since `since` was
    /// taken (monotone counters subtract; a counter that somehow went
    /// backwards — e.g. `since` from before a clear() — clamps to 0 rather
    /// than wrapping). `entries`/`capacity` stay at this snapshot's values:
    /// they are gauges, not counters. This is what lets a periodic scraper
    /// (/metrics) report per-interval hit rates instead of lifetime totals.
    [[nodiscard]] Stats delta(const Stats& since) const noexcept {
      const auto sub = [](std::uint64_t now, std::uint64_t then) {
        return now >= then ? now - then : std::uint64_t{0};
      };
      Stats out;
      out.hits = sub(hits, since.hits);
      out.misses = sub(misses, since.misses);
      out.probes = sub(probes, since.probes);
      out.inserts = sub(inserts, since.inserts);
      out.evictions = sub(evictions, since.evictions);
      out.insertFailures = sub(insertFailures, since.insertFailures);
      out.entries = entries;
      out.capacity = capacity;
      return out;
    }
  };

  /// `capacity` bounds the total entry count (split evenly across shards,
  /// at least one entry per shard); `shards` is rounded up to a power of
  /// two.
  explicit EvalCache(std::size_t capacity = kDefaultCapacity,
                     std::size_t shards = kDefaultShards);

  EvalCache(const EvalCache&) = delete;
  EvalCache& operator=(const EvalCache&) = delete;

  /// Returns the cached result and refreshes its LRU position, or nullopt.
  [[nodiscard]] std::optional<EvaluationResult> lookup(const Fingerprint& key);

  /// Inserts (or refreshes) `result` under `key`, evicting the shard's
  /// least-recently-used entry when full.
  void insert(const Fingerprint& key, const EvaluationResult& result);

  /// Bulk insert for write-behind merges (engine/batch.hpp): entries are
  /// grouped by shard and each shard's lock is taken once for its whole
  /// group, instead of once per entry. Equivalent to insert() per entry in
  /// order (same refresh/eviction semantics), except that fault-injection
  /// probes are skipped — the engine only buffers writes when no injector
  /// is installed. Entries are consumed (results moved out).
  void insertBatch(std::vector<std::pair<Fingerprint, EvaluationResult>>&& entries);

  /// lookup(), falling back to `compute()` + insert() on a miss.
  [[nodiscard]] EvaluationResult getOrCompute(
      const Fingerprint& key,
      const std::function<EvaluationResult()>& compute);

  /// Installs (or clears, with nullptr) the fault injector consulted by
  /// lookup()/insert(). Not thread-safe against in-flight operations: set
  /// it while the cache is quiescent (the Engine does this for its own
  /// cache before a batch starts).
  void setFaultInjector(std::shared_ptr<FaultInjector> injector) noexcept {
    injector_ = std::move(injector);
  }
  [[nodiscard]] const std::shared_ptr<FaultInjector>& faultInjector()
      const noexcept {
    return injector_;
  }

  void clear();
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::size_t capacity() const noexcept {
    return perShardCapacity_ * shards_.size();
  }
  [[nodiscard]] std::size_t shardCount() const noexcept {
    return shards_.size();
  }

  static constexpr std::size_t kDefaultCapacity = 1 << 16;
  static constexpr std::size_t kDefaultShards = 16;

 private:
  struct Entry {
    Fingerprint key;
    EvaluationResult result;
  };
  struct Shard {
    mutable std::mutex mu;
    std::list<Entry> lru;  // front = most recently used
    std::unordered_map<Fingerprint, std::list<Entry>::iterator,
                       FingerprintHash>
        index;
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    std::uint64_t inserts = 0;
    std::uint64_t evictions = 0;
  };

  [[nodiscard]] Shard& shardFor(const Fingerprint& key) {
    return *shards_[key.hi & (shards_.size() - 1)];
  }

  std::size_t perShardCapacity_;
  std::vector<std::unique_ptr<Shard>> shards_;
  std::shared_ptr<FaultInjector> injector_;  // null = no injection
  std::atomic<std::uint64_t> insertFailures_{0};
};

}  // namespace stordep::engine
