#include "engine/errors.hpp"

#include <new>

#include "config/design_io.hpp"
#include "engine/fault_injection.hpp"

namespace stordep::engine {

const char* toString(EvalErrorCode code) noexcept {
  switch (code) {
    case EvalErrorCode::kInvalidDesign:
      return "invalid-design";
    case EvalErrorCode::kInvalidScenario:
      return "invalid-scenario";
    case EvalErrorCode::kResourceExhausted:
      return "resource-exhausted";
    case EvalErrorCode::kCancelled:
      return "cancelled";
    case EvalErrorCode::kDeadlineExceeded:
      return "deadline-exceeded";
    case EvalErrorCode::kInjected:
      return "injected";
    case EvalErrorCode::kUnavailable:
      return "unavailable";
    case EvalErrorCode::kInternal:
      return "internal";
  }
  return "internal";
}

std::string EvalError::describe() const {
  std::string out = toString(code);
  if (!message.empty()) {
    out += ": ";
    out += message;
  }
  if (attempts > 1) {
    out += " (after " + std::to_string(attempts) + " attempts)";
  }
  return out;
}

EvalError errorFromCurrentException() {
  try {
    throw;
  } catch (const EvalException& e) {
    return e.error();
  } catch (const InjectedFault& e) {
    return EvalError{EvalErrorCode::kInjected, e.what(), e.transient()};
  } catch (const InvalidScenarioError& e) {
    return EvalError{EvalErrorCode::kInvalidScenario, e.what()};
  } catch (const InvalidDesignError& e) {
    return EvalError{EvalErrorCode::kInvalidDesign, e.what()};
  } catch (const std::bad_alloc& e) {
    return EvalError{EvalErrorCode::kResourceExhausted, e.what(),
                     /*transient=*/true};
  } catch (const config::DesignIoError& e) {
    return EvalError{EvalErrorCode::kInvalidDesign, e.what()};
  } catch (const std::invalid_argument& e) {
    return EvalError{EvalErrorCode::kInvalidDesign, e.what()};
  } catch (const std::domain_error& e) {
    return EvalError{EvalErrorCode::kInvalidDesign, e.what()};
  } catch (const std::out_of_range& e) {
    return EvalError{EvalErrorCode::kInvalidDesign, e.what()};
  } catch (const std::length_error& e) {
    return EvalError{EvalErrorCode::kResourceExhausted, e.what(),
                     /*transient=*/true};
  } catch (const std::exception& e) {
    return EvalError{EvalErrorCode::kInternal, e.what()};
  } catch (...) {
    return EvalError{EvalErrorCode::kInternal, "unknown exception"};
  }
}

}  // namespace stordep::engine
