#include "engine/eval_cache.hpp"

#include <algorithm>

namespace stordep::engine {

namespace {
std::size_t roundUpPowerOfTwo(std::size_t n) {
  std::size_t p = 1;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

EvalCache::EvalCache(std::size_t capacity, std::size_t shards) {
  const std::size_t shardCount =
      roundUpPowerOfTwo(std::max<std::size_t>(1, shards));
  perShardCapacity_ =
      std::max<std::size_t>(1, (std::max<std::size_t>(1, capacity) +
                                shardCount - 1) /
                                   shardCount);
  shards_.reserve(shardCount);
  for (std::size_t i = 0; i < shardCount; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

std::optional<EvaluationResult> EvalCache::lookup(const Fingerprint& key) {
  if (injector_) injector_->maybeInject(FaultSite::kCacheLookup, key);
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return std::nullopt;
  }
  ++shard.hits;
  shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
  return it->second->result;
}

void EvalCache::insert(const Fingerprint& key,
                       const EvaluationResult& result) {
  if (injector_) {
    try {
      injector_->maybeInject(FaultSite::kCacheInsert, key);
    } catch (...) {
      insertFailures_.fetch_add(1, std::memory_order_relaxed);
      throw;
    }
  }
  Shard& shard = shardFor(key);
  std::lock_guard<std::mutex> lock(shard.mu);
  const auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    // Refresh: another thread may have inserted the same pure result first.
    it->second->result = result;
    shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
    return;
  }
  if (shard.lru.size() >= perShardCapacity_) {
    shard.index.erase(shard.lru.back().key);
    shard.lru.pop_back();
    ++shard.evictions;
  }
  shard.lru.push_front(Entry{key, result});
  shard.index.emplace(key, shard.lru.begin());
  ++shard.inserts;
}

void EvalCache::insertBatch(
    std::vector<std::pair<Fingerprint, EvaluationResult>>&& entries) {
  if (entries.empty()) return;
  // Bucket entry indices per shard, preserving arrival order within each
  // shard so the LRU/refresh outcome matches per-entry insert() calls.
  std::vector<std::vector<std::size_t>> byShard(shards_.size());
  for (std::size_t i = 0; i < entries.size(); ++i) {
    byShard[entries[i].first.hi & (shards_.size() - 1)].push_back(i);
  }
  for (std::size_t s = 0; s < byShard.size(); ++s) {
    if (byShard[s].empty()) continue;
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    for (const std::size_t i : byShard[s]) {
      const Fingerprint& key = entries[i].first;
      const auto it = shard.index.find(key);
      if (it != shard.index.end()) {
        it->second->result = std::move(entries[i].second);
        shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
        continue;
      }
      if (shard.lru.size() >= perShardCapacity_) {
        shard.index.erase(shard.lru.back().key);
        shard.lru.pop_back();
        ++shard.evictions;
      }
      shard.lru.push_front(Entry{key, std::move(entries[i].second)});
      shard.index.emplace(key, shard.lru.begin());
      ++shard.inserts;
    }
  }
  entries.clear();
}

EvaluationResult EvalCache::getOrCompute(
    const Fingerprint& key,
    const std::function<EvaluationResult()>& compute) {
  if (std::optional<EvaluationResult> hit = lookup(key)) {
    return std::move(*hit);
  }
  EvaluationResult result = compute();
  insert(key, result);
  return result;
}

void EvalCache::clear() {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->lru.clear();
    shard->index.clear();
  }
}

EvalCache::Stats EvalCache::stats() const {
  Stats out;
  out.capacity = capacity();
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    out.hits += shard->hits;
    out.misses += shard->misses;
    out.inserts += shard->inserts;
    out.evictions += shard->evictions;
    out.entries += shard->lru.size();
  }
  out.probes = out.hits + out.misses;
  out.insertFailures = insertFailures_.load(std::memory_order_relaxed);
  return out;
}

std::size_t EvalCache::size() const {
  std::size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace stordep::engine
