#include "engine/fault_injection.hpp"

#include <algorithm>
#include <thread>

#include "sim/rng.hpp"

namespace stordep::engine {

const char* toString(FaultSite site) noexcept {
  switch (site) {
    case FaultSite::kEvaluate:
      return "evaluate";
    case FaultSite::kCacheLookup:
      return "cache-lookup";
    case FaultSite::kCacheInsert:
      return "cache-insert";
    case FaultSite::kPool:
      return "pool";
  }
  return "unknown";
}

FaultInjector::FaultInjector(FaultPlan plan) : plan_(std::move(plan)) {
  for (const Fingerprint& target : plan_.targets) {
    budgets_.emplace(target, plan_.failuresPerTarget);
  }
}

bool FaultInjector::probabilityHit(FaultSite site,
                                   const Fingerprint& key) const {
  if (plan_.probability <= 0.0) return false;
  // One decision per (seed, site, key): derive a substream from the triple
  // via the Rng substream protocol and draw once. Order-independent, so the
  // same requests fail at any thread count or chunking.
  std::uint64_t stream = sim::Rng::substreamSeed(
      plan_.seed, static_cast<std::uint64_t>(site) + 1);
  stream = sim::Rng::substreamSeed(stream, key.hi);
  stream = sim::Rng::substreamSeed(stream, key.lo);
  sim::Rng rng(stream);
  return rng.uniform() < plan_.probability;
}

bool FaultInjector::wouldFail(FaultSite site, const Fingerprint& key) const {
  if ((plan_.sites & faultSiteBit(site)) == 0) return false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = budgets_.find(key);
    if (it != budgets_.end() && (it->second != 0)) return true;
  }
  return probabilityHit(site, key);
}

void FaultInjector::maybeInject(FaultSite site, const Fingerprint& key) {
  if ((plan_.sites & faultSiteBit(site)) == 0) return;
  visits_.fetch_add(1, std::memory_order_relaxed);
  if (plan_.latency.count() > 0) {
    std::this_thread::sleep_for(plan_.latency);
  }

  bool fire = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = budgets_.find(key);
    if (it != budgets_.end() && it->second != 0) {
      fire = true;
      if (it->second > 0) --it->second;  // consume one targeted failure
    }
  }
  if (!fire) fire = probabilityHit(site, key);
  if (!fire) return;

  injected_.fetch_add(1, std::memory_order_relaxed);
  throw InjectedFault(site, plan_.transient,
                      std::string("injected fault at ") + toString(site) +
                          " for " + key.toHex());
}

}  // namespace stordep::engine
