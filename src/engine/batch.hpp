// batch.hpp — the evaluation engine: parallel, memoizing evaluate() service.
//
// The paper pitches the framework as the inner loop of an automated design
// tool ("first-pass decisions in seconds or minutes"); this module is that
// inner loop industrialized. An Engine owns a work-stealing thread pool and
// a sharded LRU cache of evaluation results keyed by canonical fingerprint,
// and exposes:
//
//  * evaluate(design, scenario) — one cached evaluation;
//  * evaluateBatch(requests)    — a vector of (design, scenario) pairs fanned
//    out across cores, returning one Expected<EvaluationResult> per request
//    in request order plus EngineStats (throughput, cache hit rate, failed/
//    cancelled counts, threads used);
//  * parallelFor(n, body)       — the raw fan-out primitive, used by the
//    optimizer to parallelize at candidate granularity.
//
// Failure semantics: evaluateBatch never throws for a bad request — each
// slot independently carries its result or a structured EvalError (see
// errors.hpp), so one poisoned candidate cannot abort a sweep. Cancellation
// tokens and per-batch deadlines are polled per request: work already
// finished stays valid, un-started requests come back kCancelled /
// kDeadlineExceeded. Transient failures (kResourceExhausted, transient
// kInjected) are retried up to BatchOptions::maxRetries with bounded
// exponential backoff. A FaultInjector installed via setFaultInjector()
// exercises all of these paths deterministically.
//
// Determinism contract: evaluate() is a pure function and every parallel
// path writes results into per-request slots, so engine-backed sweeps return
// results bit-identical to a serial loop — same Money/Duration values, same
// ranking. Caching never changes a value, only who computed it, and an
// injected failure in one request leaves every other slot bit-identical to
// a clean run.
//
// An Engine with threads == 1 runs everything on the calling thread (no pool
// is created); threads == 0 sizes the pool to the hardware. The process-wide
// Engine::shared() instance persists its cache across search / portfolio /
// bench calls, which is where repeated sweeps win their ≥90% hit rates.
#pragma once

#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include <atomic>
#include <mutex>

#include "core/evaluator.hpp"
#include "engine/arena.hpp"
#include "engine/cancellation.hpp"
#include "engine/errors.hpp"
#include "engine/eval_cache.hpp"
#include "engine/fault_injection.hpp"
#include "engine/fingerprint.hpp"
#include "engine/plan.hpp"
#include "engine/precompute.hpp"
#include "engine/thread_pool.hpp"

namespace stordep::engine {

struct EngineOptions {
  /// Worker parallelism: 0 = one per hardware thread, 1 = serial (no pool).
  int threads = 0;
  bool useCache = true;
  std::size_t cacheCapacity = EvalCache::kDefaultCapacity;
  std::size_t cacheShards = EvalCache::kDefaultShards;
  /// Per-thread pending-entry bound for write-behind cache buffering (see
  /// Engine::WriteBehindScope): a thread whose pending eval/demand inserts
  /// reach this many entries flushes them to the shared cache early, bounding
  /// buffered memory on huge cold sweeps. 0 disables write-behind entirely
  /// (every insert goes straight to the shared sharded caches).
  std::size_t writeBehindLimit = 4096;
};

/// One evaluation request. The design is shared so a batch can reference the
/// same materialized design from many scenario rows without copying it.
struct EvalRequest {
  std::shared_ptr<const StorageDesign> design;
  FailureScenario scenario;
};

struct EngineStats {
  int threadsUsed = 1;
  std::uint64_t requests = 0;     ///< outcome slots delivered
  std::uint64_t cacheHits = 0;    ///< delivered from the cache
  std::uint64_t evaluations = 0;  ///< actually computed (misses)
  std::uint64_t failed = 0;       ///< error outcomes other than cancellation
  std::uint64_t cancelled = 0;    ///< kCancelled / kDeadlineExceeded outcomes
  std::uint64_t retries = 0;      ///< transient-failure re-attempts consumed
  double wallSeconds = 0.0;
  double evalsPerSec = 0.0;  ///< requests / wallSeconds
  [[nodiscard]] double cacheHitRate() const noexcept {
    return requests == 0
               ? 0.0
               : static_cast<double>(cacheHits) /
                     static_cast<double>(requests);
  }
};

/// Per-request outcome: the evaluation result or a structured error.
using EvalOutcome = Expected<EvaluationResult>;

/// Knobs for one evaluateBatch call (all default to "off").
struct BatchOptions {
  /// Cooperative cancellation; polled before each request is started.
  CancellationToken token;
  /// Per-batch wall-clock budget (0 = none); composed with the token's own
  /// deadline, whichever is earlier. Requests not started before it elapses
  /// come back kDeadlineExceeded.
  std::chrono::milliseconds deadline{0};
  /// Bounded retries for transient errors (kResourceExhausted, transient
  /// kInjected). 0 = fail fast.
  int maxRetries = 0;
  /// Base backoff between retries, doubled each attempt and capped at
  /// kMaxRetryBackoff. 0 = retry immediately (tests).
  std::chrono::milliseconds retryBackoff{1};

  static constexpr std::chrono::milliseconds kMaxRetryBackoff{100};
};

struct BatchResult {
  /// results[i] answers requests[i]: an EvaluationResult or an EvalError.
  std::vector<EvalOutcome> results;
  EngineStats stats;

  [[nodiscard]] bool allOk() const noexcept {
    for (const EvalOutcome& outcome : results) {
      if (!outcome.ok()) return false;
    }
    return true;
  }
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Effective parallelism (calling thread included).
  [[nodiscard]] int threads() const noexcept { return threads_; }
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] EvalCache& cache() noexcept { return cache_; }
  [[nodiscard]] const EvalCache& cache() const noexcept { return cache_; }
  /// Per-level demand memo shared by every sweep through this engine.
  [[nodiscard]] DemandCache& demandCache() noexcept { return demandCache_; }
  [[nodiscard]] const DemandCache& demandCache() const noexcept {
    return demandCache_;
  }

  /// One evaluation through the cache; throws on failure (legacy contract).
  [[nodiscard]] EvaluationResult evaluate(const StorageDesign& design,
                                          const FailureScenario& scenario);

  /// One evaluation with the structured-error contract: never throws for
  /// model/injection failures, honors retries for transient errors.
  [[nodiscard]] EvalOutcome tryEvaluate(const StorageDesign& design,
                                        const FailureScenario& scenario,
                                        const BatchOptions& options = {});

  /// Cached evaluation where the caller already holds the pair key (e.g.
  /// combine(designFp, scenarioFp) with both fingerprints hoisted out of its
  /// loops) and a lazily-filled precomputation slot: on the first miss for a
  /// design, the scenario-independent sub-models are computed once into
  /// `precomputed` and reused by every later miss for the same design.
  /// When `parts` is non-null (fingerprintDesignParts of the same design),
  /// that first precomputation goes through the engine's per-level demand
  /// cache, so candidates sharing protection levels share the work.
  [[nodiscard]] EvaluationResult evaluateKeyed(
      const StorageDesign& design, const FailureScenario& scenario,
      const Fingerprint& pairKey,
      std::optional<DesignPrecomputation>& precomputed,
      const DesignFingerprints* parts = nullptr);

  /// evaluateKeyed with the structured-error contract and bounded retries
  /// for transient failures. `retriesOut`, when non-null, accumulates the
  /// number of re-attempts consumed (for stats).
  [[nodiscard]] EvalOutcome tryEvaluateKeyed(
      const StorageDesign& design, const FailureScenario& scenario,
      const Fingerprint& pairKey,
      std::optional<DesignPrecomputation>& precomputed,
      const BatchOptions& options, std::uint64_t* retriesOut = nullptr,
      const DesignFingerprints* parts = nullptr);

  /// Evaluates all requests (in request order in the result vector), fanned
  /// out across the pool, with cache-hit accounting and throughput stats.
  /// Never throws for a bad request: each slot carries its own result or
  /// structured error, and cancellation/deadline expiry marks only the
  /// requests that had not started.
  [[nodiscard]] BatchResult evaluateBatch(
      const std::vector<EvalRequest>& requests,
      const BatchOptions& options = {});

  /// Installs a deterministic fault injector on the evaluate path and this
  /// engine's cache (nullptr uninstalls). Set while quiescent — not
  /// thread-safe against an in-flight batch.
  void setFaultInjector(std::shared_ptr<FaultInjector> injector);
  [[nodiscard]] const std::shared_ptr<FaultInjector>& faultInjector()
      const noexcept {
    return injector_;
  }

  /// Index-space fan-out on this engine's pool; serial when threads() == 1.
  /// Blocks until done; rethrows the first exception.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// parallelFor that stops handing out work once `token` fires (polled per
  /// chunk on the pool, per index when serial). Returns true when every
  /// index ran. Exceptions rethrow as in parallelFor.
  bool parallelForCancellable(std::size_t count,
                              const std::function<void(std::size_t)>& body,
                              const CancellationToken& token);

  /// Process-wide engine (hardware-sized, default cache). Its cache persists
  /// across optimizer / portfolio / bench calls within the process.
  [[nodiscard]] static Engine& shared();

  /// Per-worker-thread pending cache writes, buffered while a
  /// WriteBehindScope is active and merged into the shared caches when it
  /// closes. Public only so the scope machinery can hand threads their
  /// buffers; not part of the caller-facing API.
  struct WriteBehindBuffers {
    std::vector<std::pair<Fingerprint, EvaluationResult>> evalPending;
    std::vector<std::pair<Fingerprint, DemandCache::Entry>> demandPending;
  };

  /// RAII window during which this engine's cache *writes* are buffered in
  /// thread-local vectors instead of taking the shared shard locks, then
  /// merged in bulk (one lock per touched shard) when the scope closes.
  /// Lookups still go to the shared caches, so hit/miss accounting and warm
  /// reuse are unchanged; only who pays the insert lock moves. This is what
  /// makes the *cold* path scale: a cold sweep is nearly 100% inserts, and
  /// per-insert shard locking serializes exactly when every thread is
  /// inserting.
  ///
  /// The scope must outlive every parallelFor it covers (workers must have
  /// joined before the merge runs). Nested scopes, fault-injection runs
  /// (per-insert kCacheInsert probes must fire), cache-less engines and
  /// writeBehindLimit == 0 all degrade to a no-op scope with direct inserts.
  /// Values are pure functions of their keys, so buffering never changes
  /// what any lookup returns — only when the write lands.
  class WriteBehindScope {
   public:
    explicit WriteBehindScope(Engine& engine);
    ~WriteBehindScope();
    WriteBehindScope(const WriteBehindScope&) = delete;
    WriteBehindScope& operator=(const WriteBehindScope&) = delete;

   private:
    Engine& engine_;
    bool active_ = false;
  };

  /// Stats for one evaluatePlanMatrix call.
  struct PlanBatchStats {
    int threadsUsed = 1;
    std::uint64_t pairs = 0;
    std::uint64_t planCompiles = 0;     ///< designs compiled into plans
    std::uint64_t planIncompatible = 0; ///< designs evaluated via legacy path
    double wallSeconds = 0.0;
    double pairsPerSec = 0.0;
  };

  /// Cross-product fast path: compiles each design once into an EvalPlan
  /// (engine/plan.hpp), then evaluates every (design, scenario) pair against
  /// the plans with per-thread bump arenas — allocation-free per eval and
  /// lock-free (the plan path does not touch the eval cache). Results are in
  /// design-major order: out[d * scenarios.size() + s]. Designs the plan
  /// compiler rejects fall back to the legacy evaluator (bit-identical by
  /// the plan contract). Unlike evaluateBatch this throws on model errors,
  /// mirroring the plain evaluate() contract; null design pointers leave
  /// their rows default-initialized.
  [[nodiscard]] std::vector<EvaluationMetrics> evaluatePlanMatrix(
      const std::vector<std::shared_ptr<const StorageDesign>>& designs,
      const std::vector<FailureScenario>& scenarios,
      PlanBatchStats* statsOut = nullptr);

  /// The calling thread's plan-evaluation arena (one per thread, reused
  /// across evals; see engine/arena.hpp for the ownership protocol).
  [[nodiscard]] static BumpArena& threadArena();

 private:
  /// The calling thread's write-behind buffers, or nullptr when no scope is
  /// active (or this thread should insert directly).
  [[nodiscard]] WriteBehindBuffers* writeBehindBuffers();
  void mergeWriteBehind();

  EngineOptions options_;
  int threads_;
  EvalCache cache_;
  DemandCache demandCache_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
  std::shared_ptr<FaultInjector> injector_;  // null = no injection

  std::atomic<bool> writeBehindActive_{false};
  /// The active scope's epoch, drawn from a process-wide never-repeating
  /// counter on scope open; a thread whose cached buffer pointer carries a
  /// different epoch re-registers, so buffers never leak across scopes (or
  /// across engine lifetimes sharing a reused address).
  std::atomic<std::uint64_t> writeBehindEpoch_{0};
  std::mutex writeBehindMu_;
  std::vector<std::unique_ptr<WriteBehindBuffers>> writeBehindRegistry_;
};

}  // namespace stordep::engine
