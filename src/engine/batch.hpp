// batch.hpp — the evaluation engine: parallel, memoizing evaluate() service.
//
// The paper pitches the framework as the inner loop of an automated design
// tool ("first-pass decisions in seconds or minutes"); this module is that
// inner loop industrialized. An Engine owns a work-stealing thread pool and
// a sharded LRU cache of evaluation results keyed by canonical fingerprint,
// and exposes:
//
//  * evaluate(design, scenario) — one cached evaluation;
//  * evaluateBatch(requests)    — a vector of (design, scenario) pairs fanned
//    out across cores, returning results in request order plus EngineStats
//    (throughput, cache hit rate, threads used);
//  * parallelFor(n, body)       — the raw fan-out primitive, used by the
//    optimizer to parallelize at candidate granularity.
//
// Determinism contract: evaluate() is a pure function and every parallel
// path writes results into per-request slots, so engine-backed sweeps return
// results bit-identical to a serial loop — same Money/Duration values, same
// ranking. Caching never changes a value, only who computed it.
//
// An Engine with threads == 1 runs everything on the calling thread (no pool
// is created); threads == 0 sizes the pool to the hardware. The process-wide
// Engine::shared() instance persists its cache across search / portfolio /
// bench calls, which is where repeated sweeps win their ≥90% hit rates.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/eval_cache.hpp"
#include "engine/fingerprint.hpp"
#include "engine/thread_pool.hpp"

namespace stordep::engine {

struct EngineOptions {
  /// Worker parallelism: 0 = one per hardware thread, 1 = serial (no pool).
  int threads = 0;
  bool useCache = true;
  std::size_t cacheCapacity = EvalCache::kDefaultCapacity;
  std::size_t cacheShards = EvalCache::kDefaultShards;
};

/// One evaluation request. The design is shared so a batch can reference the
/// same materialized design from many scenario rows without copying it.
struct EvalRequest {
  std::shared_ptr<const StorageDesign> design;
  FailureScenario scenario;
};

struct EngineStats {
  int threadsUsed = 1;
  std::uint64_t requests = 0;     ///< results delivered
  std::uint64_t cacheHits = 0;    ///< delivered from the cache
  std::uint64_t evaluations = 0;  ///< actually computed (misses)
  double wallSeconds = 0.0;
  double evalsPerSec = 0.0;  ///< requests / wallSeconds
  [[nodiscard]] double cacheHitRate() const noexcept {
    return requests == 0
               ? 0.0
               : static_cast<double>(cacheHits) /
                     static_cast<double>(requests);
  }
};

struct BatchResult {
  /// results[i] answers requests[i].
  std::vector<EvaluationResult> results;
  EngineStats stats;
};

class Engine {
 public:
  explicit Engine(EngineOptions options = {});

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  /// Effective parallelism (calling thread included).
  [[nodiscard]] int threads() const noexcept { return threads_; }
  [[nodiscard]] const EngineOptions& options() const noexcept {
    return options_;
  }
  [[nodiscard]] EvalCache& cache() noexcept { return cache_; }
  [[nodiscard]] const EvalCache& cache() const noexcept { return cache_; }

  /// One evaluation through the cache.
  [[nodiscard]] EvaluationResult evaluate(const StorageDesign& design,
                                          const FailureScenario& scenario);

  /// Cached evaluation where the caller already holds the pair key (e.g.
  /// combine(designFp, scenarioFp) with both fingerprints hoisted out of its
  /// loops) and a lazily-filled precomputation slot: on the first miss for a
  /// design, the scenario-independent sub-models are computed once into
  /// `precomputed` and reused by every later miss for the same design.
  [[nodiscard]] EvaluationResult evaluateKeyed(
      const StorageDesign& design, const FailureScenario& scenario,
      const Fingerprint& pairKey,
      std::optional<DesignPrecomputation>& precomputed);

  /// Evaluates all requests (in request order in the result vector), fanned
  /// out across the pool, with cache-hit accounting and throughput stats.
  [[nodiscard]] BatchResult evaluateBatch(
      const std::vector<EvalRequest>& requests);

  /// Index-space fan-out on this engine's pool; serial when threads() == 1.
  /// Blocks until done; rethrows the first exception.
  void parallelFor(std::size_t count,
                   const std::function<void(std::size_t)>& body);

  /// Process-wide engine (hardware-sized, default cache). Its cache persists
  /// across optimizer / portfolio / bench calls within the process.
  [[nodiscard]] static Engine& shared();

 private:
  EngineOptions options_;
  int threads_;
  EvalCache cache_;
  std::unique_ptr<ThreadPool> pool_;  // null when threads_ == 1
};

}  // namespace stordep::engine
