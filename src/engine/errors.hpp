// errors.hpp — structured error model for the evaluation pipeline.
//
// The engine is the inner loop of an automated design tool that may grind
// through thousands of candidates; a raw exception escaping one evaluation
// must not poison a whole sweep. At engine boundaries, failures are values:
// an Expected<T> either holds the computed T or an EvalError drawn from a
// small closed taxonomy, so callers can isolate, retry, or skip per request
// instead of unwinding the batch. Exceptions still exist *inside* the
// models (they are the cheapest way to bail out of a deep computation); the
// engine converts them to EvalErrors exactly once, at its boundary, via
// errorFromCurrentException().
//
// Taxonomy:
//   kInvalidDesign     — the design itself is malformed (null, fails model
//                        preconditions, unserializable); deterministic.
//   kInvalidScenario   — the failure scenario is malformed; deterministic.
//   kResourceExhausted — allocation or capacity failure; transient by
//                        definition (retry may succeed).
//   kCancelled         — a CancellationToken was triggered before this
//                        request ran.
//   kDeadlineExceeded  — the batch/search wall-clock deadline passed before
//                        this request ran.
//   kInjected          — a FaultInjector fired (tests only); transient when
//                        the plan says so.
//   kUnavailable       — a transport-layer failure reaching a remote
//                        evaluator (connect refused/reset, request could not
//                        be delivered, response lost or timed out, circuit
//                        breaker open); transient — a retry against a
//                        recovered peer may succeed.
//   kInternal          — anything else; a bug or an unclassified exception.
#pragma once

#include <stdexcept>
#include <string>
#include <utility>
#include <variant>

namespace stordep::engine {

enum class EvalErrorCode {
  kInvalidDesign,
  kInvalidScenario,
  kResourceExhausted,
  kCancelled,
  kDeadlineExceeded,
  kInjected,
  kUnavailable,
  kInternal,
};

/// Stable lowercase name ("invalid-design", "cancelled", ...) for logs,
/// journals and reports.
[[nodiscard]] const char* toString(EvalErrorCode code) noexcept;

/// One structured failure. `transient` marks errors a bounded retry may
/// clear (ResourceExhausted always; Injected when the fault plan says so);
/// `attempts` records how many evaluation attempts were consumed, so retry
/// behaviour is observable in tests.
struct EvalError {
  EvalErrorCode code = EvalErrorCode::kInternal;
  std::string message;
  bool transient = false;
  int attempts = 1;

  [[nodiscard]] std::string describe() const;
};

/// True when a bounded retry is permitted for this error.
[[nodiscard]] inline bool isRetryable(const EvalError& error) noexcept {
  return error.transient;
}

/// Exception carrying an EvalError across a boundary that still throws
/// (Expected::value() on an error slot, legacy throwing entry points).
class EvalException : public std::runtime_error {
 public:
  explicit EvalException(EvalError error)
      : std::runtime_error(error.describe()), error_(std::move(error)) {}
  [[nodiscard]] const EvalError& error() const noexcept { return error_; }

 private:
  EvalError error_;
};

/// Typed exceptions model code can throw to control classification; anything
/// else is classified by errorFromCurrentException()'s fallback rules.
class InvalidDesignError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};
class InvalidScenarioError : public std::invalid_argument {
 public:
  using std::invalid_argument::invalid_argument;
};

/// Classifies the in-flight exception (call inside a catch block only):
/// InjectedFault → kInjected (transient per the fault plan), bad_alloc →
/// kResourceExhausted (transient), invalid_argument/domain_error/
/// out_of_range and design-document errors → kInvalidDesign, typed scenario
/// errors → kInvalidScenario, everything else → kInternal.
[[nodiscard]] EvalError errorFromCurrentException();

/// The result-or-error sum type returned at engine boundaries. Cheap,
/// value-semantic, default-constructible (a default instance is an
/// kInternal "not evaluated" error so unfilled batch slots are loud).
template <typename T>
class Expected {
 public:
  Expected() : data_(EvalError{EvalErrorCode::kInternal, "not evaluated",
                               /*transient=*/false, /*attempts=*/0}) {}
  Expected(T value) : data_(std::move(value)) {}            // NOLINT(google-explicit-constructor)
  Expected(EvalError error) : data_(std::move(error)) {}    // NOLINT(google-explicit-constructor)

  [[nodiscard]] bool ok() const noexcept {
    return std::holds_alternative<T>(data_);
  }
  explicit operator bool() const noexcept { return ok(); }

  /// The value; throws EvalException when this holds an error.
  [[nodiscard]] const T& value() const& {
    if (!ok()) throw EvalException(std::get<EvalError>(data_));
    return std::get<T>(data_);
  }
  [[nodiscard]] T& value() & {
    if (!ok()) throw EvalException(std::get<EvalError>(data_));
    return std::get<T>(data_);
  }
  [[nodiscard]] T&& value() && {
    if (!ok()) throw EvalException(std::get<EvalError>(data_));
    return std::get<T>(std::move(data_));
  }

  /// The error; throws std::logic_error when this holds a value.
  [[nodiscard]] const EvalError& error() const {
    if (ok()) throw std::logic_error("Expected holds a value, not an error");
    return std::get<EvalError>(data_);
  }

  /// Pointer view for branch-free inspection (nullptr on error / value).
  [[nodiscard]] const T* valueIf() const noexcept {
    return std::get_if<T>(&data_);
  }
  [[nodiscard]] const EvalError* errorIf() const noexcept {
    return std::get_if<EvalError>(&data_);
  }

 private:
  std::variant<T, EvalError> data_;
};

}  // namespace stordep::engine
