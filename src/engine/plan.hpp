// plan.hpp — compile-once / evaluate-many fast path for the evaluator core.
//
// The optimizer's inner loop evaluates one design under many scenarios and
// thousands of designs per sweep. The legacy evaluate() walks the design's
// pointer graph from scratch for every (design, scenario) pair: every level
// re-materializes its normal-mode demand vector (strings included), every
// availableBandwidth() call re-enumerates every level's demands, and the
// result carries vectors of diagnostic strings that are built only to be
// thrown away by the candidate fold. An EvalPlan front-loads all of that
// into one compile step per design:
//
//   compile    flattens the design into contiguous structure-of-arrays
//              tables — device rows (name, location, spare), per-level
//              recovery-window scalars (lag, oldest retained age, in-range
//              loss), restore-leg rows with device indices, and a flat
//              (level, bandwidth) contribution table per device for the
//              available-bandwidth fold. The scenario-independent half of
//              an evaluation (utilization feasibility, outlay totals) is
//              resolved here once.
//   evaluate   runs one scenario against the tables: destroyed-device and
//              destroyed-level flags, recovery-source choice, and the leg
//              walk are plain indexed loops over the rows, allocating
//              nothing but a few scratch arrays from the caller's BumpArena
//              (rewound per eval via an arena Frame).
//
// Bit-identity contract: every arithmetic expression in evaluate() mirrors
// the legacy path (data_loss.cpp, recovery.cpp, cost.cpp, business.hpp)
// operation for operation, in the same order, over the same values — so the
// returned EvaluationMetrics equals summarizeEvaluation(evaluate(design,
// scenario)) bit for bit. The plan-vs-legacy differential oracle
// (src/verify/differential.cpp) enforces this over the generated corpus.
//
// Not every design is plannable: compile() returns nullptr for designs the
// table layout cannot represent faithfully (currently: restore legs with
// missing endpoints, whose legacy behaviour is a diagnostic note). Callers
// fall back to the legacy evaluator — behaviour, not availability, is the
// invariant.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/evaluator.hpp"
#include "engine/arena.hpp"
#include "engine/fingerprint.hpp"

namespace stordep::engine {

class EvalPlan {
 public:
  /// Flattens `design` into an immutable plan. Returns nullptr when the
  /// design is not plannable (caller must use the legacy evaluator).
  /// The plan holds shared ownership of the design's devices, techniques
  /// and a copy of its workload/business inputs; the StorageDesign itself
  /// may be destroyed afterwards.
  [[nodiscard]] static std::shared_ptr<const EvalPlan> compile(
      const StorageDesign& design);

  /// Evaluates one scenario against the plan. Scratch memory comes from
  /// `arena` and is rewound before returning; after the arena has warmed up
  /// (one eval), this performs no heap allocation.
  [[nodiscard]] EvaluationMetrics evaluate(const FailureScenario& scenario,
                                           BumpArena& arena) const;

  /// Content fingerprint of the compiled tables (plus behavioural probes of
  /// the technique/device virtuals the tables defer to). Two designs with
  /// equal plan fingerprints evaluate identically under every scenario;
  /// compiling the same design twice yields the same fingerprint.
  [[nodiscard]] const Fingerprint& fingerprint() const noexcept {
    return fingerprint_;
  }

  /// Scenario-independent results, hoisted out of the per-eval path.
  [[nodiscard]] bool utilizationFeasible() const noexcept {
    return utilFeasible_;
  }
  /// First utilization diagnostic (what UtilizationResult::errors[0] would
  /// say); empty when feasible.
  [[nodiscard]] const std::string& utilizationError() const noexcept {
    return utilError_;
  }
  [[nodiscard]] Money totalOutlays() const noexcept { return totalOutlays_; }

  [[nodiscard]] int levelCount() const noexcept {
    return static_cast<int>(levels_.size());
  }

  // ---- Stochastic trial-plan support ---------------------------------
  // The Monte-Carlo layer (stochastic::TrialPlan) replays recoverFrom() at
  // thousands of sampled failure instants per scenario. Everything in that
  // walk except the payload is a pure function of the scenario: endpoint
  // resolution (spare / facility / unviable), via/transit decisions, and
  // the normal-mode demand folds. resolveRecovery() computes those once per
  // (scenario, source level); runResolvedLegs() replays only the
  // payload-dependent arithmetic — the same FP expressions recoverFrom()
  // evaluates, in the same order, so recovery times stay bit-identical.

  /// One restore leg with its scenario-dependent parts resolved. Device
  /// pointers are kept only for transferBandwidth() (payload-dependent
  /// virtual); the plan's DeviceRow owns them.
  struct ResolvedLeg {
    const DeviceModel* from = nullptr;
    const DeviceModel* to = nullptr;
    /// Transport to drain through; null when the leg resolved same-site or
    /// ships physically (no bandwidth term either way).
    const DeviceModel* via = nullptr;
    bool physical = false;  ///< courier: one transit, no drain/apply
    bool fromFresh = false;
    bool toFresh = false;
    Duration transit = Duration::zero();
    Duration serFix = Duration::zero();
    Duration fromParFix = Duration::zero();
    Duration toParFix = Duration::zero();
    /// availableBandwidth()'s demand subtrahends under this scenario's
    /// destroyed-level mask (payload-independent).
    Bandwidth fromDemands = Bandwidth::zero();
    Bandwidth viaDemands = Bandwidth::zero();
    Bandwidth toDemands = Bandwidth::zero();
  };

  struct ResolvedRecovery {
    /// Some endpoint is destroyed with no spare or facility: the walk is
    /// unrecoverable regardless of payload (legs stop at the lost one).
    bool pathLost = false;
    /// False mirrors "source level has no restore path": unrecoverable.
    bool hasLegs = false;
    std::vector<ResolvedLeg> legs;
  };

  /// Resolves `sourceLevel`'s restore path under `scenario`.
  [[nodiscard]] ResolvedRecovery resolveRecovery(const FailureScenario& scenario,
                                                 int sourceLevel) const;

  /// levelDestroyed(design, level, scenario) for every level.
  [[nodiscard]] std::vector<char> destroyedLevels(
      const FailureScenario& scenario) const;

  /// recoverFrom()'s drain/apply clock over a resolved path. Infinite when
  /// the path cannot stream the payload (or pathLost).
  [[nodiscard]] static Duration runResolvedLegs(const ResolvedRecovery& path,
                                                Bytes payload);

 private:
  EvalPlan() = default;

  /// One distinct device the per-eval loops query (storage devices and leg
  /// endpoints/transports).
  struct DeviceRow {
    DevicePtr device;  ///< kept for transferBandwidth() (payload-dependent)
    std::string name;
    Location location;
    /// device->spec().spare.type != kNone (spares rescue kArray failures)
    bool hasSpare = false;
    Duration spareProvisioningTime = Duration::zero();
    /// Span into contribLevel_/contribBandwidth_: this device's normal-mode
    /// bandwidth demands, in (level, demand) order.
    std::uint32_t contribBegin = 0;
    std::uint32_t contribEnd = 0;
  };

  /// One restore leg, endpoints resolved to device-row indices.
  struct LegRow {
    std::int32_t from = -1;
    std::int32_t to = -1;
    std::int32_t via = -1;  ///< -1 = none
    bool originallyCrossSite = false;
    bool viaPhysical = false;
    Duration viaTransit = Duration::zero();
    Duration serializedFix = Duration::zero();
  };

  struct LevelRow {
    TechniquePtr technique;  ///< kept for restorePayload() (virtual)
    Duration lag = Duration::zero();        ///< rpTimeLag
    Duration oldestAge = Duration::zero();  ///< guaranteedRange().oldestAge
    /// Data loss when the target falls within the retained range:
    /// policy()->effectiveAccW(), or zero for the (policy-free) primary.
    Duration withinLoss = Duration::zero();
    /// restorePayload(workload, workload.dataCap()) — the payload when the
    /// scenario does not override the recovery size.
    Bytes defaultPayload{0};
    /// Span into storageIdx_: this level's storage devices.
    std::uint32_t storageBegin = 0;
    std::uint32_t storageEnd = 0;
    /// Span into legs_: this level's restore path.
    std::uint32_t legBegin = 0;
    std::uint32_t legEnd = 0;
  };

  /// Mirror of availableBandwidth(design, device, payload, fresh, &scenario)
  /// over the flattened contribution table.
  [[nodiscard]] Bandwidth availableBw(std::int32_t devIdx, Bytes payload,
                                      bool fresh,
                                      const bool* lvlDestroyed) const;

  std::vector<DeviceRow> devices_;
  std::vector<LevelRow> levels_;
  std::vector<LegRow> legs_;
  std::vector<std::uint32_t> storageIdx_;
  std::vector<std::int32_t> contribLevel_;
  std::vector<Bandwidth> contribBandwidth_;

  bool hasFacility_ = false;
  Location facilityLocation_;
  Duration facilityProvisioningTime_ = Duration::zero();

  BusinessRequirements business_;
  std::optional<WorkloadSpec> workload_;

  bool utilFeasible_ = true;
  std::string utilError_;
  Money totalOutlays_ = Money::zero();
  Fingerprint fingerprint_;
};

}  // namespace stordep::engine
