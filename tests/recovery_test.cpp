// Tests for core/recovery: the drain/apply recovery-time model (paper
// Sec 3.3.4, Figure 4), validated against the paper's published recovery
// times for the case study (Tables 6 and 7).
#include "core/recovery.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "devices/catalog.hpp"

namespace stordep {
namespace {

using casestudy::arrayFailure;
using casestudy::baseline;
using casestudy::objectFailure;
using casestudy::siteDisaster;

TEST(Recovery, ObjectFailureIsIntraArrayCopy) {
  const RecoveryResult r = computeRecovery(baseline(), objectFailure());
  ASSERT_TRUE(r.recoverable);
  EXPECT_EQ(r.sourceLevel, 1);
  EXPECT_EQ(r.dataLoss, hours(12));
  // Paper Table 6: 0.004 s (1 MB read + write on the array).
  EXPECT_NEAR(r.recoveryTime.secs(), 0.004, 0.0005);
  ASSERT_EQ(r.timeline.size(), 1u);
  EXPECT_EQ(r.timeline[0].fromDevice, casestudy::kPrimaryArrayName);
  EXPECT_EQ(r.timeline[0].toDevice, casestudy::kPrimaryArrayName);
}

TEST(Recovery, ArrayFailureRestoresFromTape) {
  const RecoveryResult r = computeRecovery(baseline(), arrayFailure());
  ASSERT_TRUE(r.recoverable);
  EXPECT_EQ(r.sourceLevel, 2);
  EXPECT_EQ(r.dataLoss, hours(217));
  // Paper Table 6: 2.4 hr — tape read (~1.7 h at 232 MB/s) + apply onto the
  // freshly provisioned spare (~0.76 h at 512 MB/s) + load/seek + spare
  // provisioning.
  EXPECT_NEAR(r.recoveryTime.hrs(), 2.4, 0.15);
  // The spare was provisioned, not the facility.
  ASSERT_FALSE(r.notes.empty());
  EXPECT_NE(r.notes[0].find("spare"), std::string::npos);
  // Payload is one full image.
  EXPECT_EQ(r.payload, gigabytes(1360));
}

TEST(Recovery, SiteDisasterShipsFromVault) {
  const RecoveryResult r = computeRecovery(baseline(), siteDisaster());
  ASSERT_TRUE(r.recoverable);
  EXPECT_EQ(r.sourceLevel, 3);
  EXPECT_EQ(r.dataLoss, hours(1429));
  // Paper Table 6: 26.4 hr = 24 h shipment + tape load + read + apply,
  // with the 9 h facility provisioning fully overlapped by the shipment.
  EXPECT_NEAR(r.recoveryTime.hrs(), 26.4, 0.2);
  ASSERT_EQ(r.timeline.size(), 2u);
  EXPECT_EQ(r.timeline[0].viaDevice, "air-shipment");
  EXPECT_EQ(r.timeline[0].transit, hours(24));
  // Facility provisioning appears in the notes.
  bool facilityNote = false;
  for (const auto& n : r.notes) {
    if (n.find("recovery facility") != std::string::npos) facilityNote = true;
  }
  EXPECT_TRUE(facilityNote);
}

TEST(Recovery, SiteDisasterOverlapsProvisioningWithShipping) {
  // If provisioning were serialized with shipping, RT would exceed 33 h.
  const RecoveryResult r = computeRecovery(baseline(), siteDisaster());
  EXPECT_LT(r.recoveryTime.hrs(), 28.0);
  EXPECT_GT(r.recoveryTime.hrs(), 24.0);  // the shipment is unavoidable
}

TEST(Recovery, AsyncBatchOneLinkTransferDominates) {
  const StorageDesign d = casestudy::asyncBatchMirror(1);
  const RecoveryResult array = computeRecovery(d, arrayFailure());
  ASSERT_TRUE(array.recoverable);
  // Paper Table 7: 21.7 hr (WAN drain ~20.8 h + apply 0.76 h).
  EXPECT_NEAR(array.recoveryTime.hrs(), 21.7, 0.8);
  const RecoveryResult site = computeRecovery(d, siteDisaster());
  ASSERT_TRUE(site.recoverable);
  // Site disaster: the 9 h facility provisioning hides inside the WAN
  // drain, so RT matches the array failure (paper: both 21.7 hr).
  EXPECT_NEAR(site.recoveryTime.hrs(), array.recoveryTime.hrs(), 0.1);
}

TEST(Recovery, AsyncBatchTenLinksProvisioningDominates) {
  const StorageDesign d = casestudy::asyncBatchMirror(10);
  const RecoveryResult array = computeRecovery(d, arrayFailure());
  ASSERT_TRUE(array.recoverable);
  // Paper Table 7: 2.8 hr (drain ~2 h + apply 0.76 h).
  EXPECT_NEAR(array.recoveryTime.hrs(), 2.8, 0.2);
  const RecoveryResult site = computeRecovery(d, siteDisaster());
  ASSERT_TRUE(site.recoverable);
  // Paper: 9.8 hr — now the 9 h provisioning dominates the 2 h drain.
  EXPECT_NEAR(site.recoveryTime.hrs(), 9.8, 0.2);
  EXPECT_GT(site.recoveryTime, array.recoveryTime);
}

TEST(Recovery, MoreLinksNeverSlowRecovery) {
  Duration prev = Duration::infinite();
  for (int links : {1, 2, 4, 8, 16}) {
    const StorageDesign d = casestudy::asyncBatchMirror(links);
    const RecoveryResult r = computeRecovery(d, arrayFailure());
    ASSERT_TRUE(r.recoverable) << links;
    EXPECT_LE(r.recoveryTime, prev) << links;
    prev = r.recoveryTime;
  }
}

TEST(Recovery, UnrecoverableWhenNoSourceSurvives) {
  // A region-wide disaster that takes the primary site, the mirror site and
  // the recovery facility: the asyncB design has no off-region copy.
  auto array = catalog::midrangeDiskArray(
      casestudy::kPrimaryArrayName,
      Location::at("primary-site", "b1", "west"));
  auto remote = catalog::midrangeDiskArray(
      "mirror-array", Location::at("mirror-site", "b1", "west"));
  auto links = catalog::oc3WanLinks("wan", Location::at("wide-area"), 1);
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<RemoteMirror>(
      "mirror", MirrorMode::kAsyncBatch, array, remote, links,
      ProtectionPolicy(WindowSpec{.accW = minutes(1), .propW = minutes(1)},
                       1, minutes(1))));
  const StorageDesign d("regional", casestudy::celloWorkload(),
                        caseStudyRequirements(), std::move(levels),
                        RecoveryFacilitySpec{
                            .location = Location::at("fac", "b", "west"),
                            .provisioningTime = hours(9),
                            .costDiscount = 0.2});
  const RecoveryResult r =
      computeRecovery(d, FailureScenario::regionDisaster("west"));
  EXPECT_FALSE(r.recoverable);
  EXPECT_TRUE(r.recoveryTime.isInfinite());
  EXPECT_TRUE(r.dataLoss.isInfinite());
}

TEST(Recovery, NoFacilityMeansSiteDisasterUnrecoverable) {
  // Baseline design without a recovery facility: after a site disaster the
  // vault data survives but there is nowhere to restore it.
  const StorageDesign base = baseline();
  std::vector<TechniquePtr> levels;
  for (int i = 0; i < base.levelCount(); ++i) {
    levels.push_back(base.levelPtr(i));
  }
  const StorageDesign d("no-facility", base.workload(), base.business(),
                        std::move(levels), std::nullopt);
  const RecoveryResult r = computeRecovery(d, siteDisaster());
  EXPECT_FALSE(r.recoverable);
  // But an array failure still recovers via the dedicated spare.
  const RecoveryResult ar = computeRecovery(d, arrayFailure());
  EXPECT_TRUE(ar.recoverable);
}

TEST(Recovery, PrimarySurvivingFailureIsInstant) {
  const RecoveryResult r = computeRecovery(
      baseline(), FailureScenario::arrayFailure("tape-library"));
  ASSERT_TRUE(r.recoverable);
  EXPECT_EQ(r.sourceLevel, 0);
  EXPECT_EQ(r.recoveryTime, Duration::zero());
  EXPECT_EQ(r.dataLoss, Duration::zero());
}

TEST(Recovery, TimelineIsOrderedAndDecomposed) {
  const RecoveryResult r = computeRecovery(baseline(), siteDisaster());
  ASSERT_EQ(r.timeline.size(), 2u);
  const auto& ship = r.timeline[0];
  const auto& restore = r.timeline[1];
  EXPECT_LE(ship.startTime, ship.readyTime);
  EXPECT_LE(ship.readyTime, restore.readyTime);
  EXPECT_EQ(restore.readyTime, r.recoveryTime);
  // The restore leg decomposes into load + read + apply.
  EXPECT_EQ(restore.serFix, hours(0.01));
  EXPECT_GT(restore.serXfer.hrs(), 2.0);
  EXPECT_GT(restore.rate.mbPerSec(), 100.0);
}

TEST(Recovery, FullPlusIncrementalRestoresMorePayload) {
  const RecoveryResult fi = computeRecovery(
      casestudy::weeklyVaultFullPlusIncremental(), arrayFailure());
  const RecoveryResult base = computeRecovery(baseline(), arrayFailure());
  ASSERT_TRUE(fi.recoverable);
  // Full + largest cumulative incremental > full alone.
  EXPECT_GT(fi.payload, base.payload);
  EXPECT_GT(fi.recoveryTime, base.recoveryTime);
  // But the data loss is much smaller (73 h vs 217 h, Table 7).
  EXPECT_EQ(fi.dataLoss, hours(73));
  EXPECT_EQ(base.dataLoss, hours(217));
}

TEST(AvailableBandwidth, SubtractsContinuingDemands) {
  const StorageDesign d = baseline();
  DevicePtr lib;
  for (const auto& dev : d.devices()) {
    if (dev->name() == "tape-library") lib = dev;
  }
  ASSERT_TRUE(lib);
  const Bandwidth avail =
      availableBandwidth(d, lib, gigabytes(1360), /*fresh=*/false);
  // 240 MB/s minus the ~8.06 MB/s backup write stream.
  EXPECT_NEAR(avail.mbPerSec(), 240 - 8.06, 0.1);
  const Bandwidth fresh =
      availableBandwidth(d, lib, gigabytes(1360), /*fresh=*/true);
  EXPECT_DOUBLE_EQ(fresh.mbPerSec(), 240.0);
}

TEST(AvailableBandwidth, FloorsAtZeroWhenOverSubscribed) {
  const StorageDesign d = baseline();
  DevicePtr lib;
  for (const auto& dev : d.devices()) {
    if (dev->name() == "tape-library") lib = dev;
  }
  ASSERT_TRUE(lib);
  // A tiny payload engages one drive (60 MB/s); demands are ~8 MB/s, so
  // plenty remains — but never negative in any case.
  const Bandwidth avail = availableBandwidth(d, lib, megabytes(1), false);
  EXPECT_GE(avail.bytesPerSec(), 0.0);
  EXPECT_NEAR(avail.mbPerSec(), 60 - 8.06, 0.1);
}

}  // namespace
}  // namespace stordep
