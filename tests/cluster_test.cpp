// Cluster-layer tests: ring determinism and minimal rebalancing, the
// injected-clock membership state machine (suspicion, eviction, rejoin,
// insert-only introduction), the grid partitioner's exact-concatenation
// property, and loopback integration:
//   * a 2-node ring answers /v1/evaluate byte-identically to a plain
//     single-node server whichever node the client dials (forwarding moves
//     compute, never bytes);
//   * a 3-node distributed sweep whose worker is killed mid-range resumes
//     from the worker's checkpoint journal on the coordinator and produces
//     the exact single-node final ranking.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "cluster/membership.hpp"
#include "cluster/node.hpp"
#include "cluster/ring.hpp"
#include "cluster/sweep.hpp"
#include "config/design_io.hpp"
#include "engine/batch.hpp"
#include "engine/fingerprint.hpp"
#include "optimizer/search.hpp"
#include "service/client.hpp"
#include "service/server.hpp"

namespace stordep::cluster {
namespace {

namespace cs = stordep::casestudy;
using config::Json;
using config::JsonObject;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---- Consistent-hash ring --------------------------------------------------

std::vector<engine::Fingerprint> sampleKeys(int count) {
  std::vector<engine::Fingerprint> keys;
  keys.reserve(static_cast<std::size_t>(count));
  for (int i = 0; i < count; ++i) {
    keys.push_back(engine::fingerprintBytes("key-" + std::to_string(i)));
  }
  return keys;
}

TEST(HashRing, OwnershipIsOrderIndependent) {
  HashRing forward;
  forward.rebuild({"alpha", "beta", "gamma"});
  HashRing reversed;
  reversed.rebuild({"gamma", "beta", "alpha"});
  HashRing withDuplicates;
  withDuplicates.rebuild({"beta", "alpha", "gamma", "alpha"});

  EXPECT_EQ(forward.memberCount(), 3u);
  EXPECT_EQ(forward.pointCount(), 3u * kDefaultVnodes);
  EXPECT_EQ(withDuplicates.memberCount(), 3u);

  for (const engine::Fingerprint& key : sampleKeys(256)) {
    const std::string& owner = forward.ownerOf(key);
    EXPECT_EQ(owner, reversed.ownerOf(key));
    EXPECT_EQ(owner, withDuplicates.ownerOf(key));
  }
}

TEST(HashRing, RemovingAMemberOnlyMovesItsOwnKeys) {
  HashRing three;
  three.rebuild({"alpha", "beta", "gamma"});
  HashRing two;
  two.rebuild({"alpha", "gamma"});

  int moved = 0;
  const std::vector<engine::Fingerprint> keys = sampleKeys(512);
  for (const engine::Fingerprint& key : keys) {
    const std::string before = three.ownerOf(key);
    const std::string after = two.ownerOf(key);
    if (before != "beta") {
      // Consistent hashing's whole point: survivors keep their keys.
      EXPECT_EQ(before, after) << "key moved between surviving members";
    } else {
      ++moved;
      EXPECT_TRUE(after == "alpha" || after == "gamma");
    }
  }
  // beta owned roughly a third of the keyspace.
  EXPECT_GT(moved, 0);
  EXPECT_LT(moved, static_cast<int>(keys.size()));
}

TEST(HashRing, VnodesSpreadOwnershipAcrossMembers) {
  HashRing ring;
  ring.rebuild({"alpha", "beta", "gamma"});
  int counts[3] = {0, 0, 0};
  for (const engine::Fingerprint& key : sampleKeys(3000)) {
    const std::string& owner = ring.ownerOf(key);
    if (owner == "alpha") ++counts[0];
    if (owner == "beta") ++counts[1];
    if (owner == "gamma") ++counts[2];
  }
  // With 64 vnodes each share should land well away from degenerate; allow
  // a generous band (an unsalted single-point ring can easily hit 70/20/10).
  for (int c : counts) {
    EXPECT_GT(c, 3000 / 6);
    EXPECT_LT(c, 3000 / 2);
  }
}

TEST(HashRing, EmptyRingOwnsNothing) {
  HashRing ring;
  EXPECT_TRUE(ring.empty());
  EXPECT_EQ(ring.ownerOf(engine::fingerprintBytes("x")), "");
}

// ---- Membership (injected clock) -------------------------------------------

TEST(Membership, SuspicionEvictionAndRejoin) {
  const auto t0 = steady_clock::now();
  MembershipOptions options;  // suspect 2 s, evict 6 s
  Membership membership("self", "127.0.0.1", 1000, options, t0);

  membership.heardFrom("peer", "127.0.0.1", 1001, t0);
  EXPECT_TRUE(membership.isAlive("peer"));
  EXPECT_EQ(membership.aliveCount(), 2u);
  const std::uint64_t joined = membership.version();

  // Just under the suspicion bound: nothing changes.
  membership.tick(t0 + milliseconds{1999});
  EXPECT_TRUE(membership.isAlive("peer"));
  EXPECT_EQ(membership.version(), joined);

  // Past it: Suspect, but STILL a ring member (ownership must not flap).
  membership.tick(t0 + milliseconds{2001});
  EXPECT_FALSE(membership.isAlive("peer"));
  EXPECT_EQ(membership.suspectCount(), 1u);
  ASSERT_EQ(membership.ringMemberIds().size(), 2u);
  const std::uint64_t suspected = membership.version();
  EXPECT_GT(suspected, joined);

  // Heard again: back to Alive.
  membership.heardFrom("peer", "127.0.0.1", 1001, t0 + milliseconds{2500});
  EXPECT_TRUE(membership.isAlive("peer"));
  EXPECT_GT(membership.version(), suspected);

  // Silence all the way through eviction: gone from the ring entirely.
  membership.tick(t0 + milliseconds{2500} + options.evictAfter);
  EXPECT_FALSE(membership.find("peer").has_value());
  EXPECT_EQ(membership.ringMemberIds(), std::vector<std::string>{"self"});

  // Rejoin is an ordinary join.
  membership.heardFrom("peer", "127.0.0.1", 1001, t0 + milliseconds{20'000});
  EXPECT_TRUE(membership.isAlive("peer"));
}

TEST(Membership, IntroduceIsInsertOnly) {
  const auto t0 = steady_clock::now();
  Membership membership("self", "127.0.0.1", 1000, MembershipOptions{}, t0);

  membership.introduce("peer", "127.0.0.1", 1001, t0);
  EXPECT_TRUE(membership.isAlive("peer"));

  // Second-hand gossip must NOT refresh liveness: the peer still goes
  // Suspect on the schedule set by its last *direct* contact.
  membership.introduce("peer", "127.0.0.1", 1001, t0 + milliseconds{1900});
  membership.tick(t0 + milliseconds{2001});
  EXPECT_FALSE(membership.isAlive("peer"));

  // ... and introduce() never resurrects a Suspect either.
  membership.introduce("peer", "127.0.0.1", 1001, t0 + milliseconds{2002});
  EXPECT_FALSE(membership.isAlive("peer"));
}

TEST(Membership, SelfIsExemptFromTimeouts) {
  const auto t0 = steady_clock::now();
  Membership membership("self", "127.0.0.1", 1000, MembershipOptions{}, t0);
  membership.tick(t0 + std::chrono::hours{1});
  EXPECT_TRUE(membership.isAlive("self"));
  EXPECT_EQ(membership.ringMemberIds(), std::vector<std::string>{"self"});
}

// ---- Grid partitioner ------------------------------------------------------

TEST(PartitionGrid, ContiguousCompleteAndBalanced) {
  for (const auto& [total, parts] :
       std::vector<std::pair<std::uint64_t, std::size_t>>{
           {0, 3}, {1, 3}, {7, 3}, {216, 3}, {216, 5}, {1000, 7}, {5, 8}}) {
    const auto ranges = partitionGrid(total, parts);
    ASSERT_EQ(ranges.size(), parts);
    std::uint64_t expectedBegin = 0;
    std::uint64_t minSize = UINT64_MAX;
    std::uint64_t maxSize = 0;
    for (const auto& [begin, end] : ranges) {
      EXPECT_EQ(begin, expectedBegin);
      EXPECT_GE(end, begin);
      minSize = std::min(minSize, end - begin);
      maxSize = std::max(maxSize, end - begin);
      expectedBegin = end;
    }
    EXPECT_EQ(expectedBegin, total);
    EXPECT_LE(maxSize - minSize, 1u);
  }
}

TEST(PartitionGrid, RestrictedCursorsConcatenateToFullEnumeration) {
  const optimizer::DesignSpaceOptions options;  // the default ~200-point grid
  const std::uint64_t total = optimizer::gridCardinality(options);

  std::vector<std::string> full;
  {
    optimizer::DesignSpaceCursor cursor(options);
    optimizer::CandidateSpec spec;
    while (cursor.next(spec)) full.push_back(spec.label());
  }

  std::vector<std::string> stitched;
  for (const auto& [begin, end] : partitionGrid(total, 3)) {
    optimizer::DesignSpaceCursor cursor(options);
    cursor.restrictTo(begin, end);
    optimizer::CandidateSpec spec;
    while (cursor.next(spec)) stitched.push_back(spec.label());
  }
  EXPECT_EQ(stitched, full);
}

TEST(PartitionGrid, MergedPartitionRankingIsBitIdentical) {
  const optimizer::DesignSpaceOptions gridOptions;
  const std::uint64_t total = optimizer::gridCardinality(gridOptions);
  const auto workload = cs::celloWorkload();
  const auto business = cs::requirements();
  const auto scenarios = optimizer::caseStudyScenarios();

  optimizer::SearchOptions searchOptions;
  optimizer::DesignSpaceCursor fullCursor(gridOptions);
  const optimizer::SearchResult reference =
      optimizer::searchDesignSpaceStreaming(fullCursor, workload, business,
                                            scenarios, searchOptions);

  std::vector<optimizer::EvaluatedCandidate> all;
  for (const auto& [begin, end] : partitionGrid(total, 3)) {
    optimizer::DesignSpaceCursor cursor(gridOptions);
    cursor.restrictTo(begin, end);
    const optimizer::SearchResult part = optimizer::searchDesignSpaceStreaming(
        cursor, workload, business, scenarios, searchOptions);
    for (const auto& c : part.ranked) all.push_back(c);
    for (const auto& c : part.rejected) all.push_back(c);
  }
  const optimizer::SearchResult merged =
      optimizer::rankEvaluated(std::move(all));

  ASSERT_EQ(merged.ranked.size(), reference.ranked.size());
  ASSERT_EQ(merged.rejected.size(), reference.rejected.size());
  EXPECT_EQ(merged.evaluated, reference.evaluated);
  for (std::size_t i = 0; i < merged.ranked.size(); ++i) {
    EXPECT_EQ(merged.ranked[i].label, reference.ranked[i].label);
    EXPECT_EQ(merged.ranked[i].totalCost.usd(),
              reference.ranked[i].totalCost.usd());  // bit-exact
  }
}

// ---- Loopback: 2-node byte-identity ----------------------------------------

TEST(ClusterLoopback, TwoNodeRingAnswersByteIdenticallyToSingleNode) {
  service::ServerOptions serverOptions;
  serverOptions.engineThreads = 2;

  service::Server plain(serverOptions);
  plain.start();

  service::Server serverA(serverOptions);
  service::Server serverB(serverOptions);
  serverA.start();
  serverB.start();

  ClusterNodeOptions optionsA;
  optionsA.nodeId = "node-a";
  optionsA.enableHeartbeat = false;  // gossip driven explicitly below
  ClusterNodeOptions optionsB;
  optionsB.nodeId = "node-b";
  optionsB.enableHeartbeat = false;
  optionsB.seeds.emplace_back("127.0.0.1", static_cast<int>(serverA.port()));
  ClusterNode nodeA(serverA, optionsA);
  ClusterNode nodeB(serverB, optionsB);
  nodeA.start();
  nodeB.start();
  nodeB.gossipOnce();  // B pings A: both now know both members
  nodeA.gossipOnce();  // A pings B back: direct contact both ways

  service::Client clientPlain("127.0.0.1", plain.port());
  service::Client clientA("127.0.0.1", serverA.port());
  service::Client clientB("127.0.0.1", serverB.port());

  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    for (const FailureScenario& scenario :
         {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
      Json payload{JsonObject{}};
      payload.set("design", config::designToJson(design));
      payload.set("scenario", config::scenarioToJson(scenario));
      const std::string body = payload.dump();

      const service::HttpClientResponse expected = clientPlain.post(
          "/v1/evaluate", body, {{"Content-Type", "application/json"}});
      const service::HttpClientResponse viaA = clientA.post(
          "/v1/evaluate", body, {{"Content-Type", "application/json"}});
      const service::HttpClientResponse viaB = clientB.post(
          "/v1/evaluate", body, {{"Content-Type", "application/json"}});

      EXPECT_EQ(viaA.status, expected.status) << label;
      EXPECT_EQ(viaA.body, expected.body) << label;
      EXPECT_EQ(viaB.status, expected.status) << label;
      EXPECT_EQ(viaB.body, expected.body) << label;
    }
  }

  // The split actually exercised forwarding: with two members on the ring,
  // some of the 27 keys must land on the remote owner from each entry node.
  const Json metricsA = Json::parse(clientA.get("/metrics").body);
  const Json metricsB = Json::parse(clientB.get("/metrics").body);
  std::uint64_t forwarded = 0;
  for (const Json* metrics : {&metricsA, &metricsB}) {
    const Json* section = metrics->find("cluster");
    ASSERT_NE(section, nullptr);
    forwarded += static_cast<std::uint64_t>(
        section->at("evaluateForwarded").asNumber());
  }
  EXPECT_GT(forwarded, 0u);

  nodeB.stop();
  nodeA.stop();
  plain.shutdown();
}

TEST(ClusterLoopback, HealthzAndMembersReportNodeIdentity) {
  service::Server server(service::ServerOptions{});
  server.start();
  ClusterNodeOptions options;
  options.nodeId = "solo";
  options.enableHeartbeat = false;
  ClusterNode node(server, options);
  node.start();

  service::Client client("127.0.0.1", server.port());
  const Json health = Json::parse(client.get("/healthz").body);
  const Json* section = health.find("cluster");
  ASSERT_NE(section, nullptr);
  EXPECT_EQ(section->at("nodeId").asString(), "solo");
  EXPECT_EQ(static_cast<int>(section->at("ringPoints").asNumber()),
            kDefaultVnodes);
  EXPECT_EQ(static_cast<int>(section->at("membersAlive").asNumber()), 1);

  const Json members = Json::parse(client.get("/v1/cluster/members").body);
  EXPECT_EQ(members.at("node").asString(), "solo");
  ASSERT_TRUE(members.at("members").isArray());
  ASSERT_EQ(members.at("members").asArray().size(), 1u);
  EXPECT_EQ(members.at("members").asArray()[0].at("state").asString(),
            "alive");

  node.stop();
}

// ---- Loopback: 3-node sweep, worker killed mid-range -----------------------

/// Runs a /v1/search and returns (finalResultLine, status). Lines before the
/// final one are progress/candidate chatter.
std::pair<Json, int> runSearchCollectResult(std::uint16_t port,
                                            const std::string& body) {
  service::Client client("127.0.0.1", port);
  Json result;
  const auto onLine = [&](std::string_view line) {
    if (line.empty()) return;
    const Json parsed = Json::parse(std::string(line));
    if (const Json* r = parsed.find("result")) result = *r;
  };
  const service::HttpClientResponse response =
      client.postStreaming("/v1/search", body, onLine);
  return {result, response.status};
}

/// Strips the run-varying timing fields so rankings compare exactly.
Json normalizeResult(Json result) {
  result.set("wallSeconds", Json(0.0));
  result.set("candidatesPerSec", Json(0.0));
  return result;
}

std::size_t journalLineCount(const std::string& path) {
  std::ifstream in(path);
  std::size_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++lines;
  }
  return lines;
}

TEST(ClusterLoopback, SweepSurvivesWorkerDeathAndResumesFromJournal) {
  const std::string checkpointDir =
      ::testing::TempDir() + "cluster_sweep_journals";
  std::filesystem::remove_all(checkpointDir);
  std::filesystem::create_directories(checkpointDir);

  service::ServerOptions serverOptions;
  serverOptions.engineThreads = 2;

  // Single-node reference ranking first.
  service::Server plain(serverOptions);
  plain.start();
  const auto [reference, referenceStatus] =
      runSearchCollectResult(plain.port(), R"({"top": 50})");
  plain.shutdown();
  ASSERT_EQ(referenceStatus, 200);
  ASSERT_TRUE(reference.isObject());

  // Three nodes, explicit gossip (no heartbeat: the coordinator must
  // believe the victim is alive when the sweep starts).
  service::Server serverA(serverOptions);
  service::Server serverB(serverOptions);
  service::Server serverC(serverOptions);
  serverA.start();
  serverB.start();
  serverC.start();

  const auto makeNode = [&](service::Server& server, const std::string& id,
                            int seedPort) {
    ClusterNodeOptions options;
    options.nodeId = id;
    options.enableHeartbeat = false;
    if (seedPort > 0) options.seeds.emplace_back("127.0.0.1", seedPort);
    return std::make_unique<ClusterNode>(server, options);
  };
  auto nodeA = makeNode(serverA, "node-a", 0);
  auto nodeB = makeNode(serverB, "node-b", static_cast<int>(serverA.port()));
  auto nodeC = makeNode(serverC, "node-c", static_cast<int>(serverA.port()));
  nodeA->start();
  nodeB->start();
  nodeC->start();
  // Two rounds: everyone hears about everyone, then everyone has had
  // direct contact with everyone they will dial.
  nodeB->gossipOnce();
  nodeC->gossipOnce();
  nodeA->gossipOnce();
  nodeB->gossipOnce();
  nodeC->gossipOnce();

  // node-c's share of the grid under the coordinator's partition (members
  // sorted by id: a, b, c).
  const std::uint64_t total =
      optimizer::gridCardinality(optimizer::DesignSpaceOptions{});
  const auto ranges = partitionGrid(total, 3);
  const auto [cBegin, cEnd] = ranges[2];
  const std::string cJournal = rangeCheckpointPath(checkpointDir, cBegin,
                                                   cEnd);

  // Start node-c on its own range as a paced worker-mode sweep, journaling
  // to the coordinator's per-range path, then kill it mid-range. The drain
  // cancels the sweep at a wave boundary, leaving a PARTIAL journal.
  std::atomic<int> candidateLines{0};
  std::thread victim([&] {
    try {
      service::Client client("127.0.0.1", serverC.port());
      Json body{JsonObject{}};
      Json range{JsonObject{}};
      range.set("begin", Json(static_cast<double>(cBegin)));
      range.set("end", Json(static_cast<double>(cEnd)));
      body.set("range", range);
      body.set("checkpointPath", Json(cJournal));
      body.set("streamChunk", Json(4));
      body.set("waveDelayMs", Json(100));
      (void)client.postStreaming(
          "/v1/search", body.dump(), [&](std::string_view line) {
            if (line.find("\"candidate\"") != std::string_view::npos ||
                line.find("\"progress\"") != std::string_view::npos) {
              candidateLines.fetch_add(1);
            }
          });
    } catch (const service::TransportError&) {
      // The kill below tears the stream mid-flight; expected.
    }
  });
  while (candidateLines.load() < 2) {
    std::this_thread::sleep_for(milliseconds{5});
  }
  nodeC->stop();  // kills server C with the sweep in flight
  victim.join();
  ASSERT_TRUE(std::filesystem::exists(cJournal))
      << "the killed worker should have journaled completed waves";
  const std::size_t partialRecords = journalLineCount(cJournal);
  ASSERT_GT(partialRecords, 0u);

  // Cluster sweep from node-a: C's range fails over to the coordinator,
  // which resumes from C's journal. The merged ranking must match the
  // single-node reference exactly.
  Json sweepBody{JsonObject{}};
  sweepBody.set("cluster", Json(true));
  sweepBody.set("checkpointDir", Json(checkpointDir));
  sweepBody.set("top", Json(50));
  const auto [clustered, clusteredStatus] =
      runSearchCollectResult(serverA.port(), sweepBody.dump());
  ASSERT_EQ(clusteredStatus, 200);
  ASSERT_TRUE(clustered.isObject());

  EXPECT_EQ(normalizeResult(clustered).dump(),
            normalizeResult(reference).dump());
  // The resumed range really did reuse the journal: the coordinator
  // appended the REST of node-c's range to the same file instead of
  // starting over (a restart from scratch would re-journal the restored
  // records too).
  const std::size_t resumedRecords = journalLineCount(cJournal);
  EXPECT_GT(resumedRecords, partialRecords);

  nodeC->stop();
  nodeB->stop();
  nodeA->stop();
  std::filesystem::remove_all(checkpointDir);
}

}  // namespace
}  // namespace stordep::cluster
