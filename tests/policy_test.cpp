// Tests for core/policy: the common parameter abstraction, cyclic policies,
// derived worst-case quantities and convention checking.
#include "core/policy.hpp"

#include <gtest/gtest.h>

namespace stordep {
namespace {

WindowSpec win(Duration accW, Duration propW, Duration holdW) {
  return WindowSpec{.accW = accW,
                    .propW = propW,
                    .holdW = holdW,
                    .propRep = Representation::kFull};
}

TEST(ProtectionPolicy, SimplePolicyDerivedQuantities) {
  // The baseline tape-backup policy (Table 3).
  const ProtectionPolicy p(win(weeks(1), hours(48), hours(1)), 4, weeks(4));
  EXPECT_FALSE(p.isCyclic());
  EXPECT_EQ(p.effectiveAccW(), weeks(1));
  EXPECT_EQ(p.worstPropW(), hours(48));
  EXPECT_EQ(p.holdW(), hours(1));
  EXPECT_EQ(p.cyclePeriod(), weeks(1));
  EXPECT_EQ(p.retentionCount(), 4);
  EXPECT_EQ(p.retentionWindow(), weeks(4));
  EXPECT_TRUE(p.conventionViolations().empty());
}

TEST(ProtectionPolicy, CyclicPolicyDerivedQuantities) {
  // Table 7's "F+I": weekly fulls (48 h propW) + 5 daily cumulative
  // incrementals (24 h accW, 12 h propW).
  const ProtectionPolicy p(win(weeks(1), hours(48), hours(1)),
                           win(hours(24), hours(12), hours(1)), 5, weeks(1), 4,
                           weeks(4));
  EXPECT_TRUE(p.isCyclic());
  EXPECT_EQ(p.cycleCount(), 5);
  // RPs arrive daily; the worst in-flight RP is a full (48 h window).
  EXPECT_EQ(p.effectiveAccW(), hours(24));
  EXPECT_EQ(p.worstPropW(), hours(48));
  EXPECT_EQ(p.feedWindows().propW, hours(48));
}

TEST(ProtectionPolicy, ZeroAccWMeansContinuousPropagation) {
  // Synchronous mirroring: no batching at all.
  const ProtectionPolicy p(win(Duration::zero(), Duration::zero(),
                               Duration::zero()),
                           1, Duration::zero());
  EXPECT_EQ(p.effectiveAccW(), Duration::zero());
  EXPECT_EQ(p.worstPropW(), Duration::zero());
}

TEST(ProtectionPolicy, RejectsNonsense) {
  EXPECT_THROW(ProtectionPolicy(win(hours(-1), hours(0), hours(0)), 1, hours(1)),
               PolicyError);
  EXPECT_THROW(ProtectionPolicy(win(hours(1), hours(-1), hours(0)), 1, hours(1)),
               PolicyError);
  EXPECT_THROW(ProtectionPolicy(win(hours(1), hours(0), hours(-1)), 1, hours(1)),
               PolicyError);
  EXPECT_THROW(ProtectionPolicy(win(hours(1), hours(0), hours(0)), 0, hours(1)),
               PolicyError);
  EXPECT_THROW(ProtectionPolicy(win(hours(1), hours(0), hours(0)), 1,
                                hours(-1)),
               PolicyError);
}

TEST(ProtectionPolicy, RejectsBadCyclicParameters) {
  // cycleCount must be positive.
  EXPECT_THROW(ProtectionPolicy(win(weeks(1), hours(1), hours(0)),
                                win(hours(24), hours(1), hours(0)), 0, weeks(1),
                                1, weeks(1)),
               PolicyError);
  // Secondary accW must be positive.
  EXPECT_THROW(ProtectionPolicy(win(weeks(1), hours(1), hours(0)),
                                win(Duration::zero(), hours(1), hours(0)), 5,
                                weeks(1), 1, weeks(1)),
               PolicyError);
  // Cycle must fit at least one secondary window.
  EXPECT_THROW(ProtectionPolicy(win(weeks(1), hours(1), hours(0)),
                                win(hours(24), hours(1), hours(0)), 5, hours(12),
                                1, weeks(1)),
               PolicyError);
}

TEST(ProtectionPolicy, ConventionViolationPropWExceedsAccW) {
  // A 12-hour backup window for RPs created every hour can't keep up.
  const ProtectionPolicy p(win(hours(1), hours(12), hours(0)), 4, days(2));
  const auto violations = p.conventionViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("propW exceeds accW"), std::string::npos);
}

TEST(ProtectionPolicy, ConventionViolationShortRetentionWindow) {
  // retW of 1 hour against 4 retained weekly cycles is inconsistent.
  const ProtectionPolicy p(win(weeks(1), hours(1), hours(0)), 4, hours(1));
  const auto violations = p.conventionViolations();
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("retention window"), std::string::npos);
}

TEST(ProtectionPolicy, ConventionalPoliciesAreClean) {
  const ProtectionPolicy splitMirror(win(hours(12), Duration::zero(),
                                         Duration::zero()),
                                     4, days(2));
  EXPECT_TRUE(splitMirror.conventionViolations().empty());
  const ProtectionPolicy vault(win(weeks(4), hours(24), weeks(4) + hours(12)),
                               39, years(3));
  EXPECT_TRUE(vault.conventionViolations().empty());
}

TEST(Representation, Names) {
  EXPECT_EQ(toString(Representation::kFull), "full");
  EXPECT_EQ(toString(Representation::kPartial), "partial");
}

// Property sweep: effectiveAccW == min of windows, worstPropW == max, for a
// grid of cyclic window combinations.
struct CyclicCase {
  double fullAccH, fullPropH, incrAccH, incrPropH;
};

class CyclicPolicySweep : public ::testing::TestWithParam<CyclicCase> {};

TEST_P(CyclicPolicySweep, MinMaxDerivations) {
  const auto& c = GetParam();
  const ProtectionPolicy p(win(hours(c.fullAccH), hours(c.fullPropH), hours(1)),
                           win(hours(c.incrAccH), hours(c.incrPropH), hours(1)),
                           3, hours(std::max(c.fullAccH, 3 * c.incrAccH)), 2,
                           weeks(8));
  EXPECT_DOUBLE_EQ(p.effectiveAccW().hrs(), std::min(c.fullAccH, c.incrAccH));
  EXPECT_DOUBLE_EQ(p.worstPropW().hrs(), std::max(c.fullPropH, c.incrPropH));
}

INSTANTIATE_TEST_SUITE_P(
    WindowGrid, CyclicPolicySweep,
    ::testing::Values(CyclicCase{168, 48, 24, 12}, CyclicCase{168, 12, 24, 48},
                      CyclicCase{24, 6, 6, 3}, CyclicCase{48, 48, 24, 24},
                      CyclicCase{720, 24, 168, 24}));

}  // namespace
}  // namespace stordep
