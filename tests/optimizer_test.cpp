// Tests for the design-space optimizer: enumeration validity, candidate
// construction, constraint enforcement (RTO/RPO), and that the search
// rediscovers the paper's Table 7 punchline.
#include <gtest/gtest.h>

#include <algorithm>

#include "casestudy/casestudy.hpp"
#include "optimizer/refine.hpp"
#include "optimizer/search.hpp"

namespace stordep::optimizer {
namespace {

namespace cs = stordep::casestudy;

TEST(DesignSpace, EnumerationIsNonTrivialAndValid) {
  const auto candidates = enumerateDesignSpace();
  EXPECT_GT(candidates.size(), 100u);
  for (const CandidateSpec& spec : candidates) {
    EXPECT_TRUE(spec.valid()) << spec.label();
  }
}

TEST(DesignSpace, InvalidCombinationsRejected) {
  CandidateSpec spec;
  // Vault without backup.
  spec.vault = true;
  spec.backup = BackupChoice::kNone;
  spec.pit = PitChoice::kSplitMirror;
  EXPECT_FALSE(spec.valid());
  // Backup without a PiT source image.
  spec = {};
  spec.backup = BackupChoice::kFullOnly;
  spec.pit = PitChoice::kNone;
  EXPECT_FALSE(spec.valid());
  // No protection at all.
  spec = {};
  EXPECT_FALSE(spec.valid());
  // Incrementals need room inside the cycle.
  spec = {};
  spec.pit = PitChoice::kSplitMirror;
  spec.backup = BackupChoice::kFullPlusIncremental;
  spec.backupAccW = hours(24);
  EXPECT_FALSE(spec.valid());
  EXPECT_THROW((void)spec.build(cs::celloWorkload(), cs::requirements()),
               DesignError);
}

TEST(DesignSpace, LabelsAreDescriptive) {
  CandidateSpec spec;
  spec.pit = PitChoice::kSplitMirror;
  spec.pitAccW = hours(12);
  spec.pitRetentionCount = 4;
  spec.backup = BackupChoice::kFullOnly;
  spec.backupAccW = weeks(1);
  spec.vault = true;
  spec.vaultAccW = weeks(4);
  const std::string label = spec.label();
  EXPECT_NE(label.find("split-mirror"), std::string::npos);
  EXPECT_NE(label.find("full"), std::string::npos);
  EXPECT_NE(label.find("vault"), std::string::npos);
}

TEST(DesignSpace, BuildsEvaluableDesigns) {
  CandidateSpec spec;
  spec.pit = PitChoice::kSplitMirror;
  spec.backup = BackupChoice::kFullOnly;
  spec.backupAccW = weeks(1);
  spec.vault = true;
  const StorageDesign design =
      spec.build(cs::celloWorkload(), cs::requirements());
  const EvaluationResult result = evaluate(design, cs::arrayFailure());
  EXPECT_TRUE(result.utilization.feasible());
  EXPECT_TRUE(result.recovery.recoverable);
  // This candidate is close to the paper's baseline: same DL structure.
  EXPECT_GT(result.recovery.dataLoss, hours(100));
}

TEST(Search, RanksByTotalCost) {
  const auto candidates = enumerateDesignSpace();
  const SearchResult result = searchDesignSpace(
      candidates, cs::celloWorkload(), cs::requirements(),
      caseStudyScenarios());
  EXPECT_EQ(result.evaluated, static_cast<int>(candidates.size()));
  ASSERT_FALSE(result.ranked.empty());
  for (size_t i = 1; i < result.ranked.size(); ++i) {
    EXPECT_LE(result.ranked[i - 1].totalCost.usd(),
              result.ranked[i].totalCost.usd());
  }
  // Every ranked candidate is feasible and meets (absent) objectives.
  for (const auto& c : result.ranked) {
    EXPECT_TRUE(c.feasible);
    EXPECT_TRUE(c.meetsObjectives);
    EXPECT_TRUE(c.totalCost.isFinite());
  }
}

TEST(Search, MirroringWinsWhenLossIsExpensive) {
  // With the case study's high loss penalty and all three scenarios in
  // play, tape-only designs pay enormous site-disaster loss penalties;
  // the best designs must include mirroring (echoing Table 7's punchline).
  const SearchResult result = searchDesignSpace(
      enumerateDesignSpace(), cs::celloWorkload(), cs::requirements(),
      caseStudyScenarios());
  ASSERT_FALSE(result.ranked.empty());
  EXPECT_NE(result.ranked.front().spec.mirror, MirrorChoice::kNone);
  // And because a 24 h-rollback object failure is in the scenario set, the
  // winner must also retain history (a PiT level or backup), not mirroring
  // alone.
  const auto& best = result.ranked.front().spec;
  EXPECT_TRUE(best.pit != PitChoice::kNone ||
              best.backup != BackupChoice::kNone)
      << result.ranked.front().label;
}

TEST(Search, RtoRpoConstraintsFilter) {
  BusinessRequirements strict = cs::requirements();
  strict.rto = hours(12);
  strict.rpo = hours(1);
  const SearchResult result =
      searchDesignSpace(enumerateDesignSpace(), cs::celloWorkload(), strict,
                        caseStudyScenarios());
  // An RPO of 1 hour across a site disaster forces mirroring; plain
  // tape hierarchies get rejected.
  for (const auto& c : result.ranked) {
    EXPECT_NE(c.spec.mirror, MirrorChoice::kNone) << c.label;
    EXPECT_LE(c.worstDataLoss, hours(1)) << c.label;
    EXPECT_LE(c.worstRecoveryTime, hours(12)) << c.label;
  }
  EXPECT_FALSE(result.rejected.empty());
  bool sawObjectiveRejection = false;
  for (const auto& c : result.rejected) {
    if (c.rejectionReason.find("RTO/RPO") != std::string::npos) {
      sawObjectiveRejection = true;
    }
  }
  EXPECT_TRUE(sawObjectiveRejection);
}

TEST(Search, UnrecoverableCandidatesRejected) {
  // Mirror-only candidates cannot serve the 24 h rollback scenario.
  CandidateSpec spec;
  spec.mirror = MirrorChoice::kAsyncBatch;
  spec.mirrorLinkCount = 1;
  ASSERT_TRUE(spec.valid());
  const EvaluatedCandidate result = evaluateCandidate(
      spec, cs::celloWorkload(), cs::requirements(), caseStudyScenarios());
  EXPECT_FALSE(result.feasible);
  EXPECT_NE(result.rejectionReason.find("unrecoverable"), std::string::npos);
}

TEST(Search, WeightsScalePenalties) {
  CandidateSpec spec;
  spec.pit = PitChoice::kSplitMirror;
  spec.backup = BackupChoice::kFullOnly;
  spec.backupAccW = weeks(1);
  spec.vault = true;

  std::vector<ScenarioCase> scenarios{
      {"array", cs::arrayFailure(), 1.0},
  };
  const EvaluatedCandidate base = evaluateCandidate(
      spec, cs::celloWorkload(), cs::requirements(), scenarios);
  scenarios[0].weight = 2.0;
  const EvaluatedCandidate doubled = evaluateCandidate(
      spec, cs::celloWorkload(), cs::requirements(), scenarios);
  EXPECT_NEAR(doubled.weightedPenalties.usd(),
              2.0 * base.weightedPenalties.usd(), 1.0);
  EXPECT_DOUBLE_EQ(doubled.outlays.usd(), base.outlays.usd());
}

TEST(Search, BestAccessor) {
  SearchResult empty;
  EXPECT_EQ(empty.best(), nullptr);
  const SearchResult result = searchDesignSpace(
      enumerateDesignSpace(), cs::celloWorkload(), cs::requirements(),
      caseStudyScenarios());
  ASSERT_NE(result.best(), nullptr);
  EXPECT_EQ(result.best()->label, result.ranked.front().label);
}

TEST(Pareto, FrontierIsMutuallyNonDominated) {
  const SearchResult result = searchDesignSpace(
      enumerateDesignSpace(), cs::celloWorkload(), cs::requirements(),
      caseStudyScenarios());
  std::vector<EvaluatedCandidate> all = result.ranked;
  all.insert(all.end(), result.rejected.begin(), result.rejected.end());
  const auto frontier = paretoFrontier(all);
  ASSERT_GE(frontier.size(), 3u);  // real trade-offs exist
  EXPECT_LT(frontier.size(), result.ranked.size());  // most are dominated

  // No frontier member dominates another.
  for (const auto& a : frontier) {
    for (const auto& b : frontier) {
      if (&a == &b) continue;
      const bool aDominatesB =
          a.outlays <= b.outlays &&
          a.worstRecoveryTime <= b.worstRecoveryTime &&
          a.worstDataLoss <= b.worstDataLoss &&
          (a.outlays < b.outlays || a.worstRecoveryTime < b.worstRecoveryTime ||
           a.worstDataLoss < b.worstDataLoss);
      EXPECT_FALSE(aDominatesB) << a.label << " dominates " << b.label;
    }
  }

  // Every feasible non-frontier candidate is dominated by some frontier
  // member.
  for (const auto& candidate : all) {
    if (!candidate.feasible) continue;
    const bool onFrontier =
        std::any_of(frontier.begin(), frontier.end(),
                    [&](const EvaluatedCandidate& f) {
                      return f.label == candidate.label;
                    });
    if (onFrontier) continue;
    const bool dominated = std::any_of(
        frontier.begin(), frontier.end(), [&](const EvaluatedCandidate& f) {
          return f.outlays <= candidate.outlays &&
                 f.worstRecoveryTime <= candidate.worstRecoveryTime &&
                 f.worstDataLoss <= candidate.worstDataLoss;
        });
    EXPECT_TRUE(dominated) << candidate.label;
  }

  // Sorted by outlays.
  for (size_t i = 1; i < frontier.size(); ++i) {
    EXPECT_LE(frontier[i - 1].outlays.usd(), frontier[i].outlays.usd());
  }
}

TEST(Pareto, EmptyAndInfeasibleInputs) {
  EXPECT_TRUE(paretoFrontier({}).empty());
  EvaluatedCandidate infeasible;
  infeasible.feasible = false;
  EXPECT_TRUE(paretoFrontier({infeasible}).empty());
}

TEST(Refine, NeighborsAreValidOneKnobMoves) {
  CandidateSpec spec;
  spec.pit = PitChoice::kSplitMirror;
  spec.pitAccW = hours(12);
  spec.pitRetentionCount = 4;
  spec.backup = BackupChoice::kFullOnly;
  spec.backupAccW = weeks(1);
  spec.vault = true;
  spec.vaultAccW = weeks(4);
  spec.mirror = MirrorChoice::kAsyncBatch;
  spec.mirrorLinkCount = 2;
  const auto moves = neighbors(spec);
  EXPECT_GE(moves.size(), 8u);
  for (const CandidateSpec& next : moves) {
    EXPECT_TRUE(next.valid()) << next.label();
  }
  // Link count 1 prunes the -1 move.
  spec.mirrorLinkCount = 1;
  for (const CandidateSpec& next : neighbors(spec)) {
    EXPECT_GE(next.mirrorLinkCount, 1);
  }
}

TEST(Refine, NeverWorsensAndConverges) {
  CandidateSpec start;
  start.pit = PitChoice::kSnapshot;
  start.pitAccW = hours(24);
  start.pitRetentionCount = 4;
  start.mirror = MirrorChoice::kAsyncBatch;
  start.mirrorLinkCount = 10;  // deliberately over-provisioned
  ASSERT_TRUE(start.valid());

  const RefineResult result =
      refineCandidate(start, cs::celloWorkload(), cs::requirements(),
                      caseStudyScenarios());
  ASSERT_TRUE(result.best.feasible);
  EXPECT_GE(result.improvement.usd(), 0.0);
  // Ten links of OC-3 rent dwarf their penalty savings here: refinement
  // must shed most of them.
  EXPECT_LT(result.best.spec.mirrorLinkCount, 10);
  EXPECT_GT(result.improvement.millionUsd(), 1.0);
  EXPECT_GT(result.steps, 0);
  EXPECT_GT(result.evaluations, result.steps);
}

TEST(Refine, ImprovesTheGridWinner) {
  // The grid's best candidate sits on grid points; the refiner can tune
  // off-grid and must never come back worse.
  const SearchResult grid = searchDesignSpace(
      enumerateDesignSpace(), cs::celloWorkload(), cs::requirements(),
      caseStudyScenarios());
  ASSERT_NE(grid.best(), nullptr);
  const RefineResult refined =
      refineCandidate(grid.best()->spec, cs::celloWorkload(),
                      cs::requirements(), caseStudyScenarios());
  EXPECT_LE(refined.best.totalCost.usd(), grid.best()->totalCost.usd());
}

TEST(Refine, InfeasibleStartReturnsUnrefined) {
  CandidateSpec start;
  start.mirror = MirrorChoice::kAsyncBatch;  // cannot serve the rollback
  const RefineResult result =
      refineCandidate(start, cs::celloWorkload(), cs::requirements(),
                      caseStudyScenarios());
  EXPECT_FALSE(result.best.feasible);
  EXPECT_EQ(result.steps, 0);
  EXPECT_DOUBLE_EQ(result.improvement.usd(), 0.0);
}

TEST(ChoiceNames, Render) {
  EXPECT_EQ(toString(PitChoice::kSnapshot), "snapshot");
  EXPECT_EQ(toString(BackupChoice::kFullPlusIncremental), "full+incr");
  EXPECT_EQ(toString(MirrorChoice::kAsyncBatch), "asyncB-mirror");
}

}  // namespace
}  // namespace stordep::optimizer
