// Tests for the service's HTTP/1.1 push parser: table-driven torn-read
// coverage (every message re-parsed at every byte split), limit enforcement
// (431/413/400/501/505 with the right statuses), pipelining (feed() stops
// at message end), malformed chunked bodies, and the response parser the
// blocking client uses.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "service/http.hpp"

namespace stordep::service {
namespace {

/// Parses `wire` in one feed; expects completion and returns the request.
HttpRequest parseOne(const std::string& wire, HttpLimits limits = {}) {
  HttpRequestParser parser(limits);
  const std::size_t used = parser.feed(wire);
  EXPECT_EQ(parser.status(), ParseStatus::kComplete) << wire;
  EXPECT_EQ(used, wire.size());
  return parser.request();
}

/// Expects `wire` to fail with `status`.
void expectError(const std::string& wire, int status,
                 HttpLimits limits = {}) {
  HttpRequestParser parser(limits);
  parser.feed(wire);
  ASSERT_EQ(parser.status(), ParseStatus::kError) << wire;
  EXPECT_EQ(parser.error().status, status) << parser.error().message;
}

// ---- Basic messages --------------------------------------------------------

TEST(HttpParser, SimpleGet) {
  const HttpRequest request =
      parseOne("GET /healthz HTTP/1.1\r\nHost: x\r\n\r\n");
  EXPECT_EQ(request.method, "GET");
  EXPECT_EQ(request.target, "/healthz");
  EXPECT_EQ(request.versionMinor, 1);
  EXPECT_EQ(request.body, "");
  EXPECT_TRUE(request.keepAlive());
}

TEST(HttpParser, PostWithContentLength) {
  const HttpRequest request = parseOne(
      "POST /v1/evaluate HTTP/1.1\r\nHost: x\r\n"
      "Content-Length: 11\r\n\r\nhello world");
  EXPECT_EQ(request.method, "POST");
  EXPECT_EQ(request.body, "hello world");
  EXPECT_FALSE(request.chunked);
}

TEST(HttpParser, PathStripsQueryString) {
  const HttpRequest request =
      parseOne("GET /metrics?format=json HTTP/1.1\r\n\r\n");
  EXPECT_EQ(request.path(), "/metrics");
  EXPECT_EQ(request.target, "/metrics?format=json");
}

TEST(HttpParser, HeaderLookupIsCaseInsensitiveFirstWins) {
  const HttpRequest request = parseOne(
      "GET / HTTP/1.1\r\nX-Deadline-Ms: 250\r\nx-deadline-ms: 9\r\n\r\n");
  ASSERT_NE(request.header("X-DEADLINE-MS"), nullptr);
  EXPECT_EQ(*request.header("x-deadline-ms"), "250");
  EXPECT_EQ(request.header("absent"), nullptr);
}

TEST(HttpParser, ConnectionSemantics) {
  EXPECT_TRUE(parseOne("GET / HTTP/1.1\r\n\r\n").keepAlive());
  EXPECT_FALSE(
      parseOne("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").keepAlive());
  EXPECT_FALSE(parseOne("GET / HTTP/1.0\r\n\r\n").keepAlive());
  EXPECT_TRUE(parseOne("GET / HTTP/1.0\r\nConnection: keep-alive\r\n\r\n")
                  .keepAlive());
}

TEST(HttpParser, BareLfLineEndingsTolerated) {
  const HttpRequest request =
      parseOne("POST /x HTTP/1.1\nContent-Length: 2\n\nok");
  EXPECT_EQ(request.body, "ok");
}

// ---- Torn reads: every split of every table message ------------------------

TEST(HttpParser, TornReadsAtEveryByteBoundary) {
  const std::vector<std::string> wires = {
      "GET /healthz HTTP/1.1\r\nHost: a\r\n\r\n",
      "POST /v1/evaluate HTTP/1.1\r\nContent-Length: 5\r\n\r\nabcde",
      "POST /v1/evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4\r\nWiki\r\n5\r\npedia\r\n0\r\n\r\n",
      "GET /metrics?a=1 HTTP/1.0\r\nConnection: keep-alive\r\n"
      "X-Deadline-Ms: 40\r\n\r\n",
  };
  for (const std::string& wire : wires) {
    const HttpRequest whole = parseOne(wire);
    for (std::size_t split = 0; split <= wire.size(); ++split) {
      HttpRequestParser parser;
      std::size_t used = parser.feed(wire.substr(0, split));
      used += parser.feed(wire.substr(used));
      ASSERT_EQ(parser.status(), ParseStatus::kComplete)
          << "split at " << split << " of: " << wire;
      EXPECT_EQ(used, wire.size());
      const HttpRequest& torn = parser.request();
      EXPECT_EQ(torn.method, whole.method);
      EXPECT_EQ(torn.target, whole.target);
      EXPECT_EQ(torn.headers, whole.headers);
      EXPECT_EQ(torn.body, whole.body);
    }
  }
}

TEST(HttpParser, ByteAtATime) {
  const std::string wire =
      "POST /v1/evaluate HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\n\r\n";
  HttpRequestParser parser;
  for (const char byte : wire) {
    ASSERT_NE(parser.status(), ParseStatus::kError);
    parser.feed(std::string_view(&byte, 1));
  }
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.request().body, "abc");
}

// ---- Pipelining ------------------------------------------------------------

TEST(HttpParser, FeedStopsAtMessageEnd) {
  const std::string first = "GET /a HTTP/1.1\r\n\r\n";
  const std::string second =
      "POST /b HTTP/1.1\r\nContent-Length: 2\r\n\r\nhi";
  const std::string wire = first + second;

  HttpRequestParser parser;
  const std::size_t used = parser.feed(wire);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(used, first.size());  // pipelined bytes stay with the caller
  EXPECT_EQ(parser.request().target, "/a");

  parser.reset();
  EXPECT_TRUE(parser.idle());
  const std::size_t used2 = parser.feed(std::string_view(wire).substr(used));
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(used2, second.size());
  EXPECT_EQ(parser.request().target, "/b");
  EXPECT_EQ(parser.request().body, "hi");
}

TEST(HttpParser, IdleOnlyBeforeFirstByte) {
  HttpRequestParser parser;
  EXPECT_TRUE(parser.idle());
  parser.feed("G");
  EXPECT_FALSE(parser.idle());
}

// ---- Limits ----------------------------------------------------------------

TEST(HttpParser, OversizedRequestLineIs431) {
  HttpLimits limits;
  limits.maxRequestLineBytes = 64;
  expectError("GET /" + std::string(200, 'a') + " HTTP/1.1\r\n\r\n", 431,
              limits);
}

TEST(HttpParser, OversizedHeaderBlockIs431) {
  HttpLimits limits;
  limits.maxHeaderBytes = 128;
  std::string wire = "GET / HTTP/1.1\r\n";
  for (int i = 0; i < 16; ++i) {
    wire += "X-Pad-" + std::to_string(i) + ": " + std::string(32, 'x') +
            "\r\n";
  }
  wire += "\r\n";
  expectError(wire, 431, limits);
}

TEST(HttpParser, OversizedBodyIs413) {
  HttpLimits limits;
  limits.maxBodyBytes = 8;
  expectError("POST / HTTP/1.1\r\nContent-Length: 9\r\n\r\n123456789", 413,
              limits);
  // Chunked bodies hit the same limit as decoded bytes accumulate.
  expectError(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "9\r\n123456789\r\n0\r\n\r\n",
      413, limits);
}

// ---- Malformed messages ----------------------------------------------------

TEST(HttpParser, MalformedRequestLines) {
  expectError("GET\r\n\r\n", 400);
  expectError("GET /\r\n\r\n", 400);              // missing version
  expectError("GET / HTTP/2.0\r\n\r\n", 505);     // unsupported major
  expectError("GET / HTTP/1.7\r\n\r\n", 505);     // unsupported minor
  expectError("GET / FTP/1.1\r\n\r\n", 400);
}

TEST(HttpParser, MalformedHeaders) {
  expectError("GET / HTTP/1.1\r\nNoColonHere\r\n\r\n", 400);
  expectError("GET / HTTP/1.1\r\nBad Name: x\r\n\r\n", 400);
  expectError("GET / HTTP/1.1\r\nA: 1\r\n folded\r\n\r\n", 400);  // obs-fold
  expectError("GET / HTTP/1.1\r\nContent-Length: 12x\r\n\r\n", 400);
  expectError("GET / HTTP/1.1\r\nContent-Length: -1\r\n\r\n", 400);
  // Conflicting framing must be rejected (request-smuggling vector).
  expectError(
      "POST / HTTP/1.1\r\nContent-Length: 3\r\n"
      "Transfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
      400);
}

TEST(HttpParser, UnsupportedTransferEncodingIs501) {
  expectError("POST / HTTP/1.1\r\nTransfer-Encoding: gzip\r\n\r\n", 501);
}

TEST(HttpParser, MalformedChunkedBodies) {
  const std::string head =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  expectError(head + "zz\r\nab\r\n0\r\n\r\n", 400);   // non-hex size
  expectError(head + "\r\nab\r\n0\r\n\r\n", 400);     // empty size line
  expectError(head + "2\r\nabX\r\n0\r\n\r\n", 400);   // missing chunk CRLF
  expectError(head + "fffffffffffffffff\r\n", 400);   // size overflow
}

TEST(HttpParser, ChunkedWithExtensionsAndTrailers) {
  const HttpRequest request = parseOne(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "4;name=value\r\nWiki\r\n0\r\nTrailer: ignored\r\n\r\n");
  EXPECT_EQ(request.body, "Wiki");
  EXPECT_TRUE(request.chunked);
}

// ---- Serialization ---------------------------------------------------------

TEST(HttpSerialize, ResponseRoundTrip) {
  HttpResponse response;
  response.status = 429;
  response.headers.emplace_back("Retry-After", "1");
  response.body = "{\"error\":{}}";
  const std::string wire = serializeResponse(response, true);
  EXPECT_NE(wire.find("HTTP/1.1 429 Too Many Requests\r\n"),
            std::string::npos);
  EXPECT_NE(wire.find("Content-Length: 12\r\n"), std::string::npos);

  HttpResponseParser parser;
  EXPECT_EQ(parser.feed(wire), wire.size());
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.response().status, 429);
  EXPECT_EQ(parser.response().body, response.body);
  EXPECT_TRUE(parser.response().keepAlive());
}

TEST(HttpSerialize, CloseAddsConnectionClose) {
  HttpResponse response;
  const std::string wire = serializeResponse(response, false);
  EXPECT_NE(wire.find("Connection: close\r\n"), std::string::npos);
}

TEST(HttpSerialize, ChunkedStreamRoundTrip) {
  HttpHeaders headers;
  headers.emplace_back("Content-Type", "application/x-ndjson");
  std::string wire = serializeChunkedHead(200, headers);
  wire += encodeChunk("line one\n");
  wire += encodeChunk("");  // no-op, never the terminator
  wire += encodeChunk("line two\n");
  wire += std::string(kLastChunk);

  HttpResponseParser parser;
  parser.feed(wire);
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.response().body, "line one\nline two\n");
  EXPECT_TRUE(parser.response().chunked);
  EXPECT_FALSE(parser.response().keepAlive());  // streams end the connection
}

TEST(HttpResponseParserTest, NoBodyStatusesComplete) {
  HttpResponseParser parser;
  parser.feed("HTTP/1.1 204 No Content\r\n\r\n");
  ASSERT_EQ(parser.status(), ParseStatus::kComplete);
  EXPECT_EQ(parser.response().body, "");
}

TEST(HttpResponseParserTest, TornChunkedResponse) {
  const std::string wire =
      "HTTP/1.1 200 OK\r\nTransfer-Encoding: chunked\r\n\r\n"
      "6\r\nabcdef\r\n0\r\n\r\n";
  for (std::size_t split = 0; split <= wire.size(); ++split) {
    HttpResponseParser parser;
    std::size_t used = parser.feed(wire.substr(0, split));
    used += parser.feed(wire.substr(used));
    ASSERT_EQ(parser.status(), ParseStatus::kComplete) << split;
    EXPECT_EQ(parser.response().body, "abcdef");
  }
}

}  // namespace
}  // namespace stordep::service
