// Tests for the RP-lifecycle simulator and failure injector: the simulated
// data-loss distribution must respect (and approach) the analytic worst-case
// bound from the core models — the paper's future-work validation, executed.
#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "sim/failure_injector.hpp"
#include "sim/rp_simulator.hpp"

namespace stordep::sim {
namespace {

namespace cs = casestudy;

RpSimOptions shortOptions(Duration horizon) {
  RpSimOptions options;
  options.horizon = horizon;
  return options;
}

TEST(RpSimulator, BuildsTimelinesForEveryLevel) {
  RpLifecycleSimulator sim(cs::baseline(), shortOptions(days(120)));
  sim.run();
  // Split mirrors every 12 h over 120 days ~ 240 RPs.
  EXPECT_NEAR(static_cast<double>(sim.timeline(1).size()), 240, 3);
  // Weekly backups ~ 17.
  EXPECT_NEAR(static_cast<double>(sim.timeline(2).size()), 17, 2);
  // 4-weekly vault shipments ~ 4 (minus warm-up skips).
  EXPECT_GE(sim.timeline(3).size(), 2u);
  EXPECT_LE(sim.timeline(3).size(), 5u);
  EXPECT_GT(sim.eventsProcessed(), 200u);
}

TEST(RpSimulator, SplitMirrorRpsTrackThePrimary) {
  RpLifecycleSimulator sim(cs::baseline(), shortOptions(days(30)));
  sim.run();
  for (const SimRp& rp : sim.timeline(1)) {
    EXPECT_DOUBLE_EQ(rp.dataTime, rp.createTime);  // captures live data
    EXPECT_DOUBLE_EQ(rp.arrivalTime, rp.createTime);  // no hold/prop
    // Retired after retCnt cycles: 4 x 12 h.
    EXPECT_DOUBLE_EQ(rp.evictTime - rp.arrivalTime, hours(48).secs());
  }
}

TEST(RpSimulator, BackupRpsInheritAlignedMirrorAges) {
  RpLifecycleSimulator sim(cs::baseline(), shortOptions(days(60)));
  sim.run();
  for (const SimRp& rp : sim.timeline(2)) {
    // Backup captures the (fresh, aligned) upstream state and becomes
    // visible 49 h later.
    EXPECT_DOUBLE_EQ(rp.arrivalTime - rp.createTime, hours(49).secs());
    EXPECT_DOUBLE_EQ(rp.dataTime, rp.createTime);
  }
}

TEST(RpSimulator, VaultRpsCompoundTheBackupTransit) {
  RpLifecycleSimulator sim(cs::baseline(), shortOptions(days(120)));
  sim.run();
  ASSERT_GE(sim.timeline(3).size(), 1u);
  for (const SimRp& rp : sim.timeline(3)) {
    // A vaulted RP is a backup whose data predates the vault-creation
    // instant by the backup transit (49 h).
    EXPECT_DOUBLE_EQ(rp.createTime - rp.dataTime, hours(49).secs());
    // Visible after the vault hold (4 wk + 12 h) plus shipping (24 h).
    EXPECT_DOUBLE_EQ(rp.arrivalTime - rp.createTime,
                     (weeks(4) + hours(12) + hours(24)).secs());
  }
}

TEST(RpSimulator, ObservedLossNeverExceedsAnalyticBound) {
  const StorageDesign design = cs::baseline();
  RpLifecycleSimulator sim(design, shortOptions(days(200)));
  sim.run();
  FailureInjector injector(sim, Rng(1234));

  for (const auto& [name, scenario] :
       std::vector<std::pair<std::string, FailureScenario>>{
           {"object", cs::objectFailure()},
           {"array", cs::arrayFailure()},
           {"site", cs::siteDisaster()}}) {
    const ValidationStats stats = injector.validateDataLoss(scenario, 2000);
    EXPECT_TRUE(stats.boundHolds) << name << ": max observed "
                                  << toString(stats.maxObserved)
                                  << " vs analytic "
                                  << toString(stats.analyticWorstCase);
    EXPECT_EQ(stats.unrecoverable, 0) << name;
  }
}

TEST(RpSimulator, BoundIsTightUnderDenseSweep) {
  const StorageDesign design = cs::baseline();
  RpLifecycleSimulator sim(design, shortOptions(days(200)));
  sim.run();
  FailureInjector injector(sim, Rng(99));

  // The worst case occurs just before an RP arrival; a dense sweep should
  // observe at least ~95% of the analytic bound for the array scenario.
  const ValidationStats stats =
      injector.sweepDataLoss(cs::arrayFailure(), 20'000);
  EXPECT_TRUE(stats.boundHolds);
  EXPECT_GT(stats.tightness, 0.95)
      << "max observed " << toString(stats.maxObserved) << " vs analytic "
      << toString(stats.analyticWorstCase);
  // And the mean sits well below the worst case (the bound is worst-case,
  // not typical-case).
  EXPECT_LT(stats.meanObserved, stats.analyticWorstCase);
}

TEST(RpSimulator, MisalignedSchedulesCanExceedTheBound) {
  // The paper's lag formula implicitly assumes each level's creation grid
  // is aligned with upstream arrivals. With an adversarial phase shift, the
  // backup captures *stale* mirror images and the observed loss exceeds the
  // aligned-case bound — this documents the model's assumption.
  const StorageDesign design = cs::baseline();
  RpSimOptions options;
  options.horizon = days(200);
  options.alignSchedules = false;
  // Level 2 (backup) fires just before the fresh upstream state would have
  // been captured under alignment.
  options.phases = {Duration::zero(), Duration::zero(), hours(166),
                    hours(400)};
  RpLifecycleSimulator sim(design, options);
  sim.run();
  FailureInjector injector(sim, Rng(7));
  const ValidationStats stats =
      injector.sweepDataLoss(cs::arrayFailure(), 5000);
  // Loss still bounded by bound + upstream accW, but exceeds the bound.
  EXPECT_FALSE(stats.boundHolds);
  EXPECT_LE(stats.maxObserved.secs(),
            (stats.analyticWorstCase + hours(12)).secs() * 1.001);
}

TEST(RpSimulator, ConservativeLagBoundsTheCyclicSchedule) {
  // The paper's formula (73 h) is exceeded by the F+I schedule's weekend
  // gap; the conservative bound (85 h) is both safe and tight.
  const StorageDesign design = cs::weeklyVaultFullPlusIncremental();
  RpLifecycleSimulator sim(design, shortOptions(days(250)));
  sim.run();
  FailureInjector injector(sim, Rng(11));
  const ValidationStats stats =
      injector.sweepDataLoss(cs::arrayFailure(), 20'000);
  const Duration paperBound = rpTimeLag(design, 2);
  const Duration conservative = rpTimeLagConservative(design, 2);
  EXPECT_GT(stats.maxObserved, paperBound);  // the paper's bound is broken
  EXPECT_LE(stats.maxObserved.secs(),
            conservative.secs() * (1 + 1e-9));  // ours holds
  EXPECT_GT(stats.maxObserved.secs(), conservative.secs() * 0.97);  // tight
}

TEST(RpSimulator, AsyncBatchMirrorLossIsMinutes) {
  const StorageDesign design = cs::asyncBatchMirror(1);
  RpSimOptions options;
  options.horizon = hours(6);
  RpLifecycleSimulator sim(design, options);
  sim.run();
  FailureInjector injector(sim, Rng(5));
  const ValidationStats stats =
      injector.sweepDataLoss(cs::arrayFailure(), 4000);
  EXPECT_TRUE(stats.boundHolds);
  EXPECT_LE(stats.maxObserved, minutes(2));
  EXPECT_GT(stats.maxObserved, minutes(1.8));  // tight
}

TEST(RpSimulator, RollbackTargetServedBySplitMirror) {
  // The steady-state window must cover the slowest level's warm-up (~88
  // days for the baseline vault), even though this scenario only exercises
  // the split mirror.
  RpLifecycleSimulator sim(cs::baseline(), shortOptions(days(200)));
  sim.run();
  FailureInjector injector(sim, Rng(3));
  const ValidationStats stats =
      injector.sweepDataLoss(cs::objectFailure(), 4000);
  EXPECT_TRUE(stats.boundHolds);
  // Analytic: accW = 12 h; the sweep should come close.
  EXPECT_EQ(stats.analyticWorstCase, hours(12));
  EXPECT_GT(stats.tightness, 0.95);
}

TEST(RpSimulator, UnrecoverableTargetDetected) {
  RpLifecycleSimulator sim(cs::asyncBatchMirror(1), shortOptions(hours(6)));
  sim.run();
  FailureInjector injector(sim, Rng(21));
  // A 24 h rollback cannot be served by a 1-minute mirror.
  const ValidationStats stats =
      injector.validateDataLoss(cs::objectFailure(), 200);
  EXPECT_EQ(stats.unrecoverable, stats.samples);
  EXPECT_TRUE(stats.boundHolds);  // both sides agree: hopeless
}

TEST(RpSimulator, QueriesRequireRun) {
  RpLifecycleSimulator sim(cs::baseline(), shortOptions(days(30)));
  EXPECT_THROW((void)sim.observedDataLoss(cs::arrayFailure(), 1000.0),
               SimulationError);
}

TEST(RpSimulator, HorizonTooShortForSteadyState) {
  RpLifecycleSimulator sim(cs::baseline(), shortOptions(days(2)));
  sim.run();
  FailureInjector injector(sim, Rng(1));
  EXPECT_THROW((void)injector.validateDataLoss(cs::arrayFailure(), 10),
               SimulationError);
}

TEST(RpSimulator, EventBudgetEnforced) {
  RpSimOptions options;
  options.horizon = days(30);
  options.maxEvents = 50;
  RpLifecycleSimulator sim(cs::baseline(), options);
  EXPECT_THROW(sim.run(), SimulationError);
}

}  // namespace
}  // namespace stordep::sim
