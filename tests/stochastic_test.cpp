// Tests for the Monte-Carlo layer: P² sketches, substream determinism, the
// conditional and mission-window samplers, cancellation, the reliability
// config block, and the ExpectedPenalty search objective.
#include "stochastic/evaluator.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>
#include <string>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "core/data_loss.hpp"
#include "core/reliability.hpp"
#include "optimizer/search.hpp"
#include "sim/rng.hpp"
#include "stochastic/quantile.hpp"

namespace stordep::stochastic {
namespace {

namespace cs = casestudy;

// ---- P² quantile sketches --------------------------------------------------

TEST(P2Quantile, ExactBelowFiveObservations) {
  P2Quantile q(0.5);
  q.add(3.0);
  q.add(1.0);
  q.add(2.0);
  EXPECT_DOUBLE_EQ(q.value(), 2.0);
}

TEST(P2Quantile, TracksUniform) {
  sim::Rng rng(1);
  DistributionAccumulator acc(20'000);
  for (int i = 0; i < 20'000; ++i) acc.add(rng.uniform());
  const Distribution d = acc.finalize();
  EXPECT_EQ(d.count, 20'000u);
  EXPECT_GE(d.min, 0.0);
  EXPECT_LT(d.max, 1.0);
  EXPECT_NEAR(d.mean, 0.5, 0.01);
  EXPECT_GT(d.ci95, 0.0);
  EXPECT_NEAR(d.p50, 0.50, 0.02);
  EXPECT_NEAR(d.p95, 0.95, 0.02);
  EXPECT_NEAR(d.p99, 0.99, 0.01);
}

TEST(P2Quantile, TracksExponential) {
  sim::Rng rng(2);
  DistributionAccumulator acc(20'000);
  for (int i = 0; i < 20'000; ++i) acc.add(rng.exponential(2.0));
  const Distribution d = acc.finalize();
  EXPECT_NEAR(d.mean, 2.0, 0.1);
  EXPECT_NEAR(d.p50, 2.0 * std::log(2.0), 0.1);           // 1.386
  EXPECT_NEAR(d.p95, -2.0 * std::log(0.05), 0.3);         // 5.991
  EXPECT_LE(d.p50, d.p95);
  EXPECT_LE(d.p95, d.p99);
  EXPECT_LE(d.p99, d.max);
}

// ---- Substream determinism -------------------------------------------------

TEST(Rng, SubstreamSeedsAreDistinct) {
  std::set<std::uint64_t> seeds;
  for (std::uint64_t i = 0; i < 1000; ++i) {
    seeds.insert(sim::Rng::substreamSeed(42, i));
  }
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(Rng, SplitIsIndependentOfDrawHistory) {
  sim::Rng a(7);
  sim::Rng b(7);
  for (int i = 0; i < 100; ++i) (void)b.next();  // advance b only
  sim::Rng sa = a.split(3);
  sim::Rng sb = b.split(3);
  for (int i = 0; i < 16; ++i) EXPECT_EQ(sa.next(), sb.next());
}

// ---- Conditional distributions (migrated from RecoverySimulator) -----------

StochasticOptions optionsWith(Duration horizon, int trials,
                              std::uint64_t seed = 5) {
  StochasticOptions opts;
  opts.trials = trials;
  opts.seed = seed;
  opts.threads = 1;
  opts.sim.horizon = horizon;
  return opts;
}

TEST(StochasticEvaluator, FullOnlyPayloadIsConstant) {
  const StochasticEvaluator eval(cs::baseline(),
                                 optionsWith(days(200), 500));
  const auto outcome = eval.distributionFor(cs::arrayFailure());
  ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
  const ScenarioDistribution& dist = outcome.value();
  EXPECT_EQ(dist.trials, 500);
  EXPECT_EQ(dist.unrecoverable, 0);
  // Weekly fulls restore exactly one full image at every instant.
  EXPECT_EQ(dist.minPayload, gigabytes(1360));
  EXPECT_EQ(dist.maxPayload, gigabytes(1360));
  EXPECT_TRUE(dist.rtBoundHolds);
  EXPECT_TRUE(dist.dlBoundHolds);
  EXPECT_NEAR(dist.rtTightness, 1.0, 1e-6);
  EXPECT_NEAR(dist.rt.min, dist.rt.max, 1.0);
  EXPECT_LT(dist.expectedPenalty, dist.worstCasePenalty);
}

TEST(StochasticEvaluator, IncrementalPayloadVariesAcrossTheCycle) {
  const StochasticEvaluator eval(cs::weeklyVaultFullPlusIncremental(),
                                 optionsWith(days(200), 2000, 7));
  const auto outcome = eval.distributionFor(cs::arrayFailure());
  ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
  const ScenarioDistribution& dist = outcome.value();
  EXPECT_EQ(dist.unrecoverable, 0);
  // The lightest restore is never the bare 1360 GB full: the day-1
  // incremental lands before its base full finishes propagating, so every
  // instant replays at least one increment.
  EXPECT_NEAR(dist.minPayload.gigabytes(), 1386.1, 1.0);
  EXPECT_GT(dist.maxPayload.gigabytes(), 1360.0 + 80.0);
  EXPECT_LT(dist.maxPayload.gigabytes(), 1360.0 + 135.0);
  EXPECT_TRUE(dist.rtBoundHolds);
  EXPECT_GT(dist.rtTightness, 0.9);
  EXPECT_LT(dist.rt.min, dist.rt.max);
  EXPECT_LT(dist.rt.mean, dist.rt.max);
}

TEST(StochasticEvaluator, UnrecoverableTrialsCounted) {
  const StochasticEvaluator eval(cs::asyncBatchMirror(1),
                                 optionsWith(hours(6), 100));
  const auto outcome = eval.distributionFor(cs::objectFailure());
  ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
  const ScenarioDistribution& dist = outcome.value();
  // A 24 h rollback has no serving level in a mirror-only design at any
  // instant; with zero recoverable trials the expectation is infinite.
  EXPECT_EQ(dist.unrecoverable, 100);
  EXPECT_EQ(dist.penalty.count, 0u);
  EXPECT_FALSE(dist.expectedPenalty.isFinite());
  EXPECT_TRUE(dist.rtBoundHolds);  // vacuously
}

TEST(StochasticEvaluator, SiteDisasterDistributionBounded) {
  const StochasticEvaluator eval(cs::baseline(),
                                 optionsWith(days(250), 500, 13));
  const auto outcome = eval.distributionFor(cs::siteDisaster());
  ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
  const ScenarioDistribution& dist = outcome.value();
  EXPECT_EQ(dist.unrecoverable, 0);
  EXPECT_TRUE(dist.rtBoundHolds);
  // Site recovery is dominated by the vault round-trip: ~26 h at every
  // sampled instant.
  EXPECT_GT(dist.rt.min, hours(25).secs());
  EXPECT_LT(dist.rt.max, hours(27).secs());
}

TEST(StochasticEvaluator, SampledMeanLossMatchesAnalyticExpectation) {
  const StorageDesign design = cs::baseline();
  const StochasticEvaluator eval(design, optionsWith(days(250), 5000));
  const auto outcome = eval.distributionFor(cs::arrayFailure());
  ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
  const auto source = chooseRecoverySource(design, cs::arrayFailure());
  ASSERT_TRUE(source.has_value());
  const Duration analytic =
      expectedDataLoss(design, source->level, cs::arrayFailure());
  EXPECT_NEAR(outcome.value().dl.mean, analytic.secs(),
              0.05 * analytic.secs());
}

TEST(StochasticEvaluator, RejectsNonPositiveTrialCounts) {
  const StochasticEvaluator eval(cs::baseline(), optionsWith(days(200), 0));
  const auto outcome = eval.distributionFor(cs::arrayFailure());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, engine::EvalErrorCode::kInvalidDesign);
}

// ---- Determinism across thread counts --------------------------------------

void expectIdentical(const Distribution& a, const Distribution& b) {
  EXPECT_EQ(a.count, b.count);
  EXPECT_EQ(a.min, b.min);
  EXPECT_EQ(a.max, b.max);
  EXPECT_EQ(a.mean, b.mean);
  EXPECT_EQ(a.ci95, b.ci95);
  EXPECT_EQ(a.p50, b.p50);
  EXPECT_EQ(a.p95, b.p95);
  EXPECT_EQ(a.p99, b.p99);
}

TEST(StochasticEvaluator, ThreadCountNeverChangesResults) {
  ScenarioDistribution results[2];
  for (int i = 0; i < 2; ++i) {
    StochasticOptions opts = optionsWith(days(200), 10'000, 11);
    opts.threads = i == 0 ? 1 : 8;
    const StochasticEvaluator eval(cs::weeklyVaultFullPlusIncremental(),
                                   opts);
    const auto outcome = eval.distributionFor(cs::arrayFailure());
    ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
    results[i] = outcome.value();
  }
  EXPECT_EQ(results[0].trials, results[1].trials);
  EXPECT_EQ(results[0].unrecoverable, results[1].unrecoverable);
  expectIdentical(results[0].rt, results[1].rt);
  expectIdentical(results[0].dl, results[1].dl);
  expectIdentical(results[0].penalty, results[1].penalty);
  EXPECT_EQ(results[0].minPayload.bytes(), results[1].minPayload.bytes());
  EXPECT_EQ(results[0].meanPayload.bytes(), results[1].meanPayload.bytes());
  EXPECT_EQ(results[0].maxPayload.bytes(), results[1].maxPayload.bytes());
  EXPECT_EQ(results[0].expectedPenalty.usd(), results[1].expectedPenalty.usd());
}

TEST(StochasticEvaluator, MissionSamplingIsThreadCountInvariant) {
  AnnualizedRisk results[2];
  for (int i = 0; i < 2; ++i) {
    StochasticOptions opts = optionsWith(days(200), 2000, 17);
    opts.threads = i == 0 ? 1 : 8;
    opts.reliability.siteShockAnnualRate = 0.2;
    const StochasticEvaluator eval(cs::baseline(), opts);
    const auto outcome = eval.annualizedRisk();
    ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
    results[i] = outcome.value();
  }
  EXPECT_EQ(results[0].eventsPerYear, results[1].eventsPerYear);
  EXPECT_EQ(results[0].unrecoverableTrialFraction,
            results[1].unrecoverableTrialFraction);
  EXPECT_EQ(results[0].expectedAnnualLossBytes.bytes(),
            results[1].expectedAnnualLossBytes.bytes());
  EXPECT_EQ(results[0].expectedAnnualPenalty.usd(),
            results[1].expectedAnnualPenalty.usd());
  EXPECT_EQ(results[0].expectedAnnualDowntimeHours,
            results[1].expectedAnnualDowntimeHours);
  expectIdentical(results[0].eventRt, results[1].eventRt);
  expectIdentical(results[0].eventDl, results[1].eventDl);
  expectIdentical(results[0].annualPenalty, results[1].annualPenalty);
}

// ---- Cancellation ----------------------------------------------------------

TEST(StochasticEvaluator, CancellationSurfacesPartialProgressError) {
  engine::CancellationSource source;
  source.cancel();
  StochasticOptions opts = optionsWith(days(200), 1000);
  opts.token = source.token();
  const StochasticEvaluator eval(cs::baseline(), opts);
  const auto outcome = eval.distributionFor(cs::arrayFailure());
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, engine::EvalErrorCode::kCancelled);
  EXPECT_NE(outcome.error().message.find("cancelled after"),
            std::string::npos);
  EXPECT_NE(outcome.error().message.find("of 1000 trials"),
            std::string::npos);
}

// ---- Mission-window sampling -----------------------------------------------

TEST(StochasticEvaluator, MissionEventRateMatchesClosedForm) {
  const StorageDesign design = cs::baseline();
  // Override every storage device with a memoryless 2-year MTBF and a 1 h
  // fixed repair: each device's failures are then (nearly) Poisson at rate
  // 1/2 per year, so total events/year ~= devices / 2.
  ReliabilitySpec spec;
  for (const auto& [device, processes] : resolveReliability(design, {})) {
    DeviceReliability r;
    r.failure = {ProcessKind::kExponential, years(2), 1.0};
    r.repair = {ProcessKind::kFixed, hours(1), 1.0};
    spec.devices[device->name()] = r;
  }
  const double deviceCount = static_cast<double>(spec.devices.size());
  ASSERT_GT(deviceCount, 0.0);

  StochasticOptions opts = optionsWith(days(200), 4000, 3);
  opts.reliability = spec;
  const StochasticEvaluator eval(design, opts);
  const auto outcome = eval.annualizedRisk();
  ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
  const AnnualizedRisk& risk = outcome.value();
  EXPECT_EQ(risk.trials, 4000);
  EXPECT_EQ(risk.missionWindow, years(1));
  const double expectedRate = deviceCount / 2.0;
  EXPECT_NEAR(risk.eventsPerYear, expectedRate, 0.10 * expectedRate);
  EXPECT_GE(risk.expectedAnnualPenalty.usd(), 0.0);
  EXPECT_GE(risk.expectedAnnualDowntimeHours, 0.0);
}

TEST(StochasticEvaluator, SiteShocksRaiseTheEventRate) {
  const StorageDesign design = cs::baseline();
  // Devices effectively never fail on their own; only shocks remain.
  ReliabilitySpec quiet;
  for (const auto& [device, processes] : resolveReliability(design, {})) {
    DeviceReliability r;
    r.failure = {ProcessKind::kExponential, years(100'000), 1.0};
    r.repair = {ProcessKind::kFixed, hours(1), 1.0};
    quiet.devices[device->name()] = r;
  }

  double rates[2] = {0, 0};
  for (int i = 0; i < 2; ++i) {
    StochasticOptions opts = optionsWith(days(200), 2000, 19);
    opts.reliability = quiet;
    opts.reliability.siteShockAnnualRate = i == 0 ? 0.0 : 0.5;
    const StochasticEvaluator eval(design, opts);
    const auto outcome = eval.annualizedRisk();
    ASSERT_TRUE(outcome.ok()) << outcome.error().describe();
    rates[i] = outcome.value().eventsPerYear;
  }
  EXPECT_NEAR(rates[0], 0.0, 0.01);
  // At least one site draws shocks at 0.5/year.
  EXPECT_GT(rates[1], 0.4);
}

TEST(StochasticEvaluator, MissionRejectsInvalidReliability) {
  {
    StochasticOptions opts = optionsWith(days(200), 100);
    opts.reliability.siteShockAnnualRate = -1.0;
    const StochasticEvaluator eval(cs::baseline(), opts);
    const auto outcome = eval.annualizedRisk();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, engine::EvalErrorCode::kInvalidDesign);
  }
  {
    StochasticOptions opts = optionsWith(days(200), 100);
    opts.reliability.missionWindow = Duration::zero();
    const StochasticEvaluator eval(cs::baseline(), opts);
    const auto outcome = eval.annualizedRisk();
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, engine::EvalErrorCode::kInvalidDesign);
  }
}

// ---- Reliability config block ----------------------------------------------

TEST(ReliabilityConfig, RoundTripsThroughJson) {
  ReliabilitySpec spec;
  spec.missionWindow = years(2);
  spec.siteShockAnnualRate = 0.02;
  DeviceReliability array;
  array.failure = {ProcessKind::kWeibull, years(10), 1.5};
  array.repair = {ProcessKind::kExponential, hours(12), 1.0};
  spec.devices["primary-array"] = array;
  DeviceReliability vault;
  vault.failure = {ProcessKind::kExponential, Duration::infinite(), 1.0};
  vault.repair = {ProcessKind::kFixed, weeks(1), 1.0};
  spec.devices["vault"] = vault;

  const ReliabilitySpec back =
      config::reliabilityFromJson(config::reliabilityToJson(spec));
  EXPECT_EQ(back, spec);
}

TEST(ReliabilityConfig, DesignDocumentWithoutBlockYieldsNullopt) {
  const config::Json doc = config::designToJson(cs::baseline());
  EXPECT_FALSE(config::reliabilityFromDesignJson(doc).has_value());
}

TEST(ReliabilityConfig, ClassDefaultsCoverEveryStorageDevice) {
  const auto resolved = resolveReliability(cs::baseline(), {});
  EXPECT_FALSE(resolved.empty());
  for (const auto& [device, processes] : resolved) {
    EXPECT_FALSE(device->isTransport());
    // Every storage device repairs in finite time out of the box.
    EXPECT_TRUE(processes.repair.mean.isFinite()) << device->name();
  }
}

// ---- ExpectedPenalty search objective --------------------------------------

std::vector<optimizer::CandidateSpec> smallCandidateSet() {
  using optimizer::BackupChoice;
  using optimizer::CandidateSpec;
  using optimizer::PitChoice;
  CandidateSpec fullWeekly;
  fullWeekly.pit = PitChoice::kSnapshot;
  fullWeekly.backup = BackupChoice::kFullOnly;
  fullWeekly.backupAccW = weeks(1);
  fullWeekly.vault = true;
  fullWeekly.vaultAccW = weeks(1);
  CandidateSpec fullDaily;
  fullDaily.pit = PitChoice::kSnapshot;
  fullDaily.backup = BackupChoice::kFullOnly;
  fullDaily.backupAccW = hours(24);
  fullDaily.vault = true;
  fullDaily.vaultAccW = weeks(1);
  CandidateSpec fiWeekly;
  fiWeekly.pit = PitChoice::kSplitMirror;
  fiWeekly.backup = BackupChoice::kFullPlusIncremental;
  fiWeekly.backupAccW = weeks(1);
  fiWeekly.vault = true;
  fiWeekly.vaultAccW = weeks(1);
  return {fullWeekly, fullDaily, fiWeekly};
}

TEST(ExpectedPenaltyObjective, NeverExceedsWorstCasePenalties) {
  const std::vector<optimizer::CandidateSpec> candidates = smallCandidateSet();
  const WorkloadSpec workload = cs::celloWorkload();
  const BusinessRequirements business = cs::requirements();
  const std::vector<optimizer::ScenarioCase> scenarios =
      optimizer::caseStudyScenarios();

  const optimizer::SearchResult worst = optimizer::searchDesignSpace(
      candidates, workload, business, scenarios, optimizer::SearchOptions{});
  optimizer::SearchOptions expectedOpts;
  expectedOpts.objective = optimizer::Objective::kExpectedPenalty;
  expectedOpts.stochasticTrials = 256;
  const optimizer::SearchResult expected = optimizer::searchDesignSpace(
      candidates, workload, business, scenarios, expectedOpts);

  ASSERT_FALSE(worst.ranked.empty());
  ASSERT_EQ(expected.ranked.size(), worst.ranked.size());
  for (const optimizer::EvaluatedCandidate& e : expected.ranked) {
    const auto match =
        std::find_if(worst.ranked.begin(), worst.ranked.end(),
                     [&](const optimizer::EvaluatedCandidate& w) {
                       return w.label == e.label;
                     });
    ASSERT_NE(match, worst.ranked.end()) << e.label;
    // Expected penalties are a relaxation of the worst case (equality when
    // the sampler is inapplicable and the candidate falls back to analytic).
    EXPECT_LE(e.weightedPenalties.usd(),
              match->weightedPenalties.usd() * (1.0 + 1e-6) + 1.0)
        << e.label;
    EXPECT_EQ(e.outlays.usd(), match->outlays.usd()) << e.label;
  }
}

TEST(ExpectedPenaltyObjective, DefaultObjectiveStaysBitIdenticalToSerial) {
  const std::vector<optimizer::CandidateSpec> candidates = smallCandidateSet();
  const WorkloadSpec workload = cs::celloWorkload();
  const BusinessRequirements business = cs::requirements();
  const std::vector<optimizer::ScenarioCase> scenarios =
      optimizer::caseStudyScenarios();

  const optimizer::SearchResult viaOptions = optimizer::searchDesignSpace(
      candidates, workload, business, scenarios, optimizer::SearchOptions{});
  const optimizer::SearchResult serial = optimizer::searchDesignSpaceSerial(
      candidates, workload, business, scenarios);

  ASSERT_EQ(viaOptions.ranked.size(), serial.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(viaOptions.ranked[i].label, serial.ranked[i].label);
    EXPECT_EQ(viaOptions.ranked[i].totalCost.usd(),
              serial.ranked[i].totalCost.usd());
    EXPECT_EQ(viaOptions.ranked[i].weightedPenalties.usd(),
              serial.ranked[i].weightedPenalties.usd());
  }
}

}  // namespace
}  // namespace stordep::stochastic
