// Tests for core/failure: scopes, location matching and named constructors;
// and for core/business: penalties and objectives.
#include "core/business.hpp"
#include "core/failure.hpp"

#include <gtest/gtest.h>

namespace stordep {
namespace {

TEST(Location, DefaultsBuildingAndRegionToSite) {
  const Location loc = Location::at("oakland");
  EXPECT_EQ(loc.site, "oakland");
  EXPECT_EQ(loc.building, "oakland");
  EXPECT_EQ(loc.region, "oakland");
}

TEST(Location, ExplicitBuildingAndRegion) {
  const Location loc = Location::at("oakland", "bldg-3", "west-coast");
  EXPECT_EQ(loc.site, "oakland");
  EXPECT_EQ(loc.building, "bldg-3");
  EXPECT_EQ(loc.region, "west-coast");
}

TEST(FailureScenario, ObjectFailureDestroysNoHardware) {
  const auto s = FailureScenario::objectFailure(hours(24), megabytes(1));
  EXPECT_EQ(s.scope, FailureScope::kDataObject);
  EXPECT_EQ(s.recoveryTargetAge, hours(24));
  ASSERT_TRUE(s.recoverySize.has_value());
  EXPECT_EQ(*s.recoverySize, megabytes(1));
  EXPECT_FALSE(s.destroys("array", Location::at("anywhere")));
}

TEST(FailureScenario, ArrayFailureDestroysOnlyTheNamedDevice) {
  const auto s = FailureScenario::arrayFailure("primary-array");
  EXPECT_TRUE(s.destroys("primary-array", Location::at("site-a")));
  EXPECT_FALSE(s.destroys("tape-library", Location::at("site-a")));
  EXPECT_FALSE(s.destroys("primary-array-2", Location::at("site-a")));
}

TEST(FailureScenario, BuildingFailureMatchesBuilding) {
  const auto s = FailureScenario::buildingFailure("bldg-1");
  EXPECT_TRUE(s.destroys("x", Location::at("site-a", "bldg-1")));
  EXPECT_FALSE(s.destroys("x", Location::at("site-a", "bldg-2")));
}

TEST(FailureScenario, SiteDisasterMatchesWholeSite) {
  const auto s = FailureScenario::siteDisaster("site-a");
  EXPECT_TRUE(s.destroys("array", Location::at("site-a", "bldg-1")));
  EXPECT_TRUE(s.destroys("library", Location::at("site-a", "bldg-2")));
  EXPECT_FALSE(s.destroys("vault", Location::at("site-b")));
}

TEST(FailureScenario, RegionDisasterMatchesRegion) {
  const auto s = FailureScenario::regionDisaster("west");
  EXPECT_TRUE(s.destroys("a", Location::at("site-a", "b1", "west")));
  EXPECT_TRUE(s.destroys("b", Location::at("site-b", "b9", "west")));
  EXPECT_FALSE(s.destroys("c", Location::at("site-c", "b1", "east")));
}

TEST(FailureScope, Names) {
  EXPECT_EQ(toString(FailureScope::kDataObject), "data object");
  EXPECT_EQ(toString(FailureScope::kArray), "array");
  EXPECT_EQ(toString(FailureScope::kBuilding), "building");
  EXPECT_EQ(toString(FailureScope::kSite), "site");
  EXPECT_EQ(toString(FailureScope::kRegion), "region");
}

TEST(BusinessRequirements, PenaltiesScaleWithTime) {
  const BusinessRequirements biz = caseStudyRequirements();
  EXPECT_DOUBLE_EQ(biz.outagePenalty(hours(2.4)).usd(), 120'000.0);
  EXPECT_DOUBLE_EQ(biz.lossPenalty(hours(217)).millionUsd(), 10.85);
  EXPECT_DOUBLE_EQ(biz.outagePenalty(Duration::zero()).usd(), 0.0);
}

TEST(BusinessRequirements, ObjectivesDefaultToAlwaysMet) {
  const BusinessRequirements biz = caseStudyRequirements();
  EXPECT_TRUE(biz.meetsObjectives(hours(1000), hours(1000)));
}

TEST(BusinessRequirements, RtoRpoEnforced) {
  BusinessRequirements biz = caseStudyRequirements();
  biz.rto = hours(4);
  biz.rpo = hours(24);
  EXPECT_TRUE(biz.meetsObjectives(hours(4), hours(24)));
  EXPECT_FALSE(biz.meetsObjectives(hours(4.1), hours(1)));
  EXPECT_FALSE(biz.meetsObjectives(hours(1), hours(25)));
  EXPECT_FALSE(biz.meetsObjectives(Duration::infinite(), Duration::zero()));
}

}  // namespace
}  // namespace stordep
