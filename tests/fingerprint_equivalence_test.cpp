// fingerprint_equivalence_test.cpp — the structural fast path is keyed on
// exactly the canonical JSON's equality classes.
//
// The hot path (engine/fingerprint.cpp) hashes model fields directly; the
// cache-correctness contract is that two objects get the same structural
// fingerprint iff their canonical serializations are byte-identical. These
// tests check that bidirectionally over generated designs/scenarios (via
// verify/gen), probe near-miss collisions, and pin down the pieces built on
// top: fingerprintDesignParts, the streaming design-space cursor, the
// streaming search, and the engine's per-level demand cache.

#include <cstdio>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "engine/batch.hpp"
#include "engine/fingerprint.hpp"
#include "engine/precompute.hpp"
#include "optimizer/design_space.hpp"
#include "optimizer/search.hpp"
#include "verify/gen.hpp"

namespace stordep {
namespace {

using engine::Fingerprint;
using optimizer::CandidateSpec;
using optimizer::DesignSpaceCursor;
using optimizer::DesignSpaceOptions;

constexpr std::uint64_t kRunSeed = 20260806;

struct FpKey {
  std::uint64_t hi, lo;
  friend bool operator<(const FpKey& a, const FpKey& b) {
    return a.hi != b.hi ? a.hi < b.hi : a.lo < b.lo;
  }
};
FpKey keyOf(const Fingerprint& fp) { return FpKey{fp.hi, fp.lo}; }

/// Asserts both directions of the equivalence for one (json, structural)
/// stream of observations: same JSON -> same fingerprint, and same
/// fingerprint -> same JSON.
class EquivalenceChecker {
 public:
  void observe(const std::string& json, const Fingerprint& fp,
               const std::string& what) {
    const auto byJson = jsonToFp_.emplace(json, fp);
    if (!byJson.second) {
      ASSERT_EQ(byJson.first->second, fp)
          << what << ": equal canonical JSON but different structural "
          << "fingerprints\n"
          << json;
    }
    const auto byFp = fpToJson_.emplace(keyOf(fp), json);
    if (!byFp.second) {
      ASSERT_EQ(byFp.first->second, json)
          << what << ": structural fingerprint collision between distinct "
          << "canonical serializations\n"
          << byFp.first->second << "\nvs\n"
          << json;
    }
  }

  [[nodiscard]] std::size_t distinct() const { return jsonToFp_.size(); }

 private:
  std::map<std::string, Fingerprint> jsonToFp_;
  std::map<FpKey, std::string> fpToJson_;
};

TEST(FingerprintEquivalence, DesignsAcrossGeneratedCases) {
  EquivalenceChecker checker;
  int observed = 0;
  for (std::uint64_t i = 0; i < 1200; ++i) {
    const verify::CaseSpec spec = verify::caseForSeed(kRunSeed, i);
    const StorageDesign design = verify::makeDesign(spec);
    checker.observe(engine::canonicalSerialization(design),
                    engine::fingerprintDesign(design),
                    "design case " + std::to_string(i));
    ++observed;
  }
  ASSERT_EQ(observed, 1200);
  // The generator spans real variety; if nearly everything collapsed to a
  // few classes the property above would be vacuous.
  EXPECT_GT(checker.distinct(), 100u);
}

TEST(FingerprintEquivalence, ScenariosAcrossGeneratedCases) {
  EquivalenceChecker checker;
  for (std::uint64_t i = 0; i < 1200; ++i) {
    const verify::CaseSpec spec = verify::caseForSeed(kRunSeed, i);
    const FailureScenario scenario = verify::makeScenario(spec);
    checker.observe(engine::canonicalSerialization(scenario),
                    engine::fingerprintScenario(scenario),
                    "scenario case " + std::to_string(i));
  }
  EXPECT_GT(checker.distinct(), 4u);
}

TEST(FingerprintEquivalence, StructuralMatchesJsonFamilyClasses) {
  // The structural and JSON-based families must induce the same partition
  // even though their bit values differ.
  std::unordered_map<std::uint64_t, Fingerprint> jsonToStructural;
  for (std::uint64_t i = 0; i < 400; ++i) {
    const verify::CaseSpec spec = verify::caseForSeed(kRunSeed + 1, i);
    const StorageDesign design = verify::makeDesign(spec);
    const Fingerprint structural = engine::fingerprintDesign(design);
    const Fingerprint json = engine::fingerprintDesignJson(design);
    const auto ins = jsonToStructural.emplace(json.lo ^ json.hi, structural);
    if (!ins.second) {
      EXPECT_EQ(ins.first->second, structural);
    }
  }
}

TEST(FingerprintEquivalence, EqualJsonFromDifferentObjects) {
  // scenarioToJson omits recoveryTargetAge unless it is strictly positive:
  // zero and negative ages serialize identically, so they must fingerprint
  // identically too.
  FailureScenario zero = FailureScenario::arrayFailure("primary-array");
  FailureScenario negative = zero;
  negative.recoveryTargetAge = hours(-5);
  ASSERT_EQ(engine::canonicalSerialization(zero),
            engine::canonicalSerialization(negative));
  EXPECT_EQ(engine::fingerprintScenario(zero),
            engine::fingerprintScenario(negative));

  // A NaN age fails the > 0 comparison and is likewise omitted.
  FailureScenario nanAge = zero;
  nanAge.recoveryTargetAge = Duration{std::nan("")};
  ASSERT_EQ(engine::canonicalSerialization(zero),
            engine::canonicalSerialization(nanAge));
  EXPECT_EQ(engine::fingerprintScenario(zero),
            engine::fingerprintScenario(nanAge));

  // An infinite age IS written (as JSON null) — distinct from omission.
  FailureScenario infAge = zero;
  infAge.recoveryTargetAge = Duration::infinite();
  ASSERT_NE(engine::canonicalSerialization(zero),
            engine::canonicalSerialization(infAge));
  EXPECT_NE(engine::fingerprintScenario(zero),
            engine::fingerprintScenario(infAge));
}

TEST(FingerprintEquivalence, NearMissScenariosStayDistinct) {
  std::vector<FailureScenario> scenarios;
  scenarios.push_back(FailureScenario::arrayFailure("primary-array"));
  scenarios.push_back(FailureScenario::arrayFailure("primary-arraz"));
  scenarios.push_back(FailureScenario::arrayFailure("primary-arra"));
  scenarios.push_back(FailureScenario::buildingFailure("primary-array"));
  scenarios.push_back(FailureScenario::siteDisaster("primary-array"));
  FailureScenario aged = FailureScenario::arrayFailure("primary-array");
  aged.recoveryTargetAge = hours(24);
  scenarios.push_back(aged);
  FailureScenario agedOff = aged;
  agedOff.recoveryTargetAge = hours(24) + Duration{1.0};
  scenarios.push_back(agedOff);
  FailureScenario sized = FailureScenario::arrayFailure("primary-array");
  sized.recoverySize = Bytes{1 << 20};
  scenarios.push_back(sized);

  for (std::size_t a = 0; a < scenarios.size(); ++a) {
    for (std::size_t b = a + 1; b < scenarios.size(); ++b) {
      ASSERT_NE(engine::canonicalSerialization(scenarios[a]),
                engine::canonicalSerialization(scenarios[b]));
      EXPECT_NE(engine::fingerprintScenario(scenarios[a]),
                engine::fingerprintScenario(scenarios[b]))
          << "near-miss collision between scenarios " << a << " and " << b;
    }
  }
}

TEST(FingerprintEquivalence, NearMissDesignsStayDistinct) {
  // One-axis-apart candidates over the default grid: every pair of designs
  // with distinct serializations must keep distinct fingerprints.
  const WorkloadSpec workload = casestudy::celloWorkload();
  const BusinessRequirements business = casestudy::requirements();
  EquivalenceChecker checker;
  int built = 0;
  for (const CandidateSpec& spec : optimizer::enumerateDesignSpace()) {
    const StorageDesign design = spec.build(workload, business);
    checker.observe(engine::canonicalSerialization(design),
                    engine::fingerprintDesign(design), spec.label());
    ++built;
  }
  EXPECT_GT(built, 100);
  EXPECT_EQ(checker.distinct(), static_cast<std::size_t>(built));
}

TEST(FingerprintParts, AgreeWithWholeDesignFingerprints) {
  for (std::uint64_t i = 0; i < 200; ++i) {
    const verify::CaseSpec spec = verify::caseForSeed(kRunSeed + 2, i);
    const StorageDesign design = verify::makeDesign(spec);
    const engine::DesignFingerprints parts =
        engine::fingerprintDesignParts(design);
    EXPECT_EQ(parts.design, engine::fingerprintDesign(design));
    EXPECT_EQ(parts.workload, engine::fingerprintWorkload(design.workload()));
    ASSERT_EQ(parts.levelKeys.size(),
              static_cast<std::size_t>(design.levelCount()));
  }
}

TEST(FingerprintParts, LevelKeysSeeReferencedDeviceChanges) {
  // The mirror link-count axis only changes the wan-links device; the level
  // tokens (names) are identical, so the level key must fold the device
  // fingerprint to avoid demand-cache aliasing.
  const WorkloadSpec workload = casestudy::celloWorkload();
  const BusinessRequirements business = casestudy::requirements();
  CandidateSpec a;
  a.mirror = optimizer::MirrorChoice::kAsyncBatch;
  a.mirrorLinkCount = 1;
  CandidateSpec b = a;
  b.mirrorLinkCount = 4;

  const StorageDesign da = a.build(workload, business);
  const StorageDesign db = b.build(workload, business);
  const engine::DesignFingerprints pa = engine::fingerprintDesignParts(da);
  const engine::DesignFingerprints pb = engine::fingerprintDesignParts(db);
  ASSERT_EQ(pa.levelKeys.size(), pb.levelKeys.size());
  bool anyDiffer = false;
  for (std::size_t i = 0; i < pa.levelKeys.size(); ++i) {
    if (!(pa.levelKeys[i] == pb.levelKeys[i])) anyDiffer = true;
  }
  EXPECT_TRUE(anyDiffer);
}

TEST(FingerprintCounters, CountOpsAndBytes) {
  engine::resetFingerprintCounters();
  const FailureScenario scenario =
      FailureScenario::arrayFailure("primary-array");
  for (int i = 0; i < 10; ++i) {
    (void)engine::fingerprintScenario(scenario);
  }
  engine::FingerprintCounters counters = engine::fingerprintCounters();
  EXPECT_EQ(counters.scenarioFingerprints, 10u);
  EXPECT_GT(counters.bytesHashed, 0u);
  EXPECT_EQ(counters.hashNanos, 0u);  // timing off by default

  engine::setFingerprintTiming(true);
  for (int i = 0; i < 5000; ++i) {
    (void)engine::fingerprintScenario(scenario);
  }
  engine::setFingerprintTiming(false);
  counters = engine::fingerprintCounters();
  EXPECT_EQ(counters.scenarioFingerprints, 5010u);
  EXPECT_GT(counters.hashNanos, 0u);
  EXPECT_GT(counters.nanosPerFingerprint(), 0.0);
  engine::resetFingerprintCounters();
  EXPECT_EQ(engine::fingerprintCounters().scenarioFingerprints, 0u);
}

// ---- Streaming enumeration -------------------------------------------------

std::vector<CandidateSpec> drain(DesignSpaceCursor& cursor) {
  std::vector<CandidateSpec> out;
  CandidateSpec spec;
  while (cursor.next(spec)) out.push_back(spec);
  return out;
}

TEST(DesignSpaceCursor, MatchesEnumerateOnDefaultGrid) {
  const std::vector<CandidateSpec> eager = optimizer::enumerateDesignSpace();
  DesignSpaceCursor cursor;
  const std::vector<CandidateSpec> streamed = drain(cursor);
  ASSERT_EQ(streamed.size(), eager.size());
  for (std::size_t i = 0; i < eager.size(); ++i) {
    EXPECT_EQ(streamed[i], eager[i]) << "diverges at candidate " << i;
  }
  EXPECT_EQ(cursor.produced(), eager.size());
  EXPECT_EQ(cursor.enumerated(), optimizer::gridCardinality({}));
  EXPECT_TRUE(cursor.exhausted());
}

TEST(DesignSpaceCursor, MatchesEnumerateOnDenseGrid) {
  DesignSpaceOptions options;
  options.pitAccWs = {hours(1), hours(6), hours(12), hours(24)};
  options.pitRetentionCounts = {1, 2, 4, 8};
  options.backupAccWs = {hours(48), weeks(1), weeks(2)};
  options.vaultAccWs = {weeks(1), weeks(2), weeks(4)};
  options.mirrorChoices = {optimizer::MirrorChoice::kNone,
                           optimizer::MirrorChoice::kSync,
                           optimizer::MirrorChoice::kAsync,
                           optimizer::MirrorChoice::kAsyncBatch};
  options.mirrorLinkCounts = {1, 2, 4, 8};
  const std::vector<CandidateSpec> eager =
      optimizer::enumerateDesignSpace(options);
  DesignSpaceCursor cursor(options);
  const std::vector<CandidateSpec> streamed = drain(cursor);
  ASSERT_EQ(streamed.size(), eager.size());
  for (std::size_t i = 0; i < eager.size(); ++i) {
    ASSERT_EQ(streamed[i], eager[i]) << "diverges at candidate " << i;
  }
  EXPECT_EQ(cursor.enumerated(), optimizer::gridCardinality(options));
}

TEST(DesignSpaceCursor, HandlesEmptyAxes) {
  DesignSpaceOptions options;
  options.pitChoices = {};
  DesignSpaceCursor empty(options);
  CandidateSpec spec;
  EXPECT_FALSE(empty.next(spec));
  EXPECT_EQ(optimizer::gridCardinality(options), 0u);

  // An empty dependent axis wipes out only the prefixes that need it.
  DesignSpaceOptions noPitAccW;
  noPitAccW.pitAccWs = {};
  const std::vector<CandidateSpec> eager =
      optimizer::enumerateDesignSpace(noPitAccW);
  DesignSpaceCursor cursor(noPitAccW);
  const std::vector<CandidateSpec> streamed = drain(cursor);
  ASSERT_EQ(streamed.size(), eager.size());
  for (std::size_t i = 0; i < eager.size(); ++i) {
    ASSERT_EQ(streamed[i], eager[i]);
  }
  EXPECT_EQ(cursor.enumerated(), optimizer::gridCardinality(noPitAccW));
}

TEST(DesignSpaceCursor, GridCardinalityCountsEveryPoint) {
  // Against a brute-force drain that also counts invalid combinations.
  DesignSpaceOptions options;
  options.pitRetentionCounts = {1, 4};
  DesignSpaceCursor cursor(options);
  (void)drain(cursor);
  EXPECT_EQ(cursor.enumerated(), optimizer::gridCardinality(options));
  EXPECT_GT(cursor.enumerated(), cursor.produced());  // invalid points exist
}

// ---- Streaming search ------------------------------------------------------

TEST(StreamingSearch, IdenticalToVectorAndSerialSweeps) {
  const WorkloadSpec workload = casestudy::celloWorkload();
  const BusinessRequirements business = casestudy::requirements();
  const std::vector<optimizer::ScenarioCase> scenarios =
      optimizer::caseStudyScenarios();
  const std::vector<CandidateSpec> candidates =
      optimizer::enumerateDesignSpace();

  const optimizer::SearchResult serial = optimizer::searchDesignSpaceSerial(
      candidates, workload, business, scenarios);

  engine::Engine eng(engine::EngineOptions{.threads = 4});
  optimizer::SearchOptions options;
  options.eng = &eng;
  options.streamChunk = 7;  // force many partial waves
  DesignSpaceCursor cursor;
  const optimizer::SearchResult streamed = optimizer::searchDesignSpaceStreaming(
      cursor, workload, business, scenarios, options);

  ASSERT_EQ(streamed.evaluated, serial.evaluated);
  ASSERT_EQ(streamed.ranked.size(), serial.ranked.size());
  ASSERT_EQ(streamed.rejected.size(), serial.rejected.size());
  EXPECT_FALSE(streamed.cancelled);
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(streamed.ranked[i].label, serial.ranked[i].label);
    EXPECT_EQ(streamed.ranked[i].totalCost.raw(),
              serial.ranked[i].totalCost.raw());
    EXPECT_EQ(streamed.ranked[i].worstRecoveryTime.raw(),
              serial.ranked[i].worstRecoveryTime.raw());
    EXPECT_EQ(streamed.ranked[i].worstDataLoss.raw(),
              serial.ranked[i].worstDataLoss.raw());
  }
  EXPECT_GT(streamed.wallSeconds, 0.0);
  EXPECT_GT(streamed.candidatesPerSec, 0.0);
}

TEST(StreamingSearch, ResumesFromVectorSweepJournal) {
  const WorkloadSpec workload = casestudy::celloWorkload();
  const BusinessRequirements business = casestudy::requirements();
  const std::vector<optimizer::ScenarioCase> scenarios =
      optimizer::caseStudyScenarios();
  const std::vector<CandidateSpec> candidates =
      optimizer::enumerateDesignSpace();

  const std::string path =
      testing::TempDir() + "/streaming_resume_journal.jsonl";
  std::remove(path.c_str());

  engine::Engine eng(engine::EngineOptions{.threads = 2});
  optimizer::SearchOptions first;
  first.eng = &eng;
  first.checkpointPath = path;
  const optimizer::SearchResult full = optimizer::searchDesignSpace(
      candidates, workload, business, scenarios, first);
  ASSERT_FALSE(full.cancelled);

  optimizer::SearchOptions second = first;
  second.streamChunk = 16;
  DesignSpaceCursor cursor;
  const optimizer::SearchResult resumed = optimizer::searchDesignSpaceStreaming(
      cursor, workload, business, scenarios, second);
  EXPECT_EQ(resumed.skipped, full.evaluated);
  ASSERT_EQ(resumed.ranked.size(), full.ranked.size());
  for (std::size_t i = 0; i < full.ranked.size(); ++i) {
    EXPECT_EQ(resumed.ranked[i].label, full.ranked[i].label);
    EXPECT_EQ(resumed.ranked[i].totalCost.raw(),
              full.ranked[i].totalCost.raw());
  }
  std::remove(path.c_str());
}

// ---- Demand cache ----------------------------------------------------------

TEST(DemandCache, CachedPrecomputationIsBitIdentical) {
  const WorkloadSpec workload = casestudy::celloWorkload();
  const BusinessRequirements business = casestudy::requirements();
  const FailureScenario scenario = casestudy::siteDisaster();

  engine::DemandCache cache;
  for (const CandidateSpec& spec : optimizer::enumerateDesignSpace()) {
    const StorageDesign design = spec.build(workload, business);
    const engine::DesignFingerprints parts =
        engine::fingerprintDesignParts(design);
    const DesignPrecomputation direct = precomputeDesign(design);
    const DesignPrecomputation cached =
        engine::precomputeDesignCached(design, parts, cache);

    // Compare through the full evaluation they feed: identical inputs to
    // evaluate() must give identical raw metrics.
    const EvaluationResult a = evaluate(design, scenario, direct);
    const EvaluationResult b = evaluate(design, scenario, cached);
    ASSERT_EQ(a.cost.totalOutlays.raw(), b.cost.totalOutlays.raw());
    ASSERT_EQ(a.cost.totalPenalties.raw(), b.cost.totalPenalties.raw());
    ASSERT_EQ(a.recovery.recoveryTime.raw(), b.recovery.recoveryTime.raw());
    ASSERT_EQ(a.recovery.dataLoss.raw(), b.recovery.dataLoss.raw());
    ASSERT_EQ(a.utilization.feasible(), b.utilization.feasible());
    ASSERT_EQ(direct.warnings, cached.warnings);
    ASSERT_EQ(direct.outlays.size(), cached.outlays.size());
  }
  const engine::DemandCache::Stats stats = cache.stats();
  EXPECT_GT(stats.probes, 0u);
  // The grid's levels heavily overlap, so most probes must hit.
  EXPECT_GT(stats.hitRate(), 0.5);
}

TEST(DemandCache, EngineSweepSharesLevelWork) {
  const WorkloadSpec workload = casestudy::celloWorkload();
  const BusinessRequirements business = casestudy::requirements();
  const std::vector<optimizer::ScenarioCase> scenarios =
      optimizer::caseStudyScenarios();
  const std::vector<CandidateSpec> candidates =
      optimizer::enumerateDesignSpace();

  engine::Engine eng(engine::EngineOptions{.threads = 4});
  // Pin the legacy keyed path: the demand cache only sees traffic when
  // candidates precompute through it (the plan path never touches it).
  optimizer::SearchOptions legacy;
  legacy.eng = &eng;
  legacy.maxRetries = 0;
  legacy.usePlan = false;
  const optimizer::SearchResult viaEngine = optimizer::searchDesignSpace(
      candidates, workload, business, scenarios, legacy);
  const optimizer::SearchResult serial = optimizer::searchDesignSpaceSerial(
      candidates, workload, business, scenarios);

  ASSERT_EQ(viaEngine.ranked.size(), serial.ranked.size());
  for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
    EXPECT_EQ(viaEngine.ranked[i].label, serial.ranked[i].label);
    EXPECT_EQ(viaEngine.ranked[i].totalCost.raw(),
              serial.ranked[i].totalCost.raw());
  }
  const engine::DemandCache::Stats stats = eng.demandCache().stats();
  EXPECT_GT(stats.probes, 0u);
  EXPECT_GT(stats.hits, 0u);
}

TEST(DemandCache, StatsAndClear) {
  engine::DemandCache cache(/*capacity=*/8, /*shards=*/2);
  EXPECT_EQ(cache.stats().capacity, 8u);
  const Fingerprint key{1, 2};
  EXPECT_EQ(cache.lookup(key), nullptr);
  cache.insert(key, std::make_shared<std::vector<engine::CachedDemand>>());
  EXPECT_NE(cache.lookup(key), nullptr);
  engine::DemandCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.probes, 2u);
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.entries, 1u);
  cache.clear();
  stats = cache.stats();
  EXPECT_EQ(stats.entries, 0u);
  EXPECT_EQ(stats.probes, 0u);
}

TEST(EvalCacheStats, ProbesCountLookupTraffic) {
  engine::EvalCache cache;
  const Fingerprint key{3, 4};
  (void)cache.lookup(key);
  (void)cache.lookup(key);
  const engine::EvalCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.probes, stats.hits + stats.misses);
  EXPECT_EQ(stats.probes, 2u);
}

}  // namespace
}  // namespace stordep
