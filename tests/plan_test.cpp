// plan_test.cpp — the compile-once evaluation-plan fast path.
//
// Covers the pieces the plan-vs-legacy fuzz oracle cannot: the BumpArena's
// reuse/rewind protocol, plan-compilation idempotence (fingerprints), the
// fallback to the legacy evaluator for un-plannable designs, the engine's
// write-behind cache merge, and — the thread-determinism satellite — that a
// cold plan-routed search returns bit-identical rankings at 1/2/4/8 threads
// (this binary also runs under TSan in CI).

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <optional>
#include <utility>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "core/evaluator.hpp"
#include "core/hierarchy.hpp"
#include "core/technique.hpp"
#include "core/techniques/foreground.hpp"
#include "devices/catalog.hpp"
#include "engine/arena.hpp"
#include "engine/batch.hpp"
#include "engine/plan.hpp"
#include "optimizer/design_space.hpp"
#include "optimizer/search.hpp"

namespace {

namespace cs = stordep::casestudy;
namespace opt = stordep::optimizer;
using stordep::engine::BumpArena;
using stordep::engine::Engine;
using stordep::engine::EngineOptions;
using stordep::engine::EvalPlan;

// ---- BumpArena -------------------------------------------------------------

TEST(Arena, ArrayAllocationAlignsAndZeroes) {
  BumpArena arena(/*blockBytes=*/256);
  double* d = arena.array<double>(4);
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(reinterpret_cast<std::uintptr_t>(d) % alignof(double), 0u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(d[i], 0.0);

  bool* flags = arena.array<bool>(7);
  ASSERT_NE(flags, nullptr);
  for (int i = 0; i < 7; ++i) EXPECT_FALSE(flags[i]);

  EXPECT_GE(arena.used(), 4 * sizeof(double) + 7 * sizeof(bool));
  EXPECT_EQ(arena.highWater(), arena.used());
}

TEST(Arena, ResetKeepsBlocksAndReusesMemory) {
  BumpArena arena(/*blockBytes=*/128);
  void* first = arena.allocate(64, 8);
  ASSERT_NE(first, nullptr);
  const std::size_t blocks = arena.blockCount();
  const std::size_t capacity = arena.capacity();

  arena.reset();
  EXPECT_EQ(arena.used(), 0u);
  EXPECT_EQ(arena.blockCount(), blocks);     // blocks retained...
  EXPECT_EQ(arena.capacity(), capacity);     // ...capacity unchanged
  void* again = arena.allocate(64, 8);
  EXPECT_EQ(again, first);  // same bytes handed out again
}

TEST(Arena, FrameRewindsWithoutFreeing) {
  BumpArena arena(/*blockBytes=*/128);
  (void)arena.allocate(16, 8);
  const std::size_t before = arena.used();
  void* inner1 = nullptr;
  {
    BumpArena::Frame frame(arena);
    inner1 = arena.allocate(32, 8);
    (void)arena.allocate(500, 8);  // forces growth past the first block
    EXPECT_GT(arena.used(), before);
  }
  EXPECT_EQ(arena.used(), before);  // frame rewound the bump position
  // The next frame re-serves the same scratch memory.
  BumpArena::Frame frame(arena);
  EXPECT_EQ(arena.allocate(32, 8), inner1);
}

TEST(Arena, OversizedAllocationGetsItsOwnBlock) {
  BumpArena arena(/*blockBytes=*/64);
  void* big = arena.allocate(1024, 16);
  ASSERT_NE(big, nullptr);
  EXPECT_GE(arena.capacity(), 1024u);
  // High-water tracks the peak across resets.
  const std::size_t peak = arena.highWater();
  arena.reset();
  (void)arena.allocate(8, 8);
  EXPECT_EQ(arena.highWater(), peak);
}

// ---- Plan compilation ------------------------------------------------------

TEST(PlanCompile, SameDesignSameFingerprintTwice) {
  const stordep::StorageDesign design = cs::baseline();
  const auto a = EvalPlan::compile(design);
  const auto b = EvalPlan::compile(design);
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->fingerprint().hi, b->fingerprint().hi);
  EXPECT_EQ(a->fingerprint().lo, b->fingerprint().lo);
  // Re-materializing the design from scratch must also agree: compilation
  // is a pure function of the design's content, not its object identity.
  const auto c = EvalPlan::compile(cs::baseline());
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(a->fingerprint().hi, c->fingerprint().hi);
  EXPECT_EQ(a->fingerprint().lo, c->fingerprint().lo);
}

TEST(PlanCompile, DifferentDesignsDifferentFingerprints) {
  const auto a = EvalPlan::compile(cs::baseline());
  const auto b = EvalPlan::compile(cs::weeklyVault());
  const auto c = EvalPlan::compile(cs::asyncBatchMirror(2));
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  ASSERT_NE(c, nullptr);
  EXPECT_FALSE(a->fingerprint().hi == b->fingerprint().hi &&
               a->fingerprint().lo == b->fingerprint().lo);
  EXPECT_FALSE(a->fingerprint().hi == c->fingerprint().hi &&
               a->fingerprint().lo == c->fingerprint().lo);
  EXPECT_FALSE(b->fingerprint().hi == c->fingerprint().hi &&
               b->fingerprint().lo == c->fingerprint().lo);
}

TEST(PlanCompile, EveryCaseStudyDesignIsPlannable) {
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    EXPECT_NE(EvalPlan::compile(design), nullptr) << label;
  }
}

// ---- Plan vs legacy on the case-study designs ------------------------------

void expectMetricsBitIdentical(const stordep::EvaluationMetrics& plan,
                               const stordep::EvaluationMetrics& legacy,
                               const std::string& context) {
  EXPECT_EQ(plan.utilizationFeasible, legacy.utilizationFeasible) << context;
  EXPECT_EQ(plan.recoverable, legacy.recoverable) << context;
  EXPECT_EQ(plan.meetsObjectives, legacy.meetsObjectives) << context;
  EXPECT_EQ(plan.sourceLevel, legacy.sourceLevel) << context;
  EXPECT_EQ(plan.recoveryTime.raw(), legacy.recoveryTime.raw()) << context;
  EXPECT_EQ(plan.dataLoss.raw(), legacy.dataLoss.raw()) << context;
  EXPECT_EQ(plan.payload.raw(), legacy.payload.raw()) << context;
  EXPECT_EQ(plan.totalOutlays.raw(), legacy.totalOutlays.raw()) << context;
  EXPECT_EQ(plan.outagePenalty.raw(), legacy.outagePenalty.raw()) << context;
  EXPECT_EQ(plan.lossPenalty.raw(), legacy.lossPenalty.raw()) << context;
  EXPECT_EQ(plan.totalPenalties.raw(), legacy.totalPenalties.raw()) << context;
  EXPECT_EQ(plan.totalCost.raw(), legacy.totalCost.raw()) << context;
}

TEST(PlanEvaluate, BitIdenticalToLegacyOnCaseStudyMatrix) {
  const std::vector<std::pair<std::string, stordep::FailureScenario>>
      scenarios = {{"object", cs::objectFailure()},
                   {"array", cs::arrayFailure()},
                   {"site", cs::siteDisaster()}};
  BumpArena arena;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const auto plan = EvalPlan::compile(design);
    ASSERT_NE(plan, nullptr) << label;
    for (const auto& [scenarioName, scenario] : scenarios) {
      const stordep::EvaluationMetrics viaPlan =
          plan->evaluate(scenario, arena);
      const stordep::EvaluationMetrics legacy =
          stordep::summarizeEvaluation(stordep::evaluate(design, scenario));
      expectMetricsBitIdentical(viaPlan, legacy,
                                label + " / " + scenarioName);
    }
  }
}

TEST(PlanEvaluate, RepeatedEvalsReuseArenaWithoutGrowth) {
  const stordep::StorageDesign design = cs::baseline();
  const auto plan = EvalPlan::compile(design);
  ASSERT_NE(plan, nullptr);
  BumpArena arena;
  const stordep::EvaluationMetrics first =
      plan->evaluate(cs::siteDisaster(), arena);
  const std::size_t warmBlocks = arena.blockCount();
  const std::size_t warmCapacity = arena.capacity();
  for (int i = 0; i < 100; ++i) {
    const stordep::EvaluationMetrics again =
        plan->evaluate(cs::siteDisaster(), arena);
    ASSERT_EQ(again.recoveryTime.raw(), first.recoveryTime.raw());
    ASSERT_EQ(again.totalCost.raw(), first.totalCost.raw());
  }
  EXPECT_EQ(arena.blockCount(), warmBlocks);  // no growth once warm
  EXPECT_EQ(arena.capacity(), warmCapacity);
  EXPECT_EQ(arena.used(), 0u);  // every eval rewound its frame
}

// ---- Fallback for un-plannable designs -------------------------------------

/// A technique whose restore path has a missing endpoint: the legacy
/// evaluator reports it via a diagnostic note, which the plan tables cannot
/// represent — compile() must reject the design and the engine must fall
/// back to the legacy evaluator.
class BrokenRestoreTechnique final : public stordep::Technique {
 public:
  explicit BrokenRestoreTechnique(stordep::DevicePtr storage)
      : Technique("broken restore", stordep::TechniqueKind::kBackup),
        storage_(std::move(storage)),
        policy_(stordep::WindowSpec{stordep::hours(24), stordep::hours(1),
                                    stordep::Duration::zero()},
                /*retentionCount=*/2, stordep::days(14)) {}

  [[nodiscard]] const stordep::ProtectionPolicy* policy()
      const noexcept override {
    return &policy_;
  }
  [[nodiscard]] std::vector<stordep::DevicePtr> storageDevices()
      const override {
    return {storage_};
  }
  [[nodiscard]] std::vector<stordep::PlacedDemand> normalModeDemands(
      const stordep::WorkloadSpec&) const override {
    return {};
  }
  [[nodiscard]] std::vector<stordep::RecoveryLeg> recoveryLegs(
      stordep::DevicePtr) const override {
    return {stordep::RecoveryLeg{nullptr, nullptr, nullptr,
                                 stordep::Duration::zero()}};
  }

 private:
  stordep::DevicePtr storage_;
  stordep::ProtectionPolicy policy_;
};

stordep::StorageDesign brokenRestoreDesign() {
  auto primary = stordep::catalog::midrangeDiskArray(
      "primary array", stordep::Location::at("primary site"));
  auto offsite = stordep::catalog::midrangeDiskArray(
      "offsite array", stordep::Location::at("offsite"));
  std::vector<stordep::TechniquePtr> levels;
  levels.push_back(std::make_shared<stordep::PrimaryCopy>(primary));
  levels.push_back(std::make_shared<BrokenRestoreTechnique>(offsite));
  return stordep::StorageDesign("broken restore design", cs::celloWorkload(),
                                cs::requirements(), std::move(levels));
}

TEST(PlanFallback, UnplannableDesignCompilesToNull) {
  EXPECT_EQ(EvalPlan::compile(brokenRestoreDesign()), nullptr);
}

TEST(PlanFallback, MatrixFallsBackToLegacyForUnplannableDesigns) {
  const auto designs = std::vector<std::shared_ptr<const stordep::StorageDesign>>{
      std::make_shared<const stordep::StorageDesign>(cs::baseline()),
      std::make_shared<const stordep::StorageDesign>(brokenRestoreDesign())};
  const std::vector<stordep::FailureScenario> scenarios = {
      cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()};

  Engine engine(EngineOptions{.threads = 2});
  Engine::PlanBatchStats stats;
  const std::vector<stordep::EvaluationMetrics> matrix =
      engine.evaluatePlanMatrix(designs, scenarios, &stats);

  ASSERT_EQ(matrix.size(), designs.size() * scenarios.size());
  EXPECT_EQ(stats.pairs, matrix.size());
  EXPECT_EQ(stats.planCompiles, 1u);      // baseline
  EXPECT_EQ(stats.planIncompatible, 1u);  // broken-restore design
  for (std::size_t d = 0; d < designs.size(); ++d) {
    for (std::size_t s = 0; s < scenarios.size(); ++s) {
      const stordep::EvaluationMetrics legacy = stordep::summarizeEvaluation(
          stordep::evaluate(*designs[d], scenarios[s]));
      expectMetricsBitIdentical(matrix[d * scenarios.size() + s], legacy,
                                "design " + std::to_string(d) + " scenario " +
                                    std::to_string(s));
    }
  }
}

TEST(PlanFallback, SearchStillRanksUnplannableDesignSpaces) {
  // evaluateCandidate's plan routing must agree with the forced-legacy path
  // even though these candidates compile fine — and the plan default must
  // not change any public search results.
  const auto candidates = opt::enumerateDesignSpace();
  const auto scenarios = opt::caseStudyScenarios();
  ASSERT_FALSE(candidates.empty());
  const opt::EvaluatedCandidate viaPlan = opt::evaluateCandidate(
      candidates.front(), cs::celloWorkload(), cs::requirements(), scenarios,
      nullptr, /*usePlan=*/true);
  const opt::EvaluatedCandidate legacy = opt::evaluateCandidate(
      candidates.front(), cs::celloWorkload(), cs::requirements(), scenarios,
      nullptr, /*usePlan=*/false);
  EXPECT_EQ(viaPlan.label, legacy.label);
  EXPECT_EQ(viaPlan.feasible, legacy.feasible);
  EXPECT_EQ(viaPlan.meetsObjectives, legacy.meetsObjectives);
  EXPECT_EQ(viaPlan.rejectionReason, legacy.rejectionReason);
  EXPECT_EQ(viaPlan.totalCost.raw(), legacy.totalCost.raw());
  EXPECT_EQ(viaPlan.outlays.raw(), legacy.outlays.raw());
  EXPECT_EQ(viaPlan.weightedPenalties.raw(), legacy.weightedPenalties.raw());
  EXPECT_EQ(viaPlan.worstRecoveryTime.raw(), legacy.worstRecoveryTime.raw());
  EXPECT_EQ(viaPlan.worstDataLoss.raw(), legacy.worstDataLoss.raw());
}

// ---- Write-behind cache merge ----------------------------------------------

TEST(WriteBehind, InsertsAreBufferedAndMergedOnScopeClose) {
  Engine engine(EngineOptions{.threads = 1});
  const stordep::StorageDesign design = cs::baseline();
  const stordep::FailureScenario scenario = cs::arrayFailure();
  const stordep::engine::DesignFingerprints parts =
      stordep::engine::fingerprintDesignParts(design);
  const stordep::engine::Fingerprint key = stordep::engine::combine(
      parts.design, stordep::engine::fingerprintScenario(scenario));

  {
    Engine::WriteBehindScope scope(engine);
    std::optional<stordep::DesignPrecomputation> pre;
    (void)engine.evaluateKeyed(design, scenario, key, pre, &parts);
    // The write is parked in the thread buffer, not the shared cache.
    EXPECT_EQ(engine.cache().stats().inserts, 0u);
  }
  // Scope close merged it.
  EXPECT_EQ(engine.cache().stats().inserts, 1u);
  std::optional<stordep::DesignPrecomputation> pre;
  const std::uint64_t hitsBefore = engine.cache().stats().hits;
  (void)engine.evaluateKeyed(design, scenario, key, pre, &parts);
  EXPECT_EQ(engine.cache().stats().hits, hitsBefore + 1);
}

TEST(WriteBehind, BufferFlushesEarlyAtTheLimit) {
  Engine engine(EngineOptions{.threads = 1, .writeBehindLimit = 1});
  const stordep::StorageDesign design = cs::baseline();
  const stordep::engine::DesignFingerprints parts =
      stordep::engine::fingerprintDesignParts(design);

  Engine::WriteBehindScope scope(engine);
  std::optional<stordep::DesignPrecomputation> pre;
  const stordep::FailureScenario scenario = cs::arrayFailure();
  const stordep::engine::Fingerprint key = stordep::engine::combine(
      parts.design, stordep::engine::fingerprintScenario(scenario));
  (void)engine.evaluateKeyed(design, scenario, key, pre, &parts);
  // Limit 1: the pending buffer hit its bound and flushed inside the scope.
  EXPECT_EQ(engine.cache().stats().inserts, 1u);
}

TEST(WriteBehind, ZeroLimitDisablesBuffering) {
  Engine engine(EngineOptions{.threads = 1, .writeBehindLimit = 0});
  const stordep::StorageDesign design = cs::baseline();
  const stordep::engine::DesignFingerprints parts =
      stordep::engine::fingerprintDesignParts(design);
  Engine::WriteBehindScope scope(engine);  // degrades to a no-op
  std::optional<stordep::DesignPrecomputation> pre;
  const stordep::FailureScenario scenario = cs::siteDisaster();
  const stordep::engine::Fingerprint key = stordep::engine::combine(
      parts.design, stordep::engine::fingerprintScenario(scenario));
  (void)engine.evaluateKeyed(design, scenario, key, pre, &parts);
  EXPECT_EQ(engine.cache().stats().inserts, 1u);  // straight to the cache
}

TEST(WriteBehind, NestedScopeIsANoOp) {
  Engine engine(EngineOptions{.threads = 1});
  const stordep::StorageDesign design = cs::baseline();
  const stordep::engine::DesignFingerprints parts =
      stordep::engine::fingerprintDesignParts(design);
  Engine::WriteBehindScope outer(engine);
  {
    Engine::WriteBehindScope inner(engine);  // no-op: outer is active
    std::optional<stordep::DesignPrecomputation> pre;
    const stordep::FailureScenario scenario = cs::objectFailure();
    const stordep::engine::Fingerprint key = stordep::engine::combine(
        parts.design, stordep::engine::fingerprintScenario(scenario));
    (void)engine.evaluateKeyed(design, scenario, key, pre, &parts);
  }
  // Inner close must NOT have merged: the write still belongs to outer.
  EXPECT_EQ(engine.cache().stats().inserts, 0u);
}

// ---- Thread-count determinism (runs under TSan in CI) ----------------------

void expectSameRanking(const opt::SearchResult& a, const opt::SearchResult& b,
                       int threads) {
  ASSERT_EQ(a.ranked.size(), b.ranked.size()) << threads << " threads";
  ASSERT_EQ(a.rejected.size(), b.rejected.size()) << threads << " threads";
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    EXPECT_EQ(a.ranked[i].label, b.ranked[i].label)
        << threads << " threads, rank " << i;
    EXPECT_EQ(a.ranked[i].totalCost.raw(), b.ranked[i].totalCost.raw())
        << threads << " threads, rank " << i;
    EXPECT_EQ(a.ranked[i].outlays.raw(), b.ranked[i].outlays.raw());
    EXPECT_EQ(a.ranked[i].weightedPenalties.raw(),
              b.ranked[i].weightedPenalties.raw());
    EXPECT_EQ(a.ranked[i].worstRecoveryTime.raw(),
              b.ranked[i].worstRecoveryTime.raw());
    EXPECT_EQ(a.ranked[i].worstDataLoss.raw(),
              b.ranked[i].worstDataLoss.raw());
  }
  for (std::size_t i = 0; i < a.rejected.size(); ++i) {
    EXPECT_EQ(a.rejected[i].label, b.rejected[i].label);
    EXPECT_EQ(a.rejected[i].rejectionReason, b.rejected[i].rejectionReason);
  }
}

TEST(PlanDeterminism, ColdGridSearchBitIdenticalAcrossThreadCounts) {
  const auto candidates = opt::enumerateDesignSpace();
  const auto scenarios = opt::caseStudyScenarios();
  const stordep::WorkloadSpec workload = cs::celloWorkload();
  const stordep::BusinessRequirements business = cs::requirements();

  std::optional<opt::SearchResult> reference;
  for (const int threads : {1, 2, 4, 8}) {
    // A fresh engine per thread count: every sweep is fully cold.
    Engine engine(EngineOptions{.threads = threads});
    opt::SearchOptions options;
    options.eng = &engine;
    options.maxRetries = 0;
    ASSERT_TRUE(options.usePlan);  // the cold fast path is the default
    const opt::SearchResult result = opt::searchDesignSpace(
        candidates, workload, business, scenarios, options);
    EXPECT_EQ(result.evaluated, static_cast<int>(candidates.size()));
    if (!reference) {
      reference = result;
      ASSERT_FALSE(reference->ranked.empty());
    } else {
      expectSameRanking(*reference, result, threads);
    }
  }
}

}  // namespace
