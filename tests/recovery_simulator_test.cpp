// Tests for sim/recovery_simulator: the per-instant restore replay behind
// the Monte-Carlo layer (distribution-level assertions live in
// stochastic_test.cpp, on StochasticEvaluator).
#include "sim/recovery_simulator.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/recovery.hpp"

namespace stordep::sim {
namespace {

namespace cs = casestudy;

RpSimOptions options(Duration horizon) {
  RpSimOptions opts;
  opts.horizon = horizon;
  return opts;
}

TEST(RecoverySimulator, ObservedRecoveryMatchesAnalyticForBaseline) {
  RpLifecycleSimulator sim(cs::baseline(), options(days(200)));
  sim.run();
  const RecoverySimulator rec(sim);
  const auto observed =
      rec.observedRecovery(cs::arrayFailure(), sim.warmupTime() + 1000.0);
  ASSERT_TRUE(observed.has_value());
  EXPECT_EQ(observed->sourceLevel, 2);  // tape backup
  const RecoveryResult analytic =
      computeRecovery(cs::baseline(), cs::arrayFailure());
  EXPECT_NEAR(observed->recoveryTime.secs(), analytic.recoveryTime.secs(),
              1.0);
  // The observed loss at an arbitrary instant is below the worst case.
  EXPECT_LE(observed->dataLoss, analytic.dataLoss);
}

TEST(RecoverySimulator, UnrecoverableInstantReported) {
  RpLifecycleSimulator sim(cs::asyncBatchMirror(1), options(hours(6)));
  sim.run();
  const RecoverySimulator rec(sim);
  // A 24 h rollback has no serving level in a mirror-only design.
  EXPECT_FALSE(
      rec.observedRecovery(cs::objectFailure(), hours(3).secs()).has_value());
}

TEST(RecoverySimulator, FullOnlyPayloadIsConstantAcrossInstants) {
  RpLifecycleSimulator sim(cs::baseline(), options(days(200)));
  sim.run();
  const RecoverySimulator rec(sim);
  // Full-only backups always restore exactly one image, whatever the
  // failure instant within the steady-state window.
  const double lo = sim.warmupTime();
  const double hi = sim.horizon();
  for (int i = 0; i < 16; ++i) {
    const double failTime = lo + (hi - lo) * (i + 0.5) / 16.0;
    const auto observed = rec.observedRecovery(cs::arrayFailure(), failTime);
    ASSERT_TRUE(observed.has_value());
    EXPECT_EQ(observed->payload, gigabytes(1360));
  }
}

}  // namespace
}  // namespace stordep::sim
