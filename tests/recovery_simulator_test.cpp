// Tests for sim/recovery_simulator: per-instant restore payloads, recovery-
// time distributions, and the analytic worst case bounding them.
#include "sim/recovery_simulator.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/recovery.hpp"

namespace stordep::sim {
namespace {

namespace cs = casestudy;

RpSimOptions options(Duration horizon) {
  RpSimOptions opts;
  opts.horizon = horizon;
  return opts;
}

TEST(RecoverySimulator, FullOnlyPayloadIsConstant) {
  RpLifecycleSimulator sim(cs::baseline(), options(days(200)));
  sim.run();
  const RecoverySimulator rec(sim);
  const RecoveryDistribution dist =
      rec.distribution(cs::arrayFailure(), 500, Rng(5));
  EXPECT_EQ(dist.unrecoverable, 0);
  // Full-only backups always restore exactly one image.
  EXPECT_EQ(dist.minPayload, gigabytes(1360));
  EXPECT_EQ(dist.maxPayload, gigabytes(1360));
  // RT is then also constant and equal to the analytic worst case.
  EXPECT_TRUE(dist.rtBoundHolds);
  EXPECT_NEAR(dist.tightness, 1.0, 1e-6);
  EXPECT_NEAR(dist.minRt.secs(), dist.maxRt.secs(), 1.0);
}

TEST(RecoverySimulator, IncrementalPayloadVariesAcrossTheCycle) {
  RpLifecycleSimulator sim(cs::weeklyVaultFullPlusIncremental(),
                           options(days(200)));
  sim.run();
  const RecoverySimulator rec(sim);
  const RecoveryDistribution dist =
      rec.distribution(cs::arrayFailure(), 2000, Rng(7));
  EXPECT_EQ(dist.unrecoverable, 0);
  // The day-1 incremental always arrives before its base full finishes
  // propagating, so the lightest restore is full + one day of updates
  // (~1386 GB); deep into the cycle it grows to full + five days (~1490 GB).
  EXPECT_NEAR(dist.minPayload.gigabytes(), 1386.1, 1.0);
  EXPECT_GT(dist.maxPayload.gigabytes(), 1360.0 + 80.0);
  EXPECT_LT(dist.maxPayload.gigabytes(), 1360.0 + 135.0);
  // The analytic worst case (full + largest incremental) bounds every
  // observed recovery time and is approached.
  EXPECT_TRUE(dist.rtBoundHolds);
  EXPECT_GT(dist.tightness, 0.9);
  EXPECT_LT(dist.minRt, dist.maxRt);
  EXPECT_LT(dist.meanRt, dist.maxRt);
}

TEST(RecoverySimulator, ObservedRecoveryMatchesAnalyticForBaseline) {
  RpLifecycleSimulator sim(cs::baseline(), options(days(200)));
  sim.run();
  const RecoverySimulator rec(sim);
  const auto observed =
      rec.observedRecovery(cs::arrayFailure(), sim.warmupTime() + 1000.0);
  ASSERT_TRUE(observed.has_value());
  EXPECT_EQ(observed->sourceLevel, 2);  // tape backup
  const RecoveryResult analytic =
      computeRecovery(cs::baseline(), cs::arrayFailure());
  EXPECT_NEAR(observed->recoveryTime.secs(), analytic.recoveryTime.secs(),
              1.0);
  // The observed loss at an arbitrary instant is below the worst case.
  EXPECT_LE(observed->dataLoss, analytic.dataLoss);
}

TEST(RecoverySimulator, UnrecoverableInstantsReported) {
  RpLifecycleSimulator sim(cs::asyncBatchMirror(1), options(hours(6)));
  sim.run();
  const RecoverySimulator rec(sim);
  // A 24 h rollback has no serving level in a mirror-only design.
  EXPECT_FALSE(
      rec.observedRecovery(cs::objectFailure(), hours(3).secs()).has_value());
  const RecoveryDistribution dist =
      rec.distribution(cs::objectFailure(), 100, Rng(9));
  EXPECT_EQ(dist.unrecoverable, 100);
}

TEST(RecoverySimulator, SiteDisasterDistributionBounded) {
  RpLifecycleSimulator sim(cs::baseline(), options(days(250)));
  sim.run();
  const RecoverySimulator rec(sim);
  const RecoveryDistribution dist =
      rec.distribution(cs::siteDisaster(), 500, Rng(13));
  EXPECT_EQ(dist.unrecoverable, 0);
  EXPECT_TRUE(dist.rtBoundHolds);
  // The 24 h shipment dominates: every sample lands at ~26.4 h.
  EXPECT_GT(dist.minRt, hours(25));
  EXPECT_LT(dist.maxRt, hours(27));
}

}  // namespace
}  // namespace stordep::sim
