// Composability tests — the paper's central design claim is that the common
// parameter abstraction lets techniques compose freely and new ones slot in
// without touching the framework. These tests build configurations the case
// study never exercises:
//   * disk-to-disk backup (a nearline array as the backup device),
//   * multi-hop disaster recovery (sync mirror nearby + async-batch far),
//   * deep hierarchies (snapshot -> D2D -> tape -> vault),
//   * building- and region-scope failures over multi-region topologies.
#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/evaluator.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "core/techniques/snapshot.hpp"
#include "core/techniques/split_mirror.hpp"
#include "core/techniques/vaulting.hpp"
#include "devices/catalog.hpp"

namespace stordep {
namespace {

namespace cs = casestudy;

ProtectionPolicy mirrorPolicy12h() {
  return ProtectionPolicy(WindowSpec{.accW = hours(12)}, 4, days(2));
}

ProtectionPolicy dailyBackupPolicy(int retCnt = 28) {
  return ProtectionPolicy(WindowSpec{.accW = hours(24),
                                     .propW = hours(6),
                                     .holdW = hours(1)},
                          retCnt, weeks(4));
}

TEST(Composition, DiskToDiskBackupRestoresFasterThanTape) {
  auto array = catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                          Location::at(cs::kPrimarySite));
  auto nearline =
      catalog::nearlineDiskArray("nearline", Location::at(cs::kPrimarySite));
  auto library = catalog::enterpriseTapeLibrary(
      "tape-library", Location::at(cs::kPrimarySite));

  auto makeDesign = [&](DevicePtr backupDevice, const std::string& name) {
    std::vector<TechniquePtr> levels;
    levels.push_back(std::make_shared<PrimaryCopy>(array));
    levels.push_back(std::make_shared<SplitMirror>("mirrors", array,
                                                   mirrorPolicy12h()));
    levels.push_back(std::make_shared<Backup>("backup",
                                              BackupStyle::kFullOnly, array,
                                              std::move(backupDevice),
                                              dailyBackupPolicy()));
    return StorageDesign(name, cs::celloWorkload(), cs::requirements(),
                         std::move(levels), cs::recoveryFacility());
  };

  const StorageDesign d2d = makeDesign(nearline, "d2d");
  const StorageDesign tape = makeDesign(library, "d2t");

  const EvaluationResult d2dResult = evaluate(d2d, cs::arrayFailure());
  const EvaluationResult tapeResult = evaluate(tape, cs::arrayFailure());
  ASSERT_TRUE(d2dResult.recovery.recoverable);
  ASSERT_TRUE(tapeResult.recovery.recoverable);

  // Identical policies, identical data loss.
  EXPECT_EQ(d2dResult.recovery.dataLoss, tapeResult.recovery.dataLoss);
  // The nearline array restores faster (400 vs 240 MB/s, no load/seek).
  EXPECT_LT(d2dResult.recovery.recoveryTime,
            tapeResult.recovery.recoveryTime);
  // ...but disk media cost an order of magnitude more than tape per GB.
  const auto* d2dOutlay = d2dResult.cost.find("backup");
  const auto* tapeOutlay = tapeResult.cost.find("backup");
  ASSERT_NE(d2dOutlay, nullptr);
  ASSERT_NE(tapeOutlay, nullptr);
  EXPECT_GT(d2dOutlay->total().usd(), 2.0 * tapeOutlay->total().usd());
}

TEST(Composition, DiskToDiskCapacityIsRaid5Derated) {
  auto nearline =
      catalog::nearlineDiskArray("nearline", Location::at("site"));
  // 192 x 250 GB raw, RAID-5 groups of 12: usable 11/12.
  EXPECT_DOUBLE_EQ(nearline->usableCapacity().gigabytes(),
                   192 * 250.0 * 11 / 12);
  EXPECT_DOUBLE_EQ(nearline->maxBandwidth().mbPerSec(), 400.0);
}

/// Multi-hop DR: sync mirror to a nearby campus (zero loss for local
/// disasters) + async-batch to a far region (bounded loss for regional
/// ones).
StorageDesign multiHopDesign() {
  auto primary = catalog::midrangeDiskArray(
      cs::kPrimaryArrayName, Location::at("sf", "sf-b1", "west"));
  auto campus = catalog::midrangeDiskArray(
      "campus-array", Location::at("oakland", "oak-b1", "west"),
      RaidLevel::kRaid1, SpareSpec::none());
  auto remote = catalog::midrangeDiskArray(
      "remote-array", Location::at("boston", "bos-b1", "east"),
      RaidLevel::kRaid1, SpareSpec::none());
  auto metroLinks = std::make_shared<NetworkLink>(
      "metro-links", Location::at("metro", "metro", "west"), 4,
      mbPerSec(100), seconds(0.001),
      DeviceCostModel{.fixedCost = Money::zero(),
                      .costPerGB = 0.0,
                      .costPerMBps = 9'000.0,
                      .costPerShipment = 0.0});
  auto wanLinks = catalog::oc3WanLinks("wan-links", Location::at("wide-area"),
                                       4);
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(primary));
  levels.push_back(std::make_shared<RemoteMirror>(
      "campus sync mirror", MirrorMode::kSync, primary, campus, metroLinks,
      continuousMirrorPolicy()));
  levels.push_back(std::make_shared<RemoteMirror>(
      "regional asyncB mirror", MirrorMode::kAsyncBatch, primary, remote,
      wanLinks,
      ProtectionPolicy(WindowSpec{.accW = minutes(1), .propW = minutes(1)},
                       1, minutes(1))));
  return StorageDesign(
      "multi-hop DR", cs::celloWorkload(), cs::requirements(),
      std::move(levels),
      RecoveryFacilitySpec{.location = Location::at("denver", "den", "mid"),
                           .provisioningTime = hours(9),
                           .costDiscount = 0.2});
}

TEST(Composition, MultiHopSyncMirrorGivesZeroLossForArrayFailure) {
  const StorageDesign d = multiHopDesign();
  const EvaluationResult r =
      evaluate(d, FailureScenario::arrayFailure(cs::kPrimaryArrayName));
  ASSERT_TRUE(r.recovery.recoverable);
  // The sync mirror is current: zero data loss.
  EXPECT_EQ(r.recovery.dataLoss, Duration::zero());
  EXPECT_EQ(r.recovery.sourceName, "campus sync mirror");
}

TEST(Composition, MultiHopRegionalDisasterFallsBackToAsyncMirror) {
  const StorageDesign d = multiHopDesign();
  // A west-coast regional disaster takes the primary AND the campus mirror.
  const EvaluationResult r =
      evaluate(d, FailureScenario::regionDisaster("west"));
  ASSERT_TRUE(r.recovery.recoverable);
  EXPECT_EQ(r.recovery.sourceName, "regional asyncB mirror");
  EXPECT_EQ(r.recovery.dataLoss, minutes(2));
  // Replacement provisions at the Denver facility; drain crosses the WAN.
  ASSERT_EQ(r.recovery.timeline.size(), 1u);
  EXPECT_EQ(r.recovery.timeline[0].viaDevice, "wan-links");
  EXPECT_GT(r.recovery.recoveryTime, hours(5));
}

TEST(Composition, MultiHopSiteDisasterPrefersTheFresherMirror) {
  const StorageDesign d = multiHopDesign();
  const EvaluationResult r = evaluate(d, FailureScenario::siteDisaster("sf"));
  ASSERT_TRUE(r.recovery.recoverable);
  // Campus mirror (Oakland) survives an SF-only disaster and is current.
  EXPECT_EQ(r.recovery.sourceName, "campus sync mirror");
  EXPECT_EQ(r.recovery.dataLoss, Duration::zero());
}

TEST(Composition, SyncMirrorLinksSizedForPeakRate) {
  const StorageDesign d = multiHopDesign();
  const UtilizationResult u = computeUtilization(d);
  const auto* metro = u.find("metro-links");
  ASSERT_NE(metro, nullptr);
  // Peak update rate 7.8 MB/s over 4 x 100 MB/s.
  EXPECT_NEAR(metro->bwDemand.kbPerSec(), 7990.0, 1.0);
  const auto* wan = u.find("wan-links");
  ASSERT_NE(wan, nullptr);
  // Async-batch ships the coalesced 727 KB/s.
  EXPECT_NEAR(wan->bwDemand.kbPerSec(), 727.0, 1.0);
  EXPECT_TRUE(u.feasible());
}

TEST(Composition, RemoteDiskBackupConstrainedByWanTransport) {
  // Disk-to-disk backup to a *remote* nearline array over WAN links: the
  // links carry the backup stream in normal mode and throttle the restore.
  auto array = catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                          Location::at(cs::kPrimarySite));
  auto nearline = catalog::nearlineDiskArray("remote-nearline",
                                             Location::at("dr-site"));
  auto links = catalog::oc3WanLinks("backup-wan", Location::at("wide-area"),
                                    4);  // 4 x 18.5 MB/s
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<SplitMirror>("mirrors", array,
                                                 mirrorPolicy12h()));
  levels.push_back(std::make_shared<Backup>(
      "remote d2d", BackupStyle::kFullOnly, array, nearline,
      ProtectionPolicy(WindowSpec{.accW = hours(24),
                                  .propW = hours(8),
                                  .holdW = hours(1)},
                       7, weeks(1)),
      links));
  const StorageDesign d("remote-d2d", cs::celloWorkload(), cs::requirements(),
                        std::move(levels), cs::recoveryFacility());

  // Normal mode: the links carry the 1360 GB / 8 h = 48.4 MB/s stream —
  // and that EXCEEDS 4 OC-3s (74 MB/s? no: 4 x 18.477 = 73.9; 48.4 fits).
  const UtilizationResult u = computeUtilization(d);
  const auto* wan = u.find("backup-wan");
  ASSERT_NE(wan, nullptr);
  EXPECT_NEAR(wan->bwDemand.mbPerSec(), 1360.0 * 1024 / (8 * 3600), 0.5);
  EXPECT_TRUE(u.feasible());

  // Array-failure restore drains over the WAN: far slower than a local
  // library would be.
  const RecoveryResult r = computeRecovery(d, cs::arrayFailure());
  ASSERT_TRUE(r.recoverable);
  ASSERT_EQ(r.timeline.size(), 1u);
  EXPECT_EQ(r.timeline[0].viaDevice, "backup-wan");
  // Drain at ~(73.9 - 48.4) MB/s available... the backup stream stops when
  // the primary dies (its feeding mirror level died too), so the full 73.9
  // MB/s is available: 1360 GB / 73.9 MB/s ~ 5.2 h + apply 0.76 h.
  EXPECT_NEAR(r.recoveryTime.hrs(), 1360.0 * 1024 / (73.9 * 3600) + 0.78,
              0.3);

  // An over-thin pipe is flagged in normal mode: 1 link cannot carry the
  // stream.
  auto thinLinks = catalog::oc3WanLinks("backup-wan", Location::at("wide-area"),
                                        1);
  std::vector<TechniquePtr> thinLevels;
  auto array2 = catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                           Location::at(cs::kPrimarySite));
  thinLevels.push_back(std::make_shared<PrimaryCopy>(array2));
  thinLevels.push_back(std::make_shared<SplitMirror>("mirrors", array2,
                                                     mirrorPolicy12h()));
  thinLevels.push_back(std::make_shared<Backup>(
      "remote d2d", BackupStyle::kFullOnly, array2,
      catalog::nearlineDiskArray("remote-nearline", Location::at("dr-site")),
      ProtectionPolicy(WindowSpec{.accW = hours(24),
                                  .propW = hours(8),
                                  .holdW = hours(1)},
                       7, weeks(1)),
      thinLinks));
  const StorageDesign thin("thin", cs::celloWorkload(), cs::requirements(),
                           std::move(thinLevels), cs::recoveryFacility());
  EXPECT_FALSE(computeUtilization(thin).feasible());
}

TEST(Composition, BackupTransportValidation) {
  auto array = catalog::midrangeDiskArray("a", Location::at("s"));
  auto library = catalog::enterpriseTapeLibrary("l", Location::at("s"));
  auto courier = catalog::overnightAirShipment("air", Location::at("t"));
  EXPECT_THROW(Backup("b", BackupStyle::kFullOnly, array, library,
                      dailyBackupPolicy(), /*transport=*/library),
               TechniqueError);  // not a transport
  EXPECT_THROW(Backup("b", BackupStyle::kFullOnly, array, library,
                      dailyBackupPolicy(), courier),
               TechniqueError);  // couriers can't carry streams
}

TEST(Composition, BuildingScopeDistinguishesCoLocatedBuildings) {
  auto arrayB1 = catalog::midrangeDiskArray(
      cs::kPrimaryArrayName, Location::at("hq", "bldg-1", "west"));
  auto libraryB2 = catalog::enterpriseTapeLibrary(
      "tape-library", Location::at("hq", "bldg-2", "west"));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(arrayB1));
  levels.push_back(std::make_shared<SplitMirror>("mirrors", arrayB1,
                                                 mirrorPolicy12h()));
  levels.push_back(std::make_shared<Backup>("backup", BackupStyle::kFullOnly,
                                            arrayB1, libraryB2,
                                            dailyBackupPolicy()));
  const StorageDesign d("two-building", cs::celloWorkload(),
                        cs::requirements(), std::move(levels),
                        cs::recoveryFacility());

  // Building 1 burns: the library in building 2 survives and serves.
  const EvaluationResult b1 =
      evaluate(d, FailureScenario::buildingFailure("bldg-1"));
  ASSERT_TRUE(b1.recovery.recoverable);
  EXPECT_EQ(b1.recovery.sourceName, "backup");

  // The whole site burns: nothing survives on-site; no off-site level ->
  // the data is gone even though a facility exists to host replacements.
  const EvaluationResult site =
      evaluate(d, FailureScenario::siteDisaster("hq"));
  EXPECT_FALSE(site.recovery.recoverable);
}

TEST(Composition, DeepHierarchySnapshotD2dTapeVault) {
  // Four secondary levels: snapshot -> nearline D2D -> tape -> vault.
  auto array = catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                          Location::at(cs::kPrimarySite));
  auto nearline =
      catalog::nearlineDiskArray("nearline", Location::at(cs::kPrimarySite));
  auto library = catalog::enterpriseTapeLibrary(
      "tape-library", Location::at(cs::kPrimarySite));
  auto vault =
      catalog::offsiteTapeVault("tape-vault", Location::at(cs::kVaultSite));
  auto air = catalog::overnightAirShipment("air-shipment",
                                           Location::at("in-transit"));

  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  // Retention counts are non-decreasing up the hierarchy (the paper's
  // convention); the D2D level's 12 h propagation keeps its lag above the
  // snapshots' for day-old targets.
  levels.push_back(std::make_shared<VirtualSnapshot>(
      "snapshots", array,
      ProtectionPolicy(WindowSpec{.accW = hours(6)}, 8, days(2),
                       Representation::kPartial)));
  levels.push_back(std::make_shared<Backup>(
      "d2d backup", BackupStyle::kFullOnly, array, nearline,
      ProtectionPolicy(WindowSpec{.accW = hours(24),
                                  .propW = hours(12),
                                  .holdW = hours(1)},
                       8, days(8))));
  levels.push_back(std::make_shared<Backup>(
      "tape backup", BackupStyle::kFullOnly, nearline, library,
      ProtectionPolicy(WindowSpec{.accW = weeks(1),
                                  .propW = hours(24),
                                  .holdW = hours(1)},
                       8, weeks(8))));
  levels.push_back(std::make_shared<Vaulting>(
      "vaulting", library, vault, air,
      ProtectionPolicy(WindowSpec{.accW = weeks(4),
                                  .propW = hours(24),
                                  .holdW = weeks(4) + hours(12)},
                       39, years(3)),
      weeks(4)));
  const StorageDesign d("deep", cs::celloWorkload(), cs::requirements(),
                        std::move(levels), cs::recoveryFacility());

  EXPECT_TRUE(computeUtilization(d).feasible());
  EXPECT_TRUE(d.validate().empty())
      << (d.validate().empty() ? "" : d.validate()[0]);

  // Each scope walks one level deeper: snapshot for a rollback, D2D for an
  // array failure, vault for a site disaster (tape is co-located too).
  EXPECT_EQ(evaluate(d, cs::objectFailure()).recovery.sourceName,
            "snapshots");
  const EvaluationResult array_ = evaluate(d, cs::arrayFailure());
  EXPECT_EQ(array_.recovery.sourceName, "d2d backup");
  EXPECT_EQ(array_.recovery.dataLoss, hours(1 + 12 + 24));
  const EvaluationResult site = evaluate(d, cs::siteDisaster());
  EXPECT_EQ(site.recovery.sourceName, "vaulting");
  ASSERT_TRUE(site.recovery.recoverable);
  // The transit sum now crosses four levels.
  EXPECT_EQ(site.recovery.dataLoss,
            hours(1 + 12) + hours(1 + 24) +
                (weeks(4) + hours(12) + hours(24)) + weeks(4));
}

}  // namespace
}  // namespace stordep
