// Tests for the workload-generation substrate: trace invariants, generator
// statistics, the analyzer's measurements, and the cello round trip
// (generate -> analyze -> fit a WorkloadSpec with the published shape).
#include <gtest/gtest.h>

#include <cstdio>
#include <sstream>

#include "workloadgen/analyzer.hpp"
#include "workloadgen/cello.hpp"
#include "workloadgen/generator.hpp"

namespace stordep::workloadgen {
namespace {

TEST(UpdateTrace, EnforcesInvariants) {
  UpdateTrace trace(megabytes(1), kilobytes(4));
  EXPECT_EQ(trace.blockCount(), 256u);
  trace.append({.time = 1.0, .block = 0, .length = 4});
  EXPECT_THROW(trace.append({.time = 0.5, .block = 0, .length = 1}),
               TraceError);  // time goes backward
  EXPECT_THROW(trace.append({.time = 2.0, .block = 255, .length = 2}),
               TraceError);  // past the end
  EXPECT_THROW(trace.append({.time = 2.0, .block = 0, .length = 0}),
               TraceError);  // empty update
  trace.append({.time = 2.0, .block = 252, .length = 4});
  EXPECT_EQ(trace.records().size(), 2u);
  EXPECT_DOUBLE_EQ(trace.totalBytes().kilobytes(), 32.0);
  EXPECT_DOUBLE_EQ(trace.duration(), 2.0);
}

TEST(UpdateTrace, RejectsBadGeometry) {
  EXPECT_THROW(UpdateTrace(Bytes{0}, kilobytes(4)), TraceError);
  EXPECT_THROW(UpdateTrace(kilobytes(4), megabytes(1)), TraceError);
}

TEST(TraceGenerator, HitsTargetAverageRate) {
  GeneratorConfig config;
  config.objectSize = megabytes(64);
  config.avgUpdateRate = kbPerSec(500);
  config.seed = 7;
  TraceGenerator gen(config);
  const UpdateTrace trace = gen.generate(hours(2));
  const TraceAnalyzer analyzer(trace);
  EXPECT_NEAR(analyzer.averageUpdateRate().kbPerSec(), 500.0, 50.0);
}

TEST(TraceGenerator, Deterministic) {
  GeneratorConfig config;
  config.seed = 11;
  config.objectSize = megabytes(32);
  const UpdateTrace a = TraceGenerator(config).generate(minutes(30));
  const UpdateTrace b = TraceGenerator(config).generate(minutes(30));
  ASSERT_EQ(a.records().size(), b.records().size());
  for (size_t i = 0; i < a.records().size(); i += 97) {
    EXPECT_DOUBLE_EQ(a.records()[i].time, b.records()[i].time);
    EXPECT_EQ(a.records()[i].block, b.records()[i].block);
  }
  config.seed = 12;
  const UpdateTrace c = TraceGenerator(config).generate(minutes(30));
  EXPECT_NE(a.records().size(), c.records().size());
}

TEST(TraceGenerator, BurstinessShowsUpInFineBins) {
  GeneratorConfig config;
  config.objectSize = megabytes(64);
  config.burstMultiplier = 10.0;
  config.meanBurstLength = seconds(10);
  config.seed = 13;
  const UpdateTrace trace = TraceGenerator(config).generate(hours(1));
  const TraceAnalyzer analyzer(trace);
  // Peak/average over 1 s bins should be clearly bursty (several-fold),
  // while hour-scale bins smooth out.
  EXPECT_GT(analyzer.burstMultiplier(seconds(1)), 3.0);
  EXPECT_LT(analyzer.burstMultiplier(minutes(20)), 2.0);
}

TEST(TraceGenerator, Validation) {
  GeneratorConfig config;
  config.burstMultiplier = 0.5;
  EXPECT_THROW(TraceGenerator{config}, TraceError);
  config = {};
  config.workingSetFraction = 0.0;
  EXPECT_THROW(TraceGenerator{config}, TraceError);
  config = {};
  config.updateLengthBlocks = 0;
  EXPECT_THROW(TraceGenerator{config}, TraceError);
}

TEST(TraceAnalyzer, UniqueBytesSaturateWithWindow) {
  GeneratorConfig config;
  config.objectSize = megabytes(64);
  config.workingSetFraction = 0.1;
  config.zipfSkew = 0.9;
  config.seed = 17;
  const UpdateTrace trace = TraceGenerator(config).generate(hours(4));
  const TraceAnalyzer analyzer(trace);

  // batchUpdR(win) declines with the window (overwrites coalesce)...
  const Bandwidth r1 = analyzer.batchUpdateRate(minutes(1));
  const Bandwidth r2 = analyzer.batchUpdateRate(minutes(30));
  const Bandwidth r3 = analyzer.batchUpdateRate(hours(2));
  EXPECT_GT(r1.bytesPerSec(), r2.bytesPerSec());
  EXPECT_GT(r2.bytesPerSec(), r3.bytesPerSec());
  // ...and unique bytes never exceed the working set.
  EXPECT_LE(analyzer.uniqueBytesPerWindow(hours(2)).bytes(),
            megabytes(64).bytes() * 0.1 * 1.05);
}

TEST(TraceAnalyzer, WindowLongerThanTraceThrows) {
  GeneratorConfig config;
  config.objectSize = megabytes(16);
  const UpdateTrace trace = TraceGenerator(config).generate(minutes(10));
  const TraceAnalyzer analyzer(trace);
  EXPECT_THROW((void)analyzer.uniqueBytesPerWindow(hours(1)), TraceError);
  EXPECT_THROW((void)analyzer.burstMultiplier(Duration::zero()), TraceError);
}

TEST(TraceAnalyzer, FitProducesAValidWorkloadSpec) {
  GeneratorConfig config;
  config.objectSize = megabytes(128);
  config.seed = 19;
  const UpdateTrace trace = TraceGenerator(config).generate(hours(3));
  const TraceAnalyzer analyzer(trace);
  const WorkloadSpec fitted = analyzer.fitWorkload(
      "fitted", {minutes(1), minutes(10), hours(1)}, seconds(1),
      /*accessToUpdateRatio=*/1.29);
  EXPECT_EQ(fitted.dataCap(), megabytes(128));
  EXPECT_GT(fitted.burstMultiplier(), 1.0);
  EXPECT_GT(fitted.avgAccessRate().bytesPerSec(),
            fitted.avgUpdateRate().bytesPerSec());
  ASSERT_EQ(fitted.batchCurve().size(), 3u);
  // The fitted curve obeys the WorkloadSpec invariants by construction
  // (monotone, below avgUpdateR) — constructing it didn't throw.
  EXPECT_THROW((void)analyzer.fitWorkload("bad", {minutes(1)}, seconds(1), 0.5),
               TraceError);
}

TEST(CelloSubstitute, ReproducesPublishedCurveShape) {
  // Generate a scaled-down cello-like trace and verify the analyzer
  // recovers the *shape* of Table 2: ~800 KB/s updates, strong burstiness,
  // a unique-update rate around 90% at 1-minute windows that decays to
  // roughly 40-50% at long windows.
  const GeneratorConfig config =
      cello::generatorConfig(megabytes(512), /*seed=*/23);
  const UpdateTrace trace = TraceGenerator(config).generate(hours(6));
  const TraceAnalyzer analyzer(trace);

  const double avg = analyzer.averageUpdateRate().kbPerSec();
  EXPECT_NEAR(avg, 799.0, 80.0);

  const double oneMinFrac =
      analyzer.batchUpdateRate(minutes(1)).kbPerSec() / avg;
  const double longFrac =
      analyzer.batchUpdateRate(hours(3)).kbPerSec() / avg;
  // Published: 727/799 = 0.91 at 1 min; 317/799 = 0.40 saturated. The
  // scaled-down object saturates faster, so we only pin the shape.
  EXPECT_GT(oneMinFrac, 0.55);
  EXPECT_LT(longFrac, 0.5);
  EXPECT_GT(oneMinFrac, longFrac * 1.5);

  EXPECT_GT(analyzer.burstMultiplier(seconds(1)), 3.0);
}

TEST(UpdateTrace, FileRoundTrip) {
  GeneratorConfig config;
  config.objectSize = megabytes(32);
  config.seed = 31;
  const UpdateTrace original = TraceGenerator(config).generate(minutes(15));
  const std::string path = "/tmp/stordep_trace_test.txt";
  original.saveFile(path);
  const UpdateTrace reloaded = UpdateTrace::loadFile(path);
  std::remove(path.c_str());

  EXPECT_EQ(reloaded.objectSize(), original.objectSize());
  EXPECT_EQ(reloaded.blockSize(), original.blockSize());
  ASSERT_EQ(reloaded.records().size(), original.records().size());
  for (size_t i = 0; i < original.records().size(); i += 37) {
    EXPECT_NEAR(reloaded.records()[i].time, original.records()[i].time, 1e-6);
    EXPECT_EQ(reloaded.records()[i].block, original.records()[i].block);
    EXPECT_EQ(reloaded.records()[i].length, original.records()[i].length);
  }
  // The analyzer agrees on both.
  const TraceAnalyzer a(original);
  const TraceAnalyzer b(reloaded);
  EXPECT_NEAR(a.averageUpdateRate().kbPerSec(),
              b.averageUpdateRate().kbPerSec(), 0.5);
}

TEST(UpdateTrace, LoadRejectsGarbage) {
  std::istringstream notATrace("hello world");
  EXPECT_THROW((void)UpdateTrace::load(notATrace), TraceError);
  std::istringstream badHeader("# stordep-trace v9 object=1 block=1\n");
  EXPECT_THROW((void)UpdateTrace::load(badHeader), TraceError);
  std::istringstream badField("# stordep-trace v1 objekt=1 block=1\n");
  EXPECT_THROW((void)UpdateTrace::load(badField), TraceError);
  std::istringstream empty("");
  EXPECT_THROW((void)UpdateTrace::load(empty), TraceError);
  EXPECT_THROW((void)UpdateTrace::loadFile("/nonexistent/trace.txt"),
               TraceError);
  // Records violating trace invariants are rejected on load too.
  std::istringstream outOfRange(
      "# stordep-trace v1 object=4096 block=4096\n0.5 7 1\n");
  EXPECT_THROW((void)UpdateTrace::load(outOfRange), TraceError);
}

TEST(CelloSubstitute, PublishedWorkloadMatchesCaseStudy) {
  const WorkloadSpec published = cello::publishedWorkload();
  EXPECT_DOUBLE_EQ(published.dataCap().gigabytes(), 1360.0);
  EXPECT_DOUBLE_EQ(published.batchUpdateRate(hours(12)).kbPerSec(), 350.0);
  EXPECT_EQ(cello::publishedWindows().size(), 5u);
}

}  // namespace
}  // namespace stordep::workloadgen
