// End-to-end tests for the resilience layer:
//   * deterministic chaos planning (same seed -> same fault schedule) and
//     the proxy's pass-through / torn-write / truncation behaviors;
//   * the reworked base Client retry contract: no double-submit after a
//     torn response, send-failed vs response-lost classification;
//   * ResilientClient recovery through socket chaos, hedging past a
//     black-holed connection, and gapless mid-stream resume;
//   * retry backoff and circuit-breaker unit behavior on a manual clock;
//   * brown-out controller hysteresis, and the server's forced-tier
//     shedding observable over /healthz and /metrics;
//   * a client disconnect mid-NDJSON search stream cancels the worker and
//     frees its concurrency slot;
//   * a SIGKILL loop over a journaled sweep always resumes to the serial
//     ranking (torn-tail recovery under a real crashing writer);
//   * swallowed cache-insert faults are counted, not lost.
#include <gtest/gtest.h>

#include <netinet/in.h>
#include <signal.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "engine/batch.hpp"
#include "engine/eval_cache.hpp"
#include "engine/fault_injection.hpp"
#include "optimizer/search.hpp"
#include "service/client.hpp"
#include "service/json_api.hpp"
#include "service/resilience/brownout.hpp"
#include "service/resilience/chaos_proxy.hpp"
#include "service/resilience/resilient_client.hpp"
#include "service/resilience/retry.hpp"
#include "service/server.hpp"
#include "sim/rng.hpp"

namespace stordep::service::resilience {
namespace {

namespace cs = stordep::casestudy;
namespace eng = stordep::engine;
namespace opt = stordep::optimizer;
using config::Json;
using config::JsonObject;
using std::chrono::milliseconds;
using std::chrono::steady_clock;

// ---- Fixtures --------------------------------------------------------------

struct Pair {
  std::string payload;
  std::string expectedBody;
};

/// One evaluate payload plus the byte-exact response the server must
/// produce for it (serial engine over the round-tripped design, exactly as
/// the loopback service tests do it).
Pair makePair(const StorageDesign& design, const FailureScenario& scenario) {
  eng::Engine serial(eng::EngineOptions{.threads = 1});
  Pair pair;
  const Json designJson = config::designToJson(design);
  const StorageDesign roundTripped = config::designFromJson(designJson);
  Json payload{JsonObject{}};
  payload.set("design", designJson);
  payload.set("scenario", config::scenarioToJson(scenario));
  pair.payload = payload.dump();
  const eng::EvalOutcome outcome = serial.tryEvaluate(roundTripped, scenario);
  pair.expectedBody =
      outcome.ok()
          ? evaluationToJson(roundTripped, scenario, outcome.value()).dump()
          : evalErrorToJson(outcome.error()).dump();
  return pair;
}

bool waitFor(const std::function<bool()>& condition,
             milliseconds budget = milliseconds{5000}) {
  const auto deadline = steady_clock::now() + budget;
  while (steady_clock::now() < deadline) {
    if (condition()) return true;
    std::this_thread::sleep_for(milliseconds{2});
  }
  return condition();
}

// A scripted single-purpose HTTP "server": for each accepted connection it
// reads one full request (headers + Content-Length body), then writes the
// scripted bytes and closes. Counts the complete requests it observed —
// the double-submit oracle.
class ScriptedServer {
 public:
  explicit ScriptedServer(std::vector<std::string> responses)
      : responses_(std::move(responses)) {
    fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
    EXPECT_GE(fd_, 0);
    const int one = 1;
    ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    EXPECT_EQ(::listen(fd_, 8), 0);
    thread_ = std::thread([this] { run(); });
  }

  ~ScriptedServer() {
    if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
    if (thread_.joinable()) thread_.join();
    if (fd_ >= 0) ::close(fd_);
  }

  [[nodiscard]] std::uint16_t port() const noexcept { return port_; }
  [[nodiscard]] int requestsSeen() const noexcept {
    return requestsSeen_.load();
  }

 private:
  void run() {
    for (const std::string& response : responses_) {
      const int conn = ::accept(fd_, nullptr, nullptr);
      if (conn < 0) return;
      if (readFullRequest(conn)) requestsSeen_.fetch_add(1);
      if (!response.empty()) {
        (void)!::send(conn, response.data(), response.size(), MSG_NOSIGNAL);
      }
      ::close(conn);
    }
  }

  static bool readFullRequest(int conn) {
    std::string buffer;
    char chunk[1024];
    std::size_t bodyNeeded = 0;
    std::size_t headerEnd = std::string::npos;
    for (;;) {
      if (headerEnd != std::string::npos &&
          buffer.size() >= headerEnd + 4 + bodyNeeded) {
        return true;
      }
      const ssize_t got = ::recv(conn, chunk, sizeof(chunk), 0);
      if (got <= 0) return false;
      buffer.append(chunk, static_cast<std::size_t>(got));
      if (headerEnd == std::string::npos) {
        headerEnd = buffer.find("\r\n\r\n");
        if (headerEnd != std::string::npos) {
          const std::size_t at = buffer.find("Content-Length:");
          if (at != std::string::npos) {
            bodyNeeded = static_cast<std::size_t>(
                std::strtoul(buffer.c_str() + at + 15, nullptr, 10));
          }
        }
      }
    }
  }

  std::vector<std::string> responses_;
  int fd_ = -1;
  std::uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<int> requestsSeen_{0};
};

// ---- Chaos planning determinism --------------------------------------------

TEST(ChaosPlan, PureFunctionOfSeedAndConnId) {
  ChaosOptions options;
  options.seed = 42;
  options.resetProb = 0.1;
  options.stallProb = 0.1;
  options.tornWriteProb = 0.2;
  options.truncateProb = 0.1;
  options.trickleProb = 0.1;
  options.blackholeProb = 0.05;

  std::set<int> faultsSeen;
  for (std::uint64_t conn = 0; conn < 256; ++conn) {
    const ChaosDecision a = ChaosProxy::planFor(options, conn);
    const ChaosDecision b = ChaosProxy::planFor(options, conn);
    EXPECT_EQ(a.fault, b.fault);
    EXPECT_EQ(a.param, b.param);
    EXPECT_EQ(a.connId, conn);
    faultsSeen.insert(static_cast<int>(a.fault));
  }
  // With these probabilities 256 connections exercise several fault kinds
  // and leave plenty untouched.
  EXPECT_GE(faultsSeen.size(), 3u);
  EXPECT_NE(faultsSeen.count(static_cast<int>(ChaosFault::kNone)), 0u);

  // A different seed must produce a different schedule somewhere.
  ChaosOptions other = options;
  other.seed = 43;
  bool differs = false;
  for (std::uint64_t conn = 0; conn < 256 && !differs; ++conn) {
    differs = ChaosProxy::planFor(options, conn).fault !=
              ChaosProxy::planFor(other, conn).fault;
  }
  EXPECT_TRUE(differs);
}

TEST(ChaosPlan, ZeroProbabilitiesPlanNothing) {
  const ChaosOptions quiet;  // all probabilities default to 0
  for (std::uint64_t conn = 0; conn < 32; ++conn) {
    const ChaosDecision decision = ChaosProxy::planFor(quiet, conn);
    EXPECT_EQ(decision.fault, ChaosFault::kNone);
    EXPECT_FALSE(decision.applied);
  }
}

// ---- Proxy pass-through and byte fidelity ----------------------------------

TEST(ChaosProxyLoopback, QuietProxyIsTransparent) {
  Server server;
  server.start();
  ChaosProxy proxy("127.0.0.1", server.port(), ChaosOptions{});
  proxy.start();

  const Pair pair = makePair(cs::baseline(), cs::objectFailure());
  Client direct("127.0.0.1", server.port());
  Client proxied("127.0.0.1", proxy.port());

  const HttpClientResponse health = proxied.get("/healthz");
  EXPECT_EQ(health.status, 200);

  // Keep-alive: two requests over the same proxied connection.
  for (int i = 0; i < 2; ++i) {
    const HttpClientResponse viaProxy =
        proxied.post("/v1/evaluate", pair.payload);
    const HttpClientResponse reference =
        direct.post("/v1/evaluate", pair.payload);
    EXPECT_EQ(viaProxy.status, 200);
    EXPECT_EQ(viaProxy.body, reference.body);
    EXPECT_EQ(viaProxy.body, pair.expectedBody);
  }

  const ChaosProxy::Stats stats = proxy.stats();
  EXPECT_GE(stats.connections, 1u);
  EXPECT_EQ(stats.faultsInjected, 0u);
  proxy.stop();
  server.shutdown();
}

TEST(ChaosProxyLoopback, TornWritesDoNotCorruptBytes) {
  Server server;
  server.start();
  ChaosOptions options;
  options.seed = 7;
  options.tornWriteProb = 1.0;
  ChaosProxy proxy("127.0.0.1", server.port(), options);
  proxy.start();

  const Pair pair = makePair(cs::baseline(), cs::arrayFailure());
  Client proxied("127.0.0.1", proxy.port());
  const HttpClientResponse response =
      proxied.post("/v1/evaluate", pair.payload);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, pair.expectedBody);
  EXPECT_GE(proxy.stats().byFault[static_cast<int>(ChaosFault::kTornWrite)],
            1u);
  proxy.stop();
  server.shutdown();
}

TEST(ChaosProxyLoopback, TruncationFailsPlainClientResilientClientRecovers) {
  Server server;
  server.start();
  const Pair pair = makePair(cs::baseline(), cs::siteDisaster());

  {
    // Unlimited truncation: the base client's single safe retry hits a
    // second truncated connection and surfaces the transport error.
    ChaosOptions options;
    options.seed = 11;
    options.truncateProb = 1.0;
    ChaosProxy proxy("127.0.0.1", server.port(), options);
    proxy.start();
    Client plain("127.0.0.1", proxy.port());
    EXPECT_THROW((void)plain.post("/v1/evaluate", pair.payload),
                 TransportError);
    proxy.stop();
  }

  {
    // Budget 2: the resilient client's first attempt is truncated twice
    // (burning the base client's single inner retry too), then its own
    // backoff-retry passes through clean and the bytes are exact.
    ChaosOptions options;
    options.seed = 11;
    options.truncateProb = 1.0;
    options.truncateBudget = 2;
    ChaosProxy proxy("127.0.0.1", server.port(), options);
    proxy.start();
    ResilientClientOptions clientOptions;
    clientOptions.retry.baseBackoff = milliseconds{1};
    clientOptions.retry.maxBackoff = milliseconds{20};
    ResilientClient client("127.0.0.1", proxy.port(), clientOptions);
    const ResilientClient::Result result =
        client.post("/v1/evaluate", pair.payload);
    ASSERT_TRUE(result.ok());
    EXPECT_EQ(result.value().status, 200);
    EXPECT_EQ(result.value().body, pair.expectedBody);
    EXPECT_GE(client.stats().attempts, 2u);
    EXPECT_GE(client.stats().retries, 1u);

    // The audit trail matches a recomputation of the plan.
    for (const ChaosDecision& decision : proxy.decisions()) {
      const ChaosDecision replanned =
          ChaosProxy::planFor(options, decision.connId);
      EXPECT_EQ(decision.fault, replanned.fault);
      EXPECT_EQ(decision.param, replanned.param);
    }
    proxy.stop();
  }
  server.shutdown();
}

TEST(ChaosProxyLoopback, HedgeOutrunsABlackholedConnection) {
  Server server;
  server.start();
  ChaosOptions options;
  options.seed = 3;
  options.blackholeProb = 1.0;
  options.blackholeBudget = 1;  // only the primary's connection is swallowed
  options.blackholeHold = milliseconds{400};
  ChaosProxy proxy("127.0.0.1", server.port(), options);
  proxy.start();

  const Pair pair = makePair(cs::baseline(), cs::objectFailure());
  ResilientClientOptions clientOptions;
  clientOptions.hedging = true;
  clientOptions.hedgeFloor = milliseconds{15};
  clientOptions.timeout = milliseconds{3000};
  clientOptions.retry.baseBackoff = milliseconds{1};
  ResilientClient client("127.0.0.1", proxy.port(), clientOptions);

  const auto start = steady_clock::now();
  const ResilientClient::Result result =
      client.post("/v1/evaluate", pair.payload);
  const auto elapsed = steady_clock::now() - start;
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status, 200);
  EXPECT_EQ(result.value().body, pair.expectedBody);
  EXPECT_GE(client.stats().hedges, 1u);
  EXPECT_GE(client.stats().hedgeWins, 1u);
  // The hedge finished long before the black hole released the primary's
  // socket timeout would have.
  EXPECT_LT(elapsed, clientOptions.timeout);

  proxy.stop();
  // Let the abandoned primary runner observe its dead socket before the
  // stack unwinds.
  std::this_thread::sleep_for(milliseconds{50});
  server.shutdown();
}

// ---- Base client retry contract --------------------------------------------

TEST(ClientRetryContract, TornResponseOnNonIdempotentRequestIsNotResent) {
  // The scripted server answers the first (and only) request with a torn
  // response: headers promise 10 bytes, 5 arrive, then FIN.
  ScriptedServer fake({"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhello"});
  Client client("127.0.0.1", fake.port());
  try {
    (void)client.post("/submit", "{}", {}, /*idempotent=*/false);
    FAIL() << "expected TransportError";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.stage(), TransportError::Stage::kResponseTorn);
    EXPECT_FALSE(error.safeToRetry(/*idempotent=*/false));
    EXPECT_TRUE(error.safeToRetry(/*idempotent=*/true));
  }
  // The server saw the request exactly once: no blind double-submit.
  EXPECT_EQ(fake.requestsSeen(), 1);
}

TEST(ClientRetryContract, ResponseLostOnFreshConnectionIsNotResent) {
  // Full request read, zero response bytes, close: the server may have
  // applied the request, so a non-idempotent caller must not retry.
  ScriptedServer fake({""});
  Client client("127.0.0.1", fake.port());
  try {
    (void)client.post("/submit", "{}", {}, /*idempotent=*/false);
    FAIL() << "expected TransportError";
  } catch (const TransportError& error) {
    EXPECT_EQ(error.stage(), TransportError::Stage::kResponseNone);
    EXPECT_FALSE(error.reusedConnection());
    EXPECT_FALSE(error.safeToRetry(/*idempotent=*/false));
  }
  EXPECT_EQ(fake.requestsSeen(), 1);
}

TEST(ClientRetryContract, IdempotentRequestRetriesTornResponseOnce) {
  ScriptedServer fake(
      {"HTTP/1.1 200 OK\r\nContent-Length: 10\r\n\r\nhello",
       "HTTP/1.1 200 OK\r\nContent-Length: 2\r\nConnection: close\r\n\r\nok"});
  Client client("127.0.0.1", fake.port());
  const HttpClientResponse response =
      client.post("/submit", "{}", {}, /*idempotent=*/true);
  EXPECT_EQ(response.status, 200);
  EXPECT_EQ(response.body, "ok");
  EXPECT_EQ(fake.requestsSeen(), 2);
}

// ---- Backoff and circuit breaker -------------------------------------------

TEST(RetryBackoff, DecorrelatedJitterIsDeterministicAndBounded) {
  RetryPolicy policy;
  policy.baseBackoff = milliseconds{10};
  policy.maxBackoff = milliseconds{400};

  sim::Rng a(99);
  sim::Rng b(99);
  milliseconds prevA = policy.baseBackoff;
  milliseconds prevB = policy.baseBackoff;
  for (int i = 0; i < 64; ++i) {
    const milliseconds nextA = nextBackoff(policy, prevA, a);
    const milliseconds nextB = nextBackoff(policy, prevB, b);
    EXPECT_EQ(nextA, nextB);  // same rng stream -> same schedule
    EXPECT_GE(nextA, milliseconds{1});
    EXPECT_LE(nextA, policy.maxBackoff);
    prevA = nextA;
    prevB = nextB;
  }
}

TEST(CircuitBreakerUnit, OpensFailsFastHalfOpensAndRecloses) {
  CircuitBreakerOptions options;
  options.window = 8;
  options.minSamples = 4;
  options.failureRateToOpen = 0.5;
  options.openFor = milliseconds{1000};
  options.halfOpenProbes = 1;
  CircuitBreaker breaker(options);

  auto now = steady_clock::now();
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(breaker.allow(now));
    breaker.record(false, now);
  }
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // Fail-fast while open.
  EXPECT_FALSE(breaker.allow(now + milliseconds{10}));
  EXPECT_FALSE(breaker.allow(now + milliseconds{999}));
  EXPECT_EQ(breaker.shortCircuits(), 2u);

  // Open period over: one probe is admitted, a second is not.
  now += milliseconds{1001};
  EXPECT_TRUE(breaker.allow(now));
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kHalfOpen);
  EXPECT_FALSE(breaker.allow(now));

  // Probe success closes and clears the window.
  breaker.record(true, now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kClosed);
  EXPECT_NEAR(breaker.failureRate(), 0.0, 1e-12);
}

TEST(CircuitBreakerUnit, HalfOpenProbeFailureReopens) {
  CircuitBreakerOptions options;
  options.window = 4;
  options.minSamples = 2;
  options.failureRateToOpen = 0.5;
  options.openFor = milliseconds{100};
  CircuitBreaker breaker(options);

  auto now = steady_clock::now();
  ASSERT_TRUE(breaker.allow(now));
  breaker.record(false, now);
  ASSERT_TRUE(breaker.allow(now));
  breaker.record(false, now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  now += milliseconds{101};
  ASSERT_TRUE(breaker.allow(now));
  breaker.record(false, now);
  EXPECT_EQ(breaker.state(), CircuitBreaker::State::kOpen);

  // The reopened period starts from the probe failure.
  EXPECT_FALSE(breaker.allow(now + milliseconds{50}));
  EXPECT_TRUE(breaker.allow(now + milliseconds{101}));
}

TEST(CircuitBreakerUnit, StatesHaveStableNames) {
  EXPECT_STREQ(toString(CircuitBreaker::State::kClosed), "closed");
  EXPECT_STREQ(toString(CircuitBreaker::State::kOpen), "open");
  EXPECT_STREQ(toString(CircuitBreaker::State::kHalfOpen), "half-open");
}

TEST(ResilientClientUnit, DeadServerTripsTheBreakerAndFailsFast) {
  // Bind-then-close: a port with nothing listening.
  std::uint16_t deadPort = 0;
  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    ASSERT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)),
              0);
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len);
    deadPort = ntohs(addr.sin_port);
    ::close(fd);
  }

  ResilientClientOptions options;
  options.retry.maxAttempts = 2;
  options.retry.baseBackoff = milliseconds{1};
  options.retry.maxBackoff = milliseconds{5};
  options.breaker.window = 8;
  options.breaker.minSamples = 3;
  options.breaker.failureRateToOpen = 0.5;
  options.breaker.openFor = milliseconds{60'000};
  options.timeout = milliseconds{250};
  ResilientClient client("127.0.0.1", deadPort, options);

  for (int i = 0; i < 4; ++i) {
    const ResilientClient::Result result = client.get("/metrics");
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.error().code, eng::EvalErrorCode::kUnavailable);
    EXPECT_TRUE(result.error().transient);
  }
  EXPECT_EQ(client.breakerState("/metrics"), CircuitBreaker::State::kOpen);
  EXPECT_GE(client.stats().breakerShortCircuits, 1u);
}

// ---- Brown-out controller ---------------------------------------------------

TEST(BrownoutUnit, EscalatesOnSustainedPressureRecoversWithHysteresis) {
  BrownoutOptions options;
  options.ticksToEscalate = 3;
  options.ticksToRecover = 4;
  BrownoutController controller(options);

  // Two hot ticks are not enough; the third escalates.
  EXPECT_EQ(controller.tick(0.9, 0), 0);
  EXPECT_EQ(controller.tick(0.9, 0), 0);
  EXPECT_EQ(controller.tick(0.9, 0), 1);
  EXPECT_EQ(controller.transitions(), 1u);

  // Mid-band pressure resets both streaks (no flapping).
  for (int i = 0; i < 16; ++i) EXPECT_EQ(controller.tick(0.5, 0), 1);

  // Sustained cool ticks walk back down one tier.
  EXPECT_EQ(controller.tick(0.0, 0), 1);
  EXPECT_EQ(controller.tick(0.0, 0), 1);
  EXPECT_EQ(controller.tick(0.0, 0), 1);
  EXPECT_EQ(controller.tick(0.0, 0), 0);
  EXPECT_EQ(controller.transitions(), 2u);
}

TEST(BrownoutUnit, FailedWavesEscalateEvenWithShallowQueue) {
  BrownoutOptions options;
  options.ticksToEscalate = 2;
  options.failedWavesToEscalate = 3;
  BrownoutController controller(options);
  EXPECT_EQ(controller.tick(0.0, 5), 0);  // hot: failed waves, not pressure
  EXPECT_EQ(controller.tick(0.0, 5), 1);
  EXPECT_EQ(controller.tick(0.0, 5), 1);
  EXPECT_EQ(controller.tick(0.0, 5), 2);
}

TEST(BrownoutUnit, ForcePinsAndReleases) {
  BrownoutController controller;
  EXPECT_EQ(controller.tier(), 0);
  controller.force(3);
  EXPECT_EQ(controller.tier(), 3);
  const std::uint64_t afterPin = controller.transitions();
  EXPECT_GE(afterPin, 1u);
  // Ticks cannot override a pin.
  EXPECT_EQ(controller.tick(0.0, 0), 3);
  controller.force(-1);
  EXPECT_EQ(controller.tier(), 0);
}

// ---- Server brown-out tiers over the wire ----------------------------------

TEST(ServerBrownout, ForcedTiersShedAndRecoverObservably) {
  Server server;
  server.start();
  Client client("127.0.0.1", server.port());

  const Pair warm = makePair(cs::baseline(), cs::objectFailure());
  const Pair cold = makePair(cs::baseline(), cs::siteDisaster());

  // Warm one payload at tier 0.
  EXPECT_EQ(client.post("/v1/evaluate", warm.payload).status, 200);

  // Tier 1: evaluate still answers, but stochastic envelopes are shed.
  server.forceBrownoutTier(1);
  ASSERT_TRUE(waitFor([&] { return server.brownoutTier() == 1; }));
  Json stochasticPayload = Json::parse(warm.payload);
  Json stochastic{JsonObject{}};
  stochastic.set("trials", Json(8.0));
  stochastic.set("seed", Json(5.0));
  stochasticPayload.set("stochastic", stochastic);
  const HttpClientResponse tier1 =
      client.post("/v1/evaluate", stochasticPayload.dump());
  EXPECT_EQ(tier1.status, 200);
  EXPECT_NE(tier1.body.find("shed under brown-out"), std::string::npos);
  EXPECT_GE(server.metrics().shedStochastic.load(), 1u);

  // Tier 2: warm requests answer from the cache, cold ones get 503 with
  // Retry-After, searches are shed, /healthz reports degraded.
  server.forceBrownoutTier(2);
  ASSERT_TRUE(waitFor([&] { return server.brownoutTier() == 2; }));
  const HttpClientResponse health = client.get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_NE(health.body.find("degraded"), std::string::npos);

  const HttpClientResponse warmHit = client.post("/v1/evaluate", warm.payload);
  EXPECT_EQ(warmHit.status, 200);
  EXPECT_EQ(warmHit.body, warm.expectedBody);

  const HttpClientResponse coldMiss = client.post("/v1/evaluate", cold.payload);
  EXPECT_EQ(coldMiss.status, 503);
  EXPECT_NE(coldMiss.header("Retry-After"), nullptr);

  const HttpClientResponse search =
      client.post("/v1/search", "{\"top\": 1, \"streamChunk\": 64}");
  EXPECT_EQ(search.status, 503);

  const Json metrics = Json::parse(client.get("/metrics").body);
  EXPECT_EQ(metrics.at("resilience").at("brownoutTier").asNumber(), 2.0);
  EXPECT_GE(metrics.at("resilience").at("shedCold").asNumber(), 1.0);
  EXPECT_GE(metrics.at("resilience").at("brownoutTransitions").asNumber(),
            1.0);

  // Tier 3: everything sheds.
  server.forceBrownoutTier(3);
  ASSERT_TRUE(waitFor([&] { return server.brownoutTier() == 3; }));
  EXPECT_EQ(client.post("/v1/evaluate", warm.payload).status, 503);

  // Release the pin: the controller recovers to tier 0 and cold requests
  // evaluate again.
  server.forceBrownoutTier(-1);
  ASSERT_TRUE(waitFor([&] { return server.brownoutTier() == 0; }));
  const HttpClientResponse recovered =
      client.post("/v1/evaluate", cold.payload);
  EXPECT_EQ(recovered.status, 200);
  EXPECT_EQ(recovered.body, cold.expectedBody);
  server.shutdown();
}

// ---- Search peer disconnect -------------------------------------------------

TEST(ServerSearch, PeerDisconnectCancelsWorkerAndFreesSlot) {
  ServerOptions options;
  options.maxConcurrentSearches = 1;
  Server server(options);
  server.start();

  {
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    ASSERT_GE(fd, 0);
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(server.port());
    ASSERT_EQ(
        ::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
    const std::string body = "{\"streamChunk\": 1}";
    const std::string request =
        "POST /v1/search HTTP/1.1\r\nHost: localhost\r\nContent-Length: " +
        std::to_string(body.size()) + "\r\n\r\n" + body;
    ASSERT_EQ(::send(fd, request.data(), request.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(request.size()));

    // Read the head of the chunked response so the worker is known to be
    // streaming, then vanish with an RST mid-stream.
    char buffer[256];
    ASSERT_GT(::recv(fd, buffer, sizeof(buffer), 0), 0);
    const linger abort{1, 0};
    ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &abort, sizeof(abort));
    ::close(fd);
  }

  // The worker notices the broken pipe, cancels its own search, releases
  // the slot and counts the disconnect.
  ASSERT_TRUE(waitFor(
      [&] { return server.metrics().activeSearches.load() == 0; },
      milliseconds{10'000}));
  EXPECT_TRUE(waitFor(
      [&] { return server.metrics().searchPeerDisconnects.load() >= 1; },
      milliseconds{5000}));

  // The single search slot is free again: a well-behaved search succeeds.
  Client client("127.0.0.1", server.port());
  std::vector<std::string> lines;
  const HttpClientResponse response = client.postStreaming(
      "/v1/search", "{\"top\": 3, \"streamChunk\": 128}",
      [&](std::string_view line) { lines.emplace_back(line); });
  EXPECT_EQ(response.status, 200);
  ASSERT_GE(lines.size(), 2u);
  EXPECT_NE(Json::parse(lines.back()).find("result"), nullptr);
  server.shutdown();
}

// ---- Gapless streaming resume ----------------------------------------------

TEST(StreamingResume, MidStreamTruncationResumesWithoutGapsOrDuplicates) {
  Server server;
  server.start();

  // Reference stream, chaos-free. The search and its progress cadence are
  // deterministic, so the resumed stream must reproduce it line for line.
  std::vector<std::string> reference;
  {
    Client direct("127.0.0.1", server.port());
    const HttpClientResponse response = direct.postStreaming(
        "/v1/search", "{\"top\": 3, \"streamChunk\": 16}",
        [&](std::string_view line) { reference.emplace_back(line); });
    ASSERT_EQ(response.status, 200);
    ASSERT_GE(reference.size(), 3u);
  }

  ChaosOptions options;
  options.seed = 21;
  options.truncateProb = 1.0;
  options.truncateBudget = 1;
  options.truncateMaxBytes = 600;  // deep enough to cut mid-stream
  ChaosProxy proxy("127.0.0.1", server.port(), options);
  proxy.start();

  ResilientClientOptions clientOptions;
  clientOptions.retry.baseBackoff = milliseconds{1};
  ResilientClient client("127.0.0.1", proxy.port(), clientOptions);
  std::vector<std::string> streamed;
  const ResilientClient::Result result = client.postStreaming(
      "/v1/search", "{\"top\": 3, \"streamChunk\": 16}",
      [&](std::string_view line) { streamed.emplace_back(line); });
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().status, 200);
  EXPECT_GE(client.stats().attempts, 2u);  // the truncation forced a retry

  ASSERT_EQ(streamed.size(), reference.size());
  // Progress lines must match byte for byte — gapless and duplicate-free.
  for (std::size_t i = 0; i + 1 < streamed.size(); ++i) {
    EXPECT_EQ(streamed[i], reference[i]) << "line " << i;
  }
  // The result line carries wall-clock fields; compare its structure.
  const Json got = Json::parse(streamed.back());
  const Json want = Json::parse(reference.back());
  ASSERT_NE(got.find("result"), nullptr);
  for (const char* key : {"evaluated", "rankedCount", "rejectedCount",
                          "failed"}) {
    EXPECT_EQ(got.at("result").at(key).asNumber(),
              want.at("result").at(key).asNumber())
        << key;
  }
  EXPECT_EQ(got.at("result").at("top").dump(),
            want.at("result").at("top").dump());
  proxy.stop();
  server.shutdown();
}

// ---- SIGKILL torn-tail recovery ---------------------------------------------

TEST(CheckpointSigkill, KilledWriterLoopAlwaysResumesToTheSerialRanking) {
  // The full default space (a few hundred candidates): the journaled
  // sweep has to run long enough for a SIGKILL to land mid-record.
  const std::vector<opt::CandidateSpec> candidates =
      opt::enumerateDesignSpace(opt::DesignSpaceOptions{});
  const WorkloadSpec workload = cs::celloWorkload();
  const BusinessRequirements business = cs::requirements();
  const std::vector<opt::ScenarioCase> scenarios = opt::caseStudyScenarios();
  const opt::SearchResult serial =
      opt::searchDesignSpaceSerial(candidates, workload, business, scenarios);

  const std::string path =
      ::testing::TempDir() + "stordep_sigkill_journal.jsonl";
  std::filesystem::remove(path);

  // Repeatedly run the journaled sweep in a child and SIGKILL it after a
  // random slice of progress. Each round resumes whatever (possibly torn)
  // journal the previous corpse left behind. The loop ends when a child
  // survives to completion.
  std::mt19937 delays(0xC0FFEE);
  bool completed = false;
  int signaled = 0;
  for (int round = 0; round < 40 && !completed; ++round) {
    const pid_t pid = fork();
    ASSERT_NE(pid, -1);
    if (pid == 0) {
      // Child: run the sweep with per-candidate journaling, then vanish
      // without gtest teardown.
      try {
        eng::Engine engine(eng::EngineOptions{.threads = 2});
        opt::SearchOptions options;
        options.eng = &engine;
        options.checkpointPath = path;
        options.checkpointEvery = 1;
        (void)opt::searchDesignSpace(candidates, workload, business,
                                     scenarios, options);
        _exit(0);
      } catch (...) {
        _exit(2);
      }
    }
    const auto delay =
        std::chrono::microseconds{300 + static_cast<int>(delays() % 8000)};
    std::this_thread::sleep_for(delay);
    (void)kill(pid, SIGKILL);
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    ASSERT_FALSE(WIFEXITED(status) && WEXITSTATUS(status) == 2)
        << "child sweep threw";
    completed = WIFEXITED(status) && WEXITSTATUS(status) == 0;
    if (WIFSIGNALED(status)) ++signaled;
  }
  // Whether or not a child ever finished, the journal on disk (torn tail
  // and all) must resume to the exact serial ranking.
  eng::Engine fresh(eng::EngineOptions{.threads = 4});
  opt::SearchOptions resumeOptions;
  resumeOptions.eng = &fresh;
  resumeOptions.checkpointPath = path;
  const opt::SearchResult resumed = opt::searchDesignSpace(
      candidates, workload, business, scenarios, resumeOptions);
  EXPECT_FALSE(resumed.cancelled);
  EXPECT_EQ(resumed.evaluated, static_cast<int>(candidates.size()));

  ASSERT_EQ(resumed.ranked.size(), serial.ranked.size());
  ASSERT_EQ(resumed.rejected.size(), serial.rejected.size());
  for (std::size_t i = 0; i < resumed.ranked.size(); ++i) {
    EXPECT_EQ(resumed.ranked[i].label, serial.ranked[i].label);
    EXPECT_EQ(resumed.ranked[i].totalCost.raw(),
              serial.ranked[i].totalCost.raw());
    EXPECT_EQ(resumed.ranked[i].worstRecoveryTime.raw(),
              serial.ranked[i].worstRecoveryTime.raw());
    EXPECT_EQ(resumed.ranked[i].worstDataLoss.raw(),
              serial.ranked[i].worstDataLoss.raw());
  }
  // The point of the exercise: at least one writer actually died mid-run,
  // leaving a journal tail the resume above had to tolerate.
  EXPECT_GE(signaled, 1);
  std::filesystem::remove(path);
}

// ---- Swallowed cache-insert faults are counted ------------------------------

TEST(CacheInsertFaults, SwallowedInsertFaultsAreCounted) {
  eng::Engine engine(eng::EngineOptions{.threads = 2});
  eng::FaultPlan plan;
  plan.sites = eng::faultSiteBit(eng::FaultSite::kCacheInsert);
  plan.probability = 1.0;
  engine.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  // Insert faults are swallowed: the request still succeeds...
  const eng::EvalOutcome outcome =
      engine.tryEvaluate(cs::baseline(), cs::objectFailure());
  ASSERT_TRUE(outcome.ok());

  // ...but the cache kept the audit trail.
  const eng::EvalCache::Stats stats = engine.cache().stats();
  EXPECT_GE(stats.insertFailures, 1u);
  EXPECT_EQ(stats.inserts, 0u);

  // delta() propagates the counter like any other.
  eng::EvalCache::Stats then;
  EXPECT_EQ(stats.delta(then).insertFailures, stats.insertFailures);
}

}  // namespace
}  // namespace stordep::service::resilience
