// Loopback integration tests for the networked evaluation service, plus the
// per-interval metrics primitives it scrapes:
//   * a 64-connection burst over the shared cache answers bit-identically
//     to serial in-process evaluation;
//   * an expired per-request deadline returns a structured 504 carrying the
//     engine's own taxonomy code while concurrent requests complete;
//   * shutdown() drains in-flight work before the server stops;
//   * admission control (oversized jobs → 429, draining → 503), routing
//     errors, /healthz and /metrics;
//   * a verify/gen-seeded fuzz pass round-tripping random evaluate payloads
//     through the server against the in-process engine, byte for byte.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "engine/batch.hpp"
#include "engine/eval_cache.hpp"
#include "engine/fingerprint.hpp"
#include "service/client.hpp"
#include "service/json_api.hpp"
#include "service/server.hpp"
#include "verify/gen.hpp"

namespace stordep::service {
namespace {

namespace cs = stordep::casestudy;
using config::Json;
using config::JsonObject;

// ---- Per-interval metrics primitives (engine satellites) -------------------

TEST(FingerprintCountersReset, ReturnsPriorValuesAndZeroes) {
  (void)engine::fingerprintCountersReset();  // discard earlier activity
  (void)engine::fingerprintDesign(cs::baseline());
  (void)engine::fingerprintScenario(cs::arrayFailure());

  const engine::FingerprintCounters first =
      engine::fingerprintCountersReset();
  EXPECT_GE(first.designFingerprints, 1u);
  EXPECT_GE(first.scenarioFingerprints, 1u);
  EXPECT_GT(first.bytesHashed, 0u);

  // The read zeroed the counters: an immediate second read sees nothing.
  const engine::FingerprintCounters second =
      engine::fingerprintCountersReset();
  EXPECT_EQ(second.designFingerprints, 0u);
  EXPECT_EQ(second.scenarioFingerprints, 0u);
  EXPECT_EQ(second.bytesHashed, 0u);
}

TEST(EvalCacheStatsDelta, SubtractsCountersKeepsGauges) {
  engine::EvalCache::Stats then;
  then.hits = 10;
  then.misses = 4;
  then.probes = 14;
  then.inserts = 4;
  then.evictions = 1;
  then.entries = 3;
  then.capacity = 64;

  engine::EvalCache::Stats now = then;
  now.hits = 25;
  now.misses = 9;
  now.probes = 34;
  now.inserts = 9;
  now.evictions = 2;
  now.entries = 7;

  const engine::EvalCache::Stats interval = now.delta(then);
  EXPECT_EQ(interval.hits, 15u);
  EXPECT_EQ(interval.misses, 5u);
  EXPECT_EQ(interval.probes, 20u);
  EXPECT_EQ(interval.inserts, 5u);
  EXPECT_EQ(interval.evictions, 1u);
  // Gauges report the current snapshot, not a difference.
  EXPECT_EQ(interval.entries, 7u);
  EXPECT_EQ(interval.capacity, 64u);
  EXPECT_NEAR(interval.hitRate(), 15.0 / 20.0, 1e-12);
}

TEST(EvalCacheStatsDelta, ClampsBackwardCountersToZero) {
  engine::EvalCache::Stats then;
  then.hits = 50;
  engine::EvalCache::Stats now;  // e.g. taken after a clear()
  now.hits = 10;
  EXPECT_EQ(now.delta(then).hits, 0u);
}

// ---- Loopback fixtures -----------------------------------------------------

struct Pair {
  std::shared_ptr<const StorageDesign> design;
  FailureScenario scenario;
  std::string payload;       ///< request body
  std::string expectedBody;  ///< response the server must produce
};

/// The case-study what-if designs crossed with the three scenarios, each
/// with its expected single-evaluate envelope computed by a serial
/// in-process engine over the *round-tripped* design (the exact document
/// the server parses).
std::vector<Pair> makePairs() {
  engine::Engine serial(engine::EngineOptions{.threads = 1});
  std::vector<Pair> pairs;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    for (const FailureScenario& scenario :
         {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
      Pair pair;
      const Json designJson = config::designToJson(design);
      pair.design = std::make_shared<const StorageDesign>(
          config::designFromJson(designJson));
      pair.scenario = scenario;
      Json payload{JsonObject{}};
      payload.set("design", designJson);
      payload.set("scenario", config::scenarioToJson(scenario));
      pair.payload = payload.dump();
      const engine::EvalOutcome outcome =
          serial.tryEvaluate(*pair.design, scenario);
      pair.expectedBody =
          outcome.ok()
              ? evaluationToJson(*pair.design, scenario, outcome.value())
                    .dump()
              : evalErrorToJson(outcome.error()).dump();
      pairs.push_back(std::move(pair));
    }
  }
  return pairs;
}

// ---- Burst: 64 connections, bit-identical to serial ------------------------

TEST(ServiceLoopback, BurstOf64ConnectionsBitIdenticalToSerial) {
  const std::vector<Pair> pairs = makePairs();

  ServerOptions options;
  options.engineThreads = 4;
  Server server(options);
  server.start();

  constexpr int kConnections = 64;
  std::vector<std::string> bodies(kConnections);
  std::vector<int> statuses(kConnections, 0);
  std::vector<std::thread> clients;
  clients.reserve(kConnections);
  for (int i = 0; i < kConnections; ++i) {
    clients.emplace_back([&, i] {
      Client client("127.0.0.1", server.port());
      const Pair& pair = pairs[static_cast<std::size_t>(i) % pairs.size()];
      const HttpClientResponse response = client.post(
          "/v1/evaluate", pair.payload,
          {{"Content-Type", "application/json"}});
      statuses[i] = response.status;
      bodies[i] = response.body;
    });
  }
  for (std::thread& thread : clients) thread.join();

  for (int i = 0; i < kConnections; ++i) {
    const Pair& pair = pairs[static_cast<std::size_t>(i) % pairs.size()];
    EXPECT_EQ(statuses[i], 200) << "connection " << i;
    EXPECT_EQ(bodies[i], pair.expectedBody) << "connection " << i;
  }

  // The shared cache did its job: 64 requests over 21 distinct pairs means
  // most answers came from memo, not recomputation.
  const engine::EvalCache::Stats stats = server.engine().cache().stats();
  EXPECT_LE(stats.misses, pairs.size());
  EXPECT_GE(stats.hits + stats.misses, static_cast<std::uint64_t>(64));

  server.shutdown();
  EXPECT_FALSE(server.running());
}

// ---- Deadlines -------------------------------------------------------------

TEST(ServiceLoopback, ExpiredDeadlineReturns504WhileOthersComplete) {
  const std::vector<Pair> pairs = makePairs();
  ServerOptions options;
  options.engineThreads = 2;
  // A generous linger so the expired request shares a wave with live ones.
  options.batchLinger = std::chrono::microseconds{2000};
  Server server(options);
  server.start();

  std::atomic<int> okCount{0};
  std::thread expired([&] {
    Client client("127.0.0.1", server.port());
    const HttpClientResponse response =
        client.post("/v1/evaluate", pairs[0].payload,
                    {{"X-Deadline-Ms", "0"}});
    EXPECT_EQ(response.status, 504);
    const Json body = Json::parse(response.body);
    EXPECT_EQ(body.at("error").at("code").asString(),
              engine::toString(engine::EvalErrorCode::kDeadlineExceeded));
  });
  std::vector<std::thread> live;
  for (int i = 1; i <= 4; ++i) {
    live.emplace_back([&, i] {
      Client client("127.0.0.1", server.port());
      const Pair& pair = pairs[static_cast<std::size_t>(i)];
      const HttpClientResponse response =
          client.post("/v1/evaluate", pair.payload);
      EXPECT_EQ(response.status, 200);
      EXPECT_EQ(response.body, pair.expectedBody);
      okCount.fetch_add(1);
    });
  }
  expired.join();
  for (std::thread& thread : live) thread.join();
  EXPECT_EQ(okCount.load(), 4);
  EXPECT_GE(server.metrics().deadlineExpired.load(), 1u);
  server.shutdown();
}

// ---- Graceful drain --------------------------------------------------------

TEST(ServiceLoopback, ShutdownDrainsInFlightRequests) {
  const std::vector<Pair> pairs = makePairs();
  ServerOptions options;
  options.engineThreads = 2;
  // A long linger holds submitted jobs in the queue long enough for
  // shutdown() to begin while they are genuinely in flight.
  options.batchLinger = std::chrono::microseconds{50'000};
  Server server(options);
  server.start();

  constexpr int kInFlight = 8;
  std::atomic<int> answered{0};
  std::vector<std::thread> clients;
  for (int i = 0; i < kInFlight; ++i) {
    clients.emplace_back([&, i] {
      Client client("127.0.0.1", server.port());
      const Pair& pair = pairs[static_cast<std::size_t>(i) % pairs.size()];
      const HttpClientResponse response =
          client.post("/v1/evaluate", pair.payload);
      EXPECT_EQ(response.status, 200);
      EXPECT_EQ(response.body, pair.expectedBody);
      answered.fetch_add(1);
    });
  }
  // Give the clients a moment to get their requests submitted, then drain.
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  server.shutdown();
  for (std::thread& thread : clients) thread.join();

  // Every request accepted before the drain got its real answer.
  EXPECT_EQ(answered.load(), kInFlight);
  EXPECT_FALSE(server.running());
}

// ---- Admission control and routing ----------------------------------------

TEST(ServiceLoopback, OversizedJobGets429WithRetryAfter) {
  const std::vector<Pair> pairs = makePairs();
  ServerOptions options;
  options.engineThreads = 1;
  options.maxQueueSlots = 2;  // any 3-slot array request must bounce
  Server server(options);
  server.start();

  std::string array = "[";
  for (int i = 0; i < 3; ++i) {
    if (i > 0) array += ",";
    array += pairs[static_cast<std::size_t>(i)].payload;
  }
  array += "]";

  Client client("127.0.0.1", server.port());
  const HttpClientResponse response = client.post("/v1/evaluate", array);
  EXPECT_EQ(response.status, 429);
  ASSERT_NE(response.header("Retry-After"), nullptr);
  EXPECT_EQ(*response.header("Retry-After"), "1");
  EXPECT_EQ(Json::parse(response.body).at("error").at("code").asString(),
            "queue-full");

  // The connection survives an admission rejection: a within-budget
  // request on the same connection succeeds.
  const HttpClientResponse retry =
      client.post("/v1/evaluate", pairs[0].payload);
  EXPECT_EQ(retry.status, 200);
  EXPECT_GE(server.metrics().rejectedQueueFull.load(), 1u);
  server.shutdown();
}

TEST(ServiceLoopback, RoutingErrors) {
  Server server;
  server.start();
  Client client("127.0.0.1", server.port());

  EXPECT_EQ(client.get("/nope").status, 404);
  EXPECT_EQ(client.get("/v1/evaluate").status, 405);
  EXPECT_EQ(client.post("/v1/evaluate", "{\"not\": \"valid\"}").status, 400);
  EXPECT_EQ(client.post("/v1/evaluate", "this is not json").status, 400);

  const HttpClientResponse health = client.get("/healthz");
  EXPECT_EQ(health.status, 200);
  EXPECT_EQ(Json::parse(health.body).at("status").asString(), "ok");
  server.shutdown();
}

TEST(ServiceLoopback, BatchArrayRequestAndMetricsIntervals) {
  const std::vector<Pair> pairs = makePairs();
  Server server;
  server.start();
  Client client("127.0.0.1", server.port());

  std::string array =
      "[" + pairs[0].payload + "," + pairs[1].payload + "]";
  const HttpClientResponse response = client.post("/v1/evaluate", array);
  EXPECT_EQ(response.status, 200);
  const Json body = Json::parse(response.body);
  ASSERT_EQ(body.at("results").asArray().size(), 2u);
  EXPECT_EQ(body.at("results").asArray()[0].dump(),
            Json::parse(pairs[0].expectedBody).dump());
  EXPECT_EQ(body.at("stats").at("requests").asNumber(), 2.0);

  // Two consecutive scrapes: the second's interval section covers only
  // traffic since the first (none), while lifetime totals persist.
  const Json first = Json::parse(client.get("/metrics").body);
  EXPECT_GE(first.at("endpoints").at("evaluate").at("requests").asNumber(),
            1.0);
  const Json second = Json::parse(client.get("/metrics").body);
  EXPECT_EQ(second.at("evalCache").at("interval").at("probes").asNumber(),
            0.0);
  EXPECT_GE(second.at("evalCache").at("lifetime").at("probes").asNumber(),
            2.0);
  server.shutdown();
}

TEST(ServiceLoopback, SearchStreamsProgressThenResult) {
  Server server;
  server.start();
  Client client("127.0.0.1", server.port());

  std::vector<std::string> lines;
  const HttpClientResponse response = client.postStreaming(
      "/v1/search", "{\"top\": 3, \"streamChunk\": 128}",
      [&](std::string_view line) { lines.emplace_back(line); });
  EXPECT_EQ(response.status, 200);
  ASSERT_GE(lines.size(), 2u);  // at least one progress line + the result
  for (std::size_t i = 0; i + 1 < lines.size(); ++i) {
    const Json progress = Json::parse(lines[i]);
    EXPECT_NE(progress.find("progress"), nullptr) << lines[i];
  }
  const Json last = Json::parse(lines.back());
  ASSERT_NE(last.find("result"), nullptr);
  EXPECT_GT(last.at("result").at("evaluated").asNumber(), 0.0);
  EXPECT_LE(last.at("result").at("top").asArray().size(), 3u);
  server.shutdown();
}

// ---- Gen-seeded loopback fuzz ----------------------------------------------

TEST(ServiceLoopback, GenSeededPayloadsRoundTripByteExact) {
  ServerOptions options;
  options.engineThreads = 2;
  Server server(options);
  server.start();
  engine::Engine reference(engine::EngineOptions{.threads = 1});
  Client client("127.0.0.1", server.port());

  constexpr std::uint64_t kSeed = 20260806;
  for (std::uint64_t index = 0; index < 12; ++index) {
    const verify::CaseSpec spec = verify::caseForSeed(kSeed, index);
    const StorageDesign design = verify::makeDesign(spec);
    const FailureScenario scenario = verify::makeScenario(spec);

    Json payload{JsonObject{}};
    payload.set("design", config::designToJson(design));
    payload.set("scenario", config::scenarioToJson(scenario));
    const HttpClientResponse response =
        client.post("/v1/evaluate", payload.dump());

    const StorageDesign parsed =
        config::designFromJson(config::designToJson(design));
    const engine::EvalOutcome outcome =
        reference.tryEvaluate(parsed, scenario);
    if (outcome.ok()) {
      EXPECT_EQ(response.status, 200) << "case " << index;
      EXPECT_EQ(response.body,
                evaluationToJson(parsed, scenario, outcome.value()).dump())
          << "case " << index;
    } else {
      EXPECT_EQ(response.status, httpStatusFor(outcome.error().code))
          << "case " << index;
      EXPECT_EQ(response.body, evalErrorToJson(outcome.error()).dump())
          << "case " << index;
    }
  }
  server.shutdown();
}

}  // namespace
}  // namespace stordep::service
