// Tests for the batch-evaluation engine: fingerprint stability and collision
// sanity, cache LRU/stats behavior, thread-pool fan-out and exception
// propagation, and the determinism contract — engine-backed parallel
// evaluation must be bit-identical to the serial reference on the paper's
// case-study designs.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <stdexcept>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "engine/batch.hpp"
#include "engine/eval_cache.hpp"
#include "engine/fingerprint.hpp"
#include "engine/thread_pool.hpp"
#include "multiobject/portfolio.hpp"
#include "optimizer/refine.hpp"
#include "optimizer/search.hpp"

namespace stordep::engine {
namespace {

namespace cs = stordep::casestudy;
namespace opt = stordep::optimizer;

// ---- Fingerprints ----------------------------------------------------------

TEST(Fingerprint, Fnv1aKnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xCBF29CE484222325ull);
  EXPECT_EQ(fnv1a64("a"), 0xAF63DC4C8601EC8Cull);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171F73967E8ull);
}

TEST(Fingerprint, StableAcrossIndependentBuilds) {
  // Two independently materialized copies of the same design serialize and
  // fingerprint identically — the key is content, not object identity.
  const StorageDesign a = cs::baseline();
  const StorageDesign b = cs::baseline();
  EXPECT_NE(&a, &b);
  EXPECT_EQ(canonicalSerialization(a), canonicalSerialization(b));
  EXPECT_EQ(fingerprintDesign(a), fingerprintDesign(b));
  EXPECT_EQ(fingerprintScenario(cs::siteDisaster()),
            fingerprintScenario(cs::siteDisaster()));
  EXPECT_EQ(fingerprintEvaluation(a, cs::arrayFailure()),
            fingerprintEvaluation(b, cs::arrayFailure()));
}

TEST(Fingerprint, DistinguishesDesignsScenariosAndOrder) {
  const StorageDesign baseline = cs::baseline();
  const StorageDesign weekly = cs::weeklyVault();
  EXPECT_NE(fingerprintDesign(baseline), fingerprintDesign(weekly));
  EXPECT_NE(fingerprintScenario(cs::arrayFailure()),
            fingerprintScenario(cs::siteDisaster()));

  // combine() is order-sensitive: (a, b) and (b, a) must differ.
  const Fingerprint a = fingerprintDesign(baseline);
  const Fingerprint b = fingerprintScenario(cs::arrayFailure());
  EXPECT_NE(combine(a, b), combine(b, a));
}

TEST(Fingerprint, NoCollisionsAcrossTheDesignSpace) {
  // Every (candidate, scenario) pair in the default sweep keys a distinct
  // cache slot: ~200 designs x 3 scenarios, all 128-bit values unique.
  const auto candidates = opt::enumerateDesignSpace();
  const auto scenarios = opt::caseStudyScenarios();
  std::set<std::string> seen;
  for (const opt::CandidateSpec& spec : candidates) {
    const StorageDesign design =
        spec.build(cs::celloWorkload(), cs::requirements());
    const Fingerprint designFp = fingerprintDesign(design);
    for (const opt::ScenarioCase& sc : scenarios) {
      const Fingerprint key =
          combine(designFp, fingerprintScenario(sc.scenario));
      EXPECT_TRUE(seen.insert(key.toHex()).second)
          << "collision at " << spec.label() << " / " << sc.name;
    }
  }
  EXPECT_EQ(seen.size(), candidates.size() * scenarios.size());
}

TEST(Fingerprint, HexRendering) {
  const Fingerprint fp{0x0123456789ABCDEFull, 0xFEDCBA9876543210ull};
  EXPECT_EQ(fp.toHex(), "0123456789abcdeffedcba9876543210");
}

// ---- EvalCache -------------------------------------------------------------

EvaluationResult markedResult(double marker) {
  EvaluationResult result;
  result.cost.totalOutlays = Money{marker};
  return result;
}

TEST(EvalCache, HitMissInsertCounters) {
  EvalCache cache(/*capacity=*/8, /*shards=*/2);
  const Fingerprint key{1, 2};
  EXPECT_FALSE(cache.lookup(key).has_value());
  cache.insert(key, markedResult(42.0));
  const auto hit = cache.lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_DOUBLE_EQ(hit->cost.totalOutlays.usd(), 42.0);

  const EvalCache::Stats stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.inserts, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.hitRate(), 0.5);
}

TEST(EvalCache, LruEvictionAtCapacity) {
  // One shard of capacity 4 makes the eviction order fully observable.
  EvalCache cache(/*capacity=*/4, /*shards=*/1);
  for (std::uint64_t i = 0; i < 4; ++i) {
    cache.insert(Fingerprint{i, i}, markedResult(static_cast<double>(i)));
  }
  // Touch key 0 so key 1 becomes the least recently used.
  EXPECT_TRUE(cache.lookup(Fingerprint{0, 0}).has_value());
  cache.insert(Fingerprint{9, 9}, markedResult(9.0));

  EXPECT_EQ(cache.size(), 4u);
  EXPECT_EQ(cache.stats().evictions, 1u);
  EXPECT_FALSE(cache.lookup(Fingerprint{1, 1}).has_value());  // evicted
  EXPECT_TRUE(cache.lookup(Fingerprint{0, 0}).has_value());
  EXPECT_TRUE(cache.lookup(Fingerprint{9, 9}).has_value());
}

TEST(EvalCache, GetOrComputeAndClear) {
  EvalCache cache(16, 4);
  int computes = 0;
  const auto compute = [&]() {
    ++computes;
    return markedResult(7.0);
  };
  (void)cache.getOrCompute(Fingerprint{5, 5}, compute);
  (void)cache.getOrCompute(Fingerprint{5, 5}, compute);
  EXPECT_EQ(computes, 1);  // second call served from cache

  cache.clear();
  EXPECT_EQ(cache.size(), 0u);
  (void)cache.getOrCompute(Fingerprint{5, 5}, compute);
  EXPECT_EQ(computes, 2);
}

TEST(EvalCache, ShardCountRoundsToPowerOfTwo) {
  EvalCache cache(100, 3);
  EXPECT_EQ(cache.shardCount(), 4u);
  EXPECT_GE(cache.capacity(), 100u);
}

// ---- ThreadPool ------------------------------------------------------------

TEST(ThreadPoolTest, ParallelForCoversEveryIndexOnce) {
  ThreadPool pool(4);
  constexpr std::size_t kCount = 10000;
  std::vector<std::atomic<int>> touched(kCount);
  pool.parallelFor(kCount, [&](std::size_t i) {
    touched[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (std::size_t i = 0; i < kCount; ++i) {
    ASSERT_EQ(touched[i].load(), 1) << "index " << i;
  }
}

TEST(ThreadPoolTest, SubmitReturnsValueAndPropagatesException) {
  ThreadPool pool(2);
  auto ok = pool.submit([]() { return 6 * 7; });
  EXPECT_EQ(ok.get(), 42);

  auto bad = pool.submit([]() -> int {
    throw std::runtime_error("task failed");
  });
  EXPECT_THROW((void)bad.get(), std::runtime_error);

  // The pool survives a throwing task.
  auto after = pool.submit([]() { return 1; });
  EXPECT_EQ(after.get(), 1);
}

TEST(ThreadPoolTest, ParallelForRethrowsFirstException) {
  ThreadPool pool(4);
  EXPECT_THROW(
      pool.parallelFor(1000,
                       [](std::size_t i) {
                         if (i == 537) throw std::invalid_argument("boom");
                       }),
      std::invalid_argument);
  // Still usable afterwards.
  std::atomic<int> count{0};
  pool.parallelFor(64, [&](std::size_t) { ++count; });
  EXPECT_EQ(count.load(), 64);
}

TEST(ThreadPoolTest, NestedParallelForDoesNotDeadlock) {
  // A worker calling parallelFor must make progress even when every other
  // worker is busy: the calling thread participates in the loop.
  ThreadPool pool(1);
  std::atomic<int> total{0};
  auto outer = pool.submit([&]() {
    pool.parallelFor(32, [&](std::size_t) { ++total; });
    return true;
  });
  EXPECT_TRUE(outer.get());
  EXPECT_EQ(total.load(), 32);
}

// ---- Determinism: parallel + cached == serial ------------------------------

void expectBitIdentical(const EvaluationResult& a, const EvaluationResult& b) {
  EXPECT_EQ(a.recovery.recoverable, b.recovery.recoverable);
  EXPECT_EQ(a.recovery.recoveryTime.raw(), b.recovery.recoveryTime.raw());
  EXPECT_EQ(a.recovery.dataLoss.raw(), b.recovery.dataLoss.raw());
  EXPECT_EQ(a.cost.totalOutlays.raw(), b.cost.totalOutlays.raw());
  EXPECT_EQ(a.cost.totalPenalties.raw(), b.cost.totalPenalties.raw());
  EXPECT_EQ(a.cost.totalCost.raw(), b.cost.totalCost.raw());
  EXPECT_EQ(a.utilization.overallBwUtil, b.utilization.overallBwUtil);
  EXPECT_EQ(a.utilization.overallCapUtil, b.utilization.overallCapUtil);
  EXPECT_EQ(a.meetsObjectives, b.meetsObjectives);
  EXPECT_EQ(a.warnings, b.warnings);
}

TEST(Determinism, PrecomputedEvaluationMatchesPlain) {
  // The hoisted scenario-independent sub-models compose to bit-identical
  // results (the outlays-hoisting fix in optimizer::search rests on this).
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const DesignPrecomputation pre = precomputeDesign(design);
    for (const FailureScenario& scenario :
         {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
      const EvaluationResult plain = evaluate(design, scenario);
      const EvaluationResult hoisted = evaluate(design, scenario, pre);
      expectBitIdentical(plain, hoisted);
    }
  }
}

TEST(Determinism, BatchMatchesSerialOnCaseStudyDesigns) {
  // The Table 5/6/7 designs under all three scenarios: an engine batch at
  // full parallelism, twice (cold cache, then warm), against direct serial
  // evaluate() calls.
  std::vector<EvalRequest> requests;
  std::vector<EvaluationResult> serial;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    auto shared = std::make_shared<const StorageDesign>(design);
    for (const FailureScenario& scenario :
         {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
      requests.push_back(EvalRequest{shared, scenario});
      serial.push_back(evaluate(design, scenario));
    }
  }

  Engine engine(EngineOptions{.threads = 4, .cacheCapacity = 1024});
  const BatchResult cold = engine.evaluateBatch(requests);
  ASSERT_EQ(cold.results.size(), serial.size());
  EXPECT_EQ(cold.stats.requests, serial.size());
  EXPECT_EQ(cold.stats.threadsUsed, 4);
  ASSERT_TRUE(cold.allOk());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expectBitIdentical(cold.results[i].value(), serial[i]);
  }

  const BatchResult warm = engine.evaluateBatch(requests);
  EXPECT_EQ(warm.stats.cacheHits, warm.stats.requests);  // fully memoized
  EXPECT_EQ(warm.stats.evaluations, 0u);
  ASSERT_TRUE(warm.allOk());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expectBitIdentical(warm.results[i].value(), serial[i]);
  }
}

TEST(Determinism, EngineBackedSearchMatchesSerialReference) {
  // The acceptance criterion: identical ranked candidate list — same
  // labels, same Money/Duration values — from the engine-backed search and
  // the pre-engine serial path.
  const auto candidates = opt::enumerateDesignSpace();
  const auto scenarios = opt::caseStudyScenarios();

  const opt::SearchResult serial = opt::searchDesignSpaceSerial(
      candidates, cs::celloWorkload(), cs::requirements(), scenarios);

  Engine engine(EngineOptions{.threads = 4});
  // Pin the legacy cache-backed path: this test is specifically about the
  // keyed evaluate/cache machinery (plan-path parity is covered by
  // test_plan and the plan-vs-legacy oracle).
  opt::SearchOptions legacy;
  legacy.eng = &engine;
  legacy.maxRetries = 0;
  legacy.usePlan = false;
  const opt::SearchResult parallel =
      opt::searchDesignSpace(candidates, cs::celloWorkload(),
                             cs::requirements(), scenarios, legacy);
  // And a second engine-backed run, now fully cache-hot.
  const opt::SearchResult cached =
      opt::searchDesignSpace(candidates, cs::celloWorkload(),
                             cs::requirements(), scenarios, legacy);

  for (const opt::SearchResult* result : {&parallel, &cached}) {
    EXPECT_EQ(result->evaluated, serial.evaluated);
    ASSERT_EQ(result->ranked.size(), serial.ranked.size());
    ASSERT_EQ(result->rejected.size(), serial.rejected.size());
    for (std::size_t i = 0; i < serial.ranked.size(); ++i) {
      EXPECT_EQ(result->ranked[i].label, serial.ranked[i].label);
      EXPECT_EQ(result->ranked[i].totalCost.raw(),
                serial.ranked[i].totalCost.raw());
      EXPECT_EQ(result->ranked[i].outlays.raw(),
                serial.ranked[i].outlays.raw());
      EXPECT_EQ(result->ranked[i].weightedPenalties.raw(),
                serial.ranked[i].weightedPenalties.raw());
      EXPECT_EQ(result->ranked[i].worstRecoveryTime.raw(),
                serial.ranked[i].worstRecoveryTime.raw());
      EXPECT_EQ(result->ranked[i].worstDataLoss.raw(),
                serial.ranked[i].worstDataLoss.raw());
    }
  }
  EXPECT_GT(engine.cache().stats().hitRate(), 0.4);  // the re-run was free
}

TEST(Determinism, RepeatedSweepHitRate) {
  // A repeated sweep over the same space must be >= 90% cache hits (the
  // PR's headline cache criterion, scaled down to test size).
  Engine engine(EngineOptions{.threads = 2});
  const auto candidates = opt::enumerateDesignSpace();
  const auto scenarios = opt::caseStudyScenarios();
  opt::SearchOptions legacy;  // the criterion is about the cache: pin it on
  legacy.eng = &engine;
  legacy.maxRetries = 0;
  legacy.usePlan = false;
  (void)opt::searchDesignSpace(candidates, cs::celloWorkload(),
                               cs::requirements(), scenarios, legacy);
  const EvalCache::Stats before = engine.cache().stats();
  (void)opt::searchDesignSpace(candidates, cs::celloWorkload(),
                               cs::requirements(), scenarios, legacy);
  const EvalCache::Stats after = engine.cache().stats();

  const auto hits = static_cast<double>(after.hits - before.hits);
  const auto lookups = static_cast<double>((after.hits + after.misses) -
                                           (before.hits + before.misses));
  ASSERT_GT(lookups, 0.0);
  EXPECT_GE(hits / lookups, 0.9);
}

TEST(Determinism, RefineMatchesAcrossEngines) {
  // Hill climbing through a 1-thread engine and a 4-thread engine takes the
  // same steps to the same optimum.
  opt::CandidateSpec start;
  start.pit = opt::PitChoice::kSnapshot;
  start.pitAccW = hours(24);
  start.pitRetentionCount = 4;
  start.mirror = opt::MirrorChoice::kAsyncBatch;
  start.mirrorLinkCount = 10;
  ASSERT_TRUE(start.valid());

  Engine one(EngineOptions{.threads = 1});
  Engine four(EngineOptions{.threads = 4});
  const opt::RefineResult serial =
      opt::refineCandidate(start, cs::celloWorkload(), cs::requirements(),
                           opt::caseStudyScenarios(), {}, &one);
  const opt::RefineResult parallel =
      opt::refineCandidate(start, cs::celloWorkload(), cs::requirements(),
                           opt::caseStudyScenarios(), {}, &four);
  EXPECT_EQ(parallel.best.label, serial.best.label);
  EXPECT_EQ(parallel.best.totalCost.raw(), serial.best.totalCost.raw());
  EXPECT_EQ(parallel.steps, serial.steps);
  EXPECT_EQ(parallel.evaluations, serial.evaluations);
}

TEST(Determinism, PortfolioBatchMatchesSerialRecover) {
  using stordep::multiobject::ObjectSpec;
  using stordep::multiobject::Portfolio;
  using stordep::multiobject::PortfolioRecoveryResult;

  const Portfolio portfolio({
      ObjectSpec{"db", cs::baseline(), {}},
      ObjectSpec{"app", cs::weeklyVault(), {"db"}},
  });
  const std::vector<FailureScenario> scenarios{
      cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()};

  Engine engine(EngineOptions{.threads = 4});
  const std::vector<PortfolioRecoveryResult> batch =
      portfolio.recoverBatch(scenarios, &engine);
  ASSERT_EQ(batch.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    const PortfolioRecoveryResult direct = portfolio.recover(scenarios[i]);
    EXPECT_EQ(batch[i].allRecoverable, direct.allRecoverable);
    EXPECT_EQ(batch[i].totalRecoveryTime.raw(),
              direct.totalRecoveryTime.raw());
    EXPECT_EQ(batch[i].worstDataLoss.raw(), direct.worstDataLoss.raw());
    ASSERT_EQ(batch[i].objects.size(), direct.objects.size());
    for (std::size_t j = 0; j < direct.objects.size(); ++j) {
      EXPECT_EQ(batch[i].objects[j].completionTime.raw(),
                direct.objects[j].completionTime.raw());
    }
  }
}

TEST(Search, OutlaysRecordedOnceAndScenarioIndependent) {
  // The hoisting fix: a candidate's recorded outlays equal the outlays of a
  // direct evaluation under *any* scenario (they are scenario-independent),
  // and the engine computes them at most once per candidate.
  opt::CandidateSpec spec;
  spec.pit = opt::PitChoice::kSplitMirror;
  spec.backup = opt::BackupChoice::kFullOnly;
  spec.backupAccW = weeks(1);
  spec.vault = true;
  ASSERT_TRUE(spec.valid());

  Engine engine(EngineOptions{.threads = 1});
  const opt::EvaluatedCandidate candidate = opt::evaluateCandidate(
      spec, cs::celloWorkload(), cs::requirements(),
      opt::caseStudyScenarios(), &engine);

  const StorageDesign design =
      spec.build(cs::celloWorkload(), cs::requirements());
  for (const FailureScenario& scenario :
       {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
    EXPECT_EQ(evaluate(design, scenario).cost.totalOutlays.raw(),
              candidate.outlays.raw());
  }
}

}  // namespace
}  // namespace stordep::engine
