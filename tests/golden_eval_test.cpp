// golden_eval_test.cpp — golden snapshots of the case-study evaluations.
//
// Freezes the exact metric values — every bit of every double — that the
// analytic models produce for the paper's Table 5–7 designs under the three
// case-study scenarios, and demands that BOTH evaluator paths (the legacy
// composition and the compiled-plan fast path) reproduce them. Any model
// change that moves a result, however slightly, fails here and forces a
// deliberate regeneration; any divergence between the two paths fails twice.
//
// The literals are hexfloats so the snapshot is exact (no decimal rounding).
// To regenerate after an *intentional* model change: print each metric with
// printf("%a") from evaluate() and paste the new table (the row order is
// allWhatIfDesigns() × {objectFailure, arrayFailure, siteDisaster}).

#include <gtest/gtest.h>

#include <limits>
#include <string>
#include <utility>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "core/evaluator.hpp"
#include "engine/arena.hpp"
#include "engine/plan.hpp"

namespace {

namespace cs = stordep::casestudy;
using stordep::EvaluationMetrics;

constexpr double kInf = std::numeric_limits<double>::infinity();

struct GoldenRow {
  const char* design;
  const char* scenario;
  bool utilizationFeasible;
  bool recoverable;
  bool meetsObjectives;
  int sourceLevel;
  double recoveryTime;  // hours
  double dataLoss;      // hours
  double payload;       // bytes
  double totalOutlays;  // $/year
  double outagePenalty;
  double lossPenalty;
  double totalPenalties;
  double totalCost;
};

// Captured 2026-08: the paper-faithful model outputs for the seven what-if
// designs. An unrecoverable row (async batch mirror losing its only copy to
// an object failure) keeps the legacy meetsObjectives convention — no
// objective is *violated* by a scenario the design cannot recover from at
// all; infeasibility is what the optimizer rejects it on — and carries
// infinite time/penalty metrics with a zero payload.
const std::vector<GoldenRow> kGolden = {
    {"Baseline", "objectFailure", true, true, true, 1,
     0x1.063a319a8b38fp-8, 0x1.518p+15, 0x1p+20,
     0x1.7c714837e9e5p+19, 0x1.c74179ac4e267p-5, 0x1.24f8p+19,
     0x1.24f801c74179bp+19, 0x1.50b4a4ff95af6p+20},
    {"Baseline", "arrayFailure", true, true, true, 2,
     0x1.0b75555555556p+13, 0x1.7d72p+19, 0x1.54p+40,
     0x1.7c714837e9e5p+19, 0x1.d0565ed097b44p+16, 0x1.4b1dap+23,
     0x1.4ebe4cbda12f7p+23, 0x1.668561411fcdcp+23},
    {"Baseline", "siteDisaster", true, true, true, 3,
     0x1.72eeaaaaaaaabp+16, 0x1.39fd4p+22, 0x1.54p+40,
     0x1.7c714837e9e5p+19, 0x1.41fd65ed097b5p+20, 0x1.108f64p+26,
     0x1.15975997b425fp+26, 0x1.18903c2823f9cp+26},
    {"Weekly vault", "objectFailure", true, true, true, 1,
     0x1.063a319a8b38fp-8, 0x1.518p+15, 0x1p+20,
     0x1.a0b0eff2ff2ffp+19, 0x1.c74179ac4e267p-5, 0x1.24f8p+19,
     0x1.24f801c74179bp+19, 0x1.62d478dd2054dp+20},
    {"Weekly vault", "arrayFailure", true, true, true, 2,
     0x1.27982fe64c3bp+13, 0x1.7d72p+19, 0x1.54p+40,
     0x1.a0b0eff2ff2ffp+19, 0x1.0097a9945b0fbp+17, 0x1.4b1dap+23,
     0x1.4f1ffea6516c4p+23, 0x1.692b0da5815f4p+23},
    {"Weekly vault", "siteDisaster", true, true, true, 3,
     0x1.72eeaaaaaaaabp+16, 0x1.bcbap+19, 0x1.54p+40,
     0x1.a0b0eff2ff2ffp+19, 0x1.41fd65ed097b5p+20, 0x1.820c2p+23,
     0x1.aa4bccbda12f7p+23, 0x1.c456dbbcd1227p+23},
    {"Weekly vault, F+I", "objectFailure", true, true, true, 1,
     0x1.063a319a8b38fp-8, 0x1.518p+15, 0x1p+20,
     0x1.a14da842ff2ffp+19, 0x1.c74179ac4e267p-5, 0x1.24f8p+19,
     0x1.24f801c74179bp+19, 0x1.6322d5052054dp+20},
    {"Weekly vault, F+I", "arrayFailure", true, true, true, 2,
     0x1.43df48ef2206cp+13, 0x1.00a4p+18, 0x1.74a666p+40,
     0x1.a14da842ff2ffp+19, 0x1.192399fa3f509p+17, 0x1.bd8e8p+21,
     0x1.cf20b99fa3f51p+21, 0x1.1bba11d831e08p+22},
    {"Weekly vault, F+I", "siteDisaster", true, true, true, 3,
     0x1.72eeaaaaaaaabp+16, 0x1.bcbap+19, 0x1.54p+40,
     0x1.a14da842ff2ffp+19, 0x1.41fd65ed097b5p+20, 0x1.820c2p+23,
     0x1.aa4bccbda12f7p+23, 0x1.c460a741d1227p+23},
    {"Weekly vault, daily F", "objectFailure", true, true, true, 1,
     0x1.138e65067eb33p-8, 0x1.518p+15, 0x1p+20,
     0x1.b0015d2d06039p+19, 0x1.de656f642a3p-5, 0x1.24f8p+19,
     0x1.24f801de656f6p+19, 0x1.6a7caf85b5b98p+20},
    {"Weekly vault, daily F", "arrayFailure", true, true, true, 2,
     0x1.27982fe64c3bp+13, 0x1.0428p+17, 0x1.54p+40,
     0x1.b0015d2d06039p+19, 0x1.0097a9945b0fbp+17, 0x1.c3a9p+20,
     0x1.e3bbf5328b61fp+20, 0x1.5dde51e48731ep+21},
    {"Weekly vault, daily F", "siteDisaster", true, true, true, 3,
     0x1.72eeaaaaaaaabp+16, 0x1.7d72p+19, 0x1.54p+40,
     0x1.b0015d2d06039p+19, 0x1.41fd65ed097b5p+20, 0x1.4b1dap+23,
     0x1.735d4cbda12f7p+23, 0x1.8e5d6290718fbp+23},
    {"Weekly vault, daily F, snapshot", "objectFailure", true, true, true, 1,
     0x1.12ab755e3a258p-8, 0x1.518p+15, 0x1p+20,
     0x1.3ec1615d06039p+19, 0x1.dcdb72e008812p-5, 0x1.24f8p+19,
     0x1.24f801dcdb72ep+19, 0x1.31dcb19cf0bb4p+20},
    {"Weekly vault, daily F, snapshot", "arrayFailure", true, true, true, 2,
     0x1.27982fe64c3bp+13, 0x1.0428p+17, 0x1.54p+40,
     0x1.3ec1615d06039p+19, 0x1.0097a9945b0fbp+17, 0x1.c3a9p+20,
     0x1.e3bbf5328b61fp+20, 0x1.418e52f08731ep+21},
    {"Weekly vault, daily F, snapshot", "siteDisaster", true, true, true, 3,
     0x1.72eeaaaaaaaabp+16, 0x1.7d72p+19, 0x1.54p+40,
     0x1.3ec1615d06039p+19, 0x1.41fd65ed097b5p+20, 0x1.4b1dap+23,
     0x1.735d4cbda12f7p+23, 0x1.874962d3718fbp+23},
    {"AsyncB mirror, 1 link", "objectFailure", true, false, true, -1,
     kInf, kInf, 0x0p+0,
     0x1.b58734p+19, kInf, kInf, kInf, kInf},
    {"AsyncB mirror, 1 link", "arrayFailure", true, true, true, 1,
     0x1.3109cc762c915p+16, 0x1.ep+6, 0x1.54p+40,
     0x1.b58734p+19, 0x1.08ca48985c054p+20, 0x1.a0aaaaaaaaaabp+10,
     0x1.0932734306affp+20, 0x1.e3f60d4306affp+20},
    {"AsyncB mirror, 1 link", "siteDisaster", true, true, true, 1,
     0x1.3109cc762c915p+16, 0x1.ep+6, 0x1.54p+40,
     0x1.b58734p+19, 0x1.08ca48985c054p+20, 0x1.a0aaaaaaaaaabp+10,
     0x1.0932734306affp+20, 0x1.e3f60d4306affp+20},
    {"AsyncB mirror, 10 links", "objectFailure", true, false, true, -1,
     kInf, kInf, 0x0p+0,
     0x1.312c95p+22, kInf, kInf, kInf, kInf},
    {"AsyncB mirror, 10 links", "arrayFailure", true, true, true, 1,
     0x1.408832ede636dp+13, 0x1.ep+6, 0x1.54p+40,
     0x1.312c95p+22, 0x1.163d56e0499ddp+17, 0x1.a0aaaaaaaaaabp+10,
     0x1.197eac359ef32p+17, 0x1.39f88a61acf7ap+22},
    {"AsyncB mirror, 10 links", "siteDisaster", true, true, true, 1,
     0x1.126p+15, 0x1.ep+6, 0x1.54p+40,
     0x1.312c95p+22, 0x1.dc5871c71c71dp+18, 0x1.a0aaaaaaaaaabp+10,
     0x1.ddf91c71c71c8p+18, 0x1.4f0c26c71c71cp+22},
};

void expectGolden(const GoldenRow& want, const EvaluationMetrics& got,
                  const std::string& context) {
  EXPECT_EQ(got.utilizationFeasible, want.utilizationFeasible) << context;
  EXPECT_EQ(got.recoverable, want.recoverable) << context;
  EXPECT_EQ(got.meetsObjectives, want.meetsObjectives) << context;
  EXPECT_EQ(got.sourceLevel, want.sourceLevel) << context;
  // EXPECT_EQ on the raw doubles is exact equality of the bit values the
  // models produced (inf == inf holds; no NaNs appear in these tables).
  EXPECT_EQ(got.recoveryTime.raw(), want.recoveryTime) << context;
  EXPECT_EQ(got.dataLoss.raw(), want.dataLoss) << context;
  EXPECT_EQ(got.payload.raw(), want.payload) << context;
  EXPECT_EQ(got.totalOutlays.raw(), want.totalOutlays) << context;
  EXPECT_EQ(got.outagePenalty.raw(), want.outagePenalty) << context;
  EXPECT_EQ(got.lossPenalty.raw(), want.lossPenalty) << context;
  EXPECT_EQ(got.totalPenalties.raw(), want.totalPenalties) << context;
  EXPECT_EQ(got.totalCost.raw(), want.totalCost) << context;
}

class GoldenEval : public ::testing::Test {
 protected:
  static const GoldenRow& rowFor(const std::string& design,
                                 const std::string& scenario) {
    for (const GoldenRow& row : kGolden) {
      if (design == row.design && scenario == row.scenario) return row;
    }
    ADD_FAILURE() << "no golden row for " << design << " / " << scenario;
    static const GoldenRow missing{};
    return missing;
  }

  static std::vector<std::pair<std::string, stordep::FailureScenario>>
  scenarios() {
    return {{"objectFailure", cs::objectFailure()},
            {"arrayFailure", cs::arrayFailure()},
            {"siteDisaster", cs::siteDisaster()}};
  }
};

TEST_F(GoldenEval, TableCoversTheFullCaseStudyMatrix) {
  EXPECT_EQ(kGolden.size(), cs::allWhatIfDesigns().size() * 3);
}

TEST_F(GoldenEval, LegacyEvaluatorMatchesEveryFrozenValue) {
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    for (const auto& [scenarioName, scenario] : scenarios()) {
      const EvaluationMetrics got =
          stordep::summarizeEvaluation(stordep::evaluate(design, scenario));
      expectGolden(rowFor(label, scenarioName), got,
                   label + " / " + scenarioName + " (legacy)");
    }
  }
}

TEST_F(GoldenEval, CompiledPlanMatchesEveryFrozenValue) {
  stordep::engine::BumpArena arena;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const auto plan = stordep::engine::EvalPlan::compile(design);
    ASSERT_NE(plan, nullptr) << label;
    for (const auto& [scenarioName, scenario] : scenarios()) {
      const EvaluationMetrics got = plan->evaluate(scenario, arena);
      expectGolden(rowFor(label, scenarioName), got,
                   label + " / " + scenarioName + " (plan)");
    }
  }
}

}  // namespace
