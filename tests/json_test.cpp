// Tests for the JSON substrate: parsing (full grammar, errors with
// positions), document model accessors, and rendering round trips.
#include "config/json.hpp"

#include <gtest/gtest.h>

namespace stordep::config {
namespace {

TEST(Json, ParsesScalars) {
  EXPECT_TRUE(Json::parse("null").isNull());
  EXPECT_EQ(Json::parse("true").asBool(), true);
  EXPECT_EQ(Json::parse("false").asBool(), false);
  EXPECT_DOUBLE_EQ(Json::parse("42").asNumber(), 42.0);
  EXPECT_DOUBLE_EQ(Json::parse("-3.25e2").asNumber(), -325.0);
  EXPECT_EQ(Json::parse("\"hello\"").asString(), "hello");
}

TEST(Json, ParsesContainers) {
  const Json doc = Json::parse(R"({"a": [1, 2, 3], "b": {"c": "d"}})");
  ASSERT_TRUE(doc.isObject());
  const JsonArray& a = doc.at("a").asArray();
  ASSERT_EQ(a.size(), 3u);
  EXPECT_DOUBLE_EQ(a[1].asNumber(), 2.0);
  EXPECT_EQ(doc.at("b").at("c").asString(), "d");
  EXPECT_EQ(doc.find("missing"), nullptr);
  EXPECT_THROW((void)doc.at("missing"), std::runtime_error);
}

TEST(Json, ParsesNestedStructures) {
  const Json doc = Json::parse(R"([[1, [2, [3]]], {}, [], {"k": null}])");
  ASSERT_EQ(doc.asArray().size(), 4u);
  EXPECT_DOUBLE_EQ(doc.asArray()[0].asArray()[1].asArray()[1].asArray()[0]
                       .asNumber(),
                   3.0);
  EXPECT_TRUE(doc.asArray()[3].at("k").isNull());
}

TEST(Json, StringEscapes) {
  const Json doc = Json::parse(R"("line\nbreak\t\"quoted\" \\ A")");
  EXPECT_EQ(doc.asString(), "line\nbreak\t\"quoted\" \\ A");
  // Unicode beyond ASCII encodes as UTF-8.
  EXPECT_EQ(Json::parse(R"("é")").asString(), "\xC3\xA9");
  EXPECT_EQ(Json::parse(R"("€")").asString(), "\xE2\x82\xAC");
}

TEST(Json, ParseErrorsCarryPositions) {
  try {
    (void)Json::parse("{\n  \"a\": tru\n}");
    FAIL() << "expected JsonError";
  } catch (const JsonError& e) {
    EXPECT_EQ(e.line(), 2u);
  }
  EXPECT_THROW((void)Json::parse(""), JsonError);
  EXPECT_THROW((void)Json::parse("{"), JsonError);
  EXPECT_THROW((void)Json::parse("[1, 2,]"), JsonError);
  EXPECT_THROW((void)Json::parse("{\"a\" 1}"), JsonError);
  EXPECT_THROW((void)Json::parse("{1: 2}"), JsonError);
  EXPECT_THROW((void)Json::parse("\"unterminated"), JsonError);
  EXPECT_THROW((void)Json::parse("\"bad\\q\""), JsonError);
  EXPECT_THROW((void)Json::parse("\"bad\\u12g4\""), JsonError);
  EXPECT_THROW((void)Json::parse("12 34"), JsonError);  // trailing garbage
  EXPECT_THROW((void)Json::parse("nope"), JsonError);
}

TEST(Json, TypeMismatchesThrow) {
  const Json num = Json::parse("1");
  EXPECT_THROW((void)num.asString(), std::runtime_error);
  EXPECT_THROW((void)num.asArray(), std::runtime_error);
  EXPECT_THROW((void)num.asObject(), std::runtime_error);
  EXPECT_THROW((void)num.asBool(), std::runtime_error);
  EXPECT_THROW((void)Json::parse("\"s\"").asNumber(), std::runtime_error);
}

TEST(Json, DumpRoundTrips) {
  const std::string text =
      R"({"name":"baseline","n":42,"nested":{"list":[1,2.5,"x",true,null]}})";
  const Json doc = Json::parse(text);
  const Json reparsed = Json::parse(doc.dump());
  EXPECT_TRUE(doc == reparsed);
  const Json repretty = Json::parse(doc.pretty());
  EXPECT_TRUE(doc == repretty);
}

TEST(Json, PrettyIsIndentated) {
  const Json doc = Json::parse(R"({"a": [1, 2]})");
  const std::string pretty = doc.pretty();
  EXPECT_NE(pretty.find("{\n  \"a\": [\n    1,\n    2\n  ]\n}"),
            std::string::npos);
}

TEST(Json, SetBuildsObjects) {
  Json doc;  // starts null
  doc.set("a", Json(1));
  doc.set("b", Json("two"));
  doc.set("a", Json(3));  // overwrite keeps position
  ASSERT_TRUE(doc.isObject());
  ASSERT_EQ(doc.asObject().size(), 2u);
  EXPECT_EQ(doc.asObject()[0].first, "a");
  EXPECT_DOUBLE_EQ(doc.at("a").asNumber(), 3.0);
}

TEST(Json, ObjectOrderPreserved) {
  const Json doc = Json::parse(R"({"z": 1, "a": 2, "m": 3})");
  const JsonObject& object = doc.asObject();
  ASSERT_EQ(object.size(), 3u);
  EXPECT_EQ(object[0].first, "z");
  EXPECT_EQ(object[1].first, "a");
  EXPECT_EQ(object[2].first, "m");
  // And the order survives a dump/parse cycle.
  EXPECT_EQ(Json::parse(doc.dump()).asObject()[0].first, "z");
}

TEST(Json, NumbersRenderCleanly) {
  EXPECT_EQ(Json(42).dump(), "42");
  EXPECT_EQ(Json(-7).dump(), "-7");
  EXPECT_EQ(Json(2.5).dump(), "2.5");
  EXPECT_EQ(Json(1360.0 * 1024 * 1024 * 1024).dump(), "1460288880640");
}

TEST(Json, WhitespaceTolerant) {
  const Json doc = Json::parse("  \n\t{ \"a\" :\r\n [ 1 , 2 ] }  \n");
  EXPECT_EQ(doc.at("a").asArray().size(), 2u);
}

}  // namespace
}  // namespace stordep::config
