// Tests for core/propagation: transit, lag and guaranteed-range math
// (paper Sec 3.3.2, Figure 3), validated against the case study's levels.
#include "core/propagation.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/techniques/backup.hpp"
#include "devices/catalog.hpp"

namespace stordep {
namespace {

TEST(Propagation, PrimaryCopyIsCurrent) {
  const StorageDesign d = casestudy::baseline();
  EXPECT_EQ(rpTimeLag(d, 0), Duration::zero());
  EXPECT_EQ(rpTransitTime(d, 0), Duration::zero());
  const RpRange r = guaranteedRange(d, 0);
  EXPECT_EQ(r.youngestAge, Duration::zero());
  EXPECT_EQ(r.oldestAge, Duration::zero());
  EXPECT_FALSE(r.empty());
}

TEST(Propagation, BaselineSplitMirrorLevel) {
  const StorageDesign d = casestudy::baseline();
  // Split mirror: no hold/prop; lag = accW = 12 h.
  EXPECT_EQ(rpTransitTime(d, 1), Duration::zero());
  EXPECT_EQ(rpTimeLag(d, 1), hours(12));
  const RpRange r = guaranteedRange(d, 1);
  EXPECT_EQ(r.youngestAge, hours(12));
  // (retCnt-1) x cyclePer = 3 x 12 h = 36 h.
  EXPECT_EQ(r.oldestAge, hours(36));
  EXPECT_TRUE(r.covers(hours(24)));   // the object-failure rollback target
  EXPECT_FALSE(r.covers(hours(6)));   // too recent
  EXPECT_FALSE(r.covers(hours(48)));  // expired
}

TEST(Propagation, BaselineBackupLevel) {
  const StorageDesign d = casestudy::baseline();
  // Transit: split mirror (0) + backup hold 1 h + propW 48 h = 49 h.
  EXPECT_EQ(rpTransitTime(d, 2), hours(49));
  // Lag: + accW (1 wk) = 217 h — the paper's array-failure data loss.
  EXPECT_EQ(rpTimeLag(d, 2), hours(217));
  const RpRange r = guaranteedRange(d, 2);
  EXPECT_EQ(r.youngestAge, hours(217));
  // 3 retained weekly cycles + transit.
  EXPECT_EQ(r.oldestAge, hours(49) + weeks(3));
}

TEST(Propagation, BaselineVaultLevel) {
  const StorageDesign d = casestudy::baseline();
  // Transit: 49 h (through backup) + vault hold (4 wk + 12 h) + prop 24 h.
  EXPECT_EQ(rpTransitTime(d, 3), hours(49) + weeks(4) + hours(12) + hours(24));
  // Lag: + accW (4 wk) = 1429 h — the paper's site-disaster data loss.
  EXPECT_EQ(rpTimeLag(d, 3), hours(1429));
  const RpRange r = guaranteedRange(d, 3);
  // 38 retained 4-weekly cycles: just over 2.9 years of history.
  EXPECT_EQ(r.oldestAge, rpTransitTime(d, 3) + weeks(4 * 38));
  EXPECT_GT(r.oldestAge, years(2.9));
}

TEST(Propagation, WeeklyVaultShrinksLag) {
  const StorageDesign d = casestudy::weeklyVault();
  // 49 h transit through backup + 12 h hold + 24 h prop + 1 wk accW = 253 h
  // (Table 7, "Weekly vault" site DL).
  EXPECT_EQ(rpTimeLag(d, 3), hours(253));
}

TEST(Propagation, FullPlusIncrementalUsesWorstPropWAtTarget) {
  const StorageDesign d = casestudy::weeklyVaultFullPlusIncremental();
  // Backup level: hold 1 h + worst propW 48 h (the full) + daily accW 24 h
  // = 73 h (Table 7, "F+I" array DL).
  EXPECT_EQ(rpTimeLag(d, 2), hours(73));
  // Vault level rides fulls only: transit through backup = 1 + 48 h.
  EXPECT_EQ(rpTimeLag(d, 3), hours(49) + hours(12) + hours(24) + weeks(1));
  EXPECT_EQ(rpTimeLag(d, 3), hours(253));
}

TEST(Propagation, DailyFullShrinksBackupAndVaultLag) {
  const StorageDesign d = casestudy::weeklyVaultDailyFull();
  // Backup: 1 h hold + 12 h prop + 24 h accW = 37 h (Table 7 array DL).
  EXPECT_EQ(rpTimeLag(d, 2), hours(37));
  // Vault: (1+12) + (12+24) + 168 = 217 h (Table 7 site DL).
  EXPECT_EQ(rpTimeLag(d, 3), hours(217));
}

TEST(Propagation, ConservativeLagMatchesPaperForSimplePolicies) {
  const StorageDesign d = casestudy::baseline();
  for (int level = 0; level < d.levelCount(); ++level) {
    EXPECT_EQ(rpTimeLagConservative(d, level).secs(),
              rpTimeLag(d, level).secs())
        << level;
  }
}

TEST(Propagation, CaptureSlackIsZeroForGridConformingDesigns) {
  // Every case-study hierarchy keeps each level's creation grid on the
  // upstream arrival grid (weekly backups over 12 h mirror cycles, 4-weekly
  // vaults over weekly backups), so no capture staleness is charged and the
  // conservative bound is unchanged by the slack term.
  for (const StorageDesign& d :
       {casestudy::baseline(), casestudy::weeklyVault(),
        casestudy::weeklyVaultFullPlusIncremental(),
        casestudy::weeklyVaultDailyFull()}) {
    for (int level = 0; level < d.levelCount(); ++level) {
      EXPECT_EQ(rpCaptureSlack(d, level), Duration::zero()) << level;
    }
  }
}

TEST(Propagation, ConservativeLagCoversTheCyclicDeadZone) {
  const StorageDesign d = casestudy::weeklyVaultFullPlusIncremental();
  // Paper-style lag: 1 + 48 + 24 = 73 h. The true worst case includes the
  // end-of-cycle gap: 1 + 12 + (168 - 120 + 24) = 85 h, exactly what the
  // failure-injection simulator observes (EXPERIMENTS.md).
  EXPECT_EQ(rpTimeLag(d, 2), hours(73));
  EXPECT_EQ(rpTimeLagConservative(d, 2), hours(85));
  // Conservative never undercuts the paper's formula.
  for (int level = 1; level < d.levelCount(); ++level) {
    EXPECT_GE(rpTimeLagConservative(d, level).secs(),
              rpTimeLag(d, level).secs())
        << level;
  }
}

TEST(Propagation, WorstArrivalGapReducesToAccWForSimplePolicies) {
  const ProtectionPolicy simple(
      WindowSpec{.accW = hours(24), .propW = hours(6), .holdW = hours(1)}, 4,
      weeks(4));
  EXPECT_EQ(simple.worstArrivalGap(), hours(24));
  // F+I: the weekend gap spans (168 - 120) + 24 = 72 h.
  const ProtectionPolicy cyclic(
      WindowSpec{.accW = weeks(1), .propW = hours(48), .holdW = hours(1)},
      WindowSpec{.accW = hours(24), .propW = hours(12), .holdW = hours(1)}, 5,
      weeks(1), 4, weeks(4));
  EXPECT_EQ(cyclic.worstArrivalGap(), hours(72));
  // A dense cycle (6 daily incrementals, weekly full) shrinks the gap.
  const ProtectionPolicy dense(
      WindowSpec{.accW = weeks(1), .propW = hours(48), .holdW = hours(1)},
      WindowSpec{.accW = hours(24), .propW = hours(12), .holdW = hours(1)}, 6,
      weeks(1), 4, weeks(4));
  EXPECT_LT(dense.worstArrivalGap(), cyclic.worstArrivalGap());
  // Never below the plain inter-RP spacing.
  EXPECT_GE(dense.worstArrivalGap(), dense.effectiveAccW());
}

TEST(Propagation, AsyncBatchMirrorLagIsTwoMinutes) {
  const StorageDesign d = casestudy::asyncBatchMirror(1);
  // accW + propW = 2 min = 0.03 hr (Table 7 AsyncB DL).
  EXPECT_EQ(rpTimeLag(d, 1), minutes(2));
  // A single retained RP: the guaranteed range is empty (an RP exists but
  // its age floats within one window).
  EXPECT_TRUE(guaranteedRange(d, 1).empty());
}

TEST(Propagation, RangesNestUpTheHierarchy) {
  // Higher levels hold older data: youngest age grows with the level.
  const StorageDesign d = casestudy::baseline();
  Duration prevYoungest = Duration::zero();
  for (int i = 0; i < d.levelCount(); ++i) {
    const RpRange r = guaranteedRange(d, i);
    EXPECT_GE(r.youngestAge, prevYoungest) << "level " << i;
    prevYoungest = r.youngestAge;
  }
  // And the deepest level's history extends furthest back.
  EXPECT_GT(guaranteedRange(d, 3).oldestAge, guaranteedRange(d, 2).oldestAge);
  EXPECT_GT(guaranteedRange(d, 2).oldestAge, guaranteedRange(d, 1).oldestAge);
}

TEST(Propagation, InvalidLevelThrows) {
  const StorageDesign d = casestudy::baseline();
  EXPECT_THROW((void)rpTransitTime(d, -1), DesignError);
  EXPECT_THROW((void)rpTransitTime(d, 99), DesignError);
}

// Property sweep: lag decomposition holds across a grid of window shapes —
// lag == transit + effective accW, and the range bounds are consistent.
struct LagCase {
  double accH, propH, holdH;
  int retCnt;
};

class LagSweep : public ::testing::TestWithParam<LagCase> {};

TEST_P(LagSweep, LagDecomposition) {
  const auto& c = GetParam();
  auto array = catalog::midrangeDiskArray("a", Location::at("s"));
  auto lib = catalog::enterpriseTapeLibrary("l", Location::at("s"));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<Backup>(
      "b", BackupStyle::kFullOnly, array, lib,
      ProtectionPolicy(WindowSpec{.accW = hours(c.accH),
                                  .propW = hours(c.propH),
                                  .holdW = hours(c.holdH)},
                       c.retCnt, hours(c.accH * c.retCnt))));
  const StorageDesign d("sweep", casestudy::celloWorkload(),
                        caseStudyRequirements(), std::move(levels));
  EXPECT_DOUBLE_EQ(rpTimeLag(d, 1).hrs(), c.holdH + c.propH + c.accH);
  const RpRange r = guaranteedRange(d, 1);
  EXPECT_DOUBLE_EQ(r.youngestAge.hrs(), c.holdH + c.propH + c.accH);
  EXPECT_DOUBLE_EQ(r.oldestAge.hrs(),
                   c.holdH + c.propH + (c.retCnt - 1) * c.accH);
  EXPECT_EQ(r.empty(), c.retCnt == 1);
}

INSTANTIATE_TEST_SUITE_P(
    WindowGrid, LagSweep,
    ::testing::Values(LagCase{24, 12, 1, 4}, LagCase{168, 48, 1, 4},
                      LagCase{12, 6, 0, 2}, LagCase{24, 24, 24, 1},
                      LagCase{6, 1, 2, 10}, LagCase{48, 12, 6, 3}));

}  // namespace
}  // namespace stordep
