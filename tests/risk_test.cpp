// Tests for core/risk: frequency-weighted expected annual cost across a
// failure-mode portfolio.
#include "core/risk.hpp"

#include <gtest/gtest.h>

#include <cmath>

#include "casestudy/casestudy.hpp"

namespace stordep {
namespace {

namespace cs = casestudy;

TEST(Risk, DefaultModesCoverTheCaseStudy) {
  const auto modes = cs::defaultFailureModes();
  ASSERT_EQ(modes.size(), 3u);
  EXPECT_DOUBLE_EQ(modes[0].annualFrequency, 12.0);
  EXPECT_DOUBLE_EQ(modes[1].annualFrequency, 0.1);
  EXPECT_DOUBLE_EQ(modes[2].annualFrequency, 0.02);
}

TEST(Risk, ExpectedCostCombinesOutlaysAndWeightedPenalties) {
  const StorageDesign d = cs::baseline();
  const RiskAssessment risk = assessRisk(d, cs::defaultFailureModes());
  ASSERT_EQ(risk.modes.size(), 3u);
  EXPECT_DOUBLE_EQ(risk.unrecoverableFrequency, 0.0);

  // Per-event penalties match the direct evaluation.
  const auto object = evaluate(d, cs::objectFailure());
  EXPECT_NEAR(risk.modes[0].penaltyPerEvent.usd(),
              object.cost.totalPenalties.usd(), 1.0);
  EXPECT_NEAR(risk.modes[0].expectedAnnualPenalty.usd(),
              12.0 * object.cost.totalPenalties.usd(), 1.0);

  // Total = outlays + sum of expected penalties.
  Money sum = risk.annualOutlays;
  for (const auto& m : risk.modes) sum += m.expectedAnnualPenalty;
  EXPECT_NEAR(risk.expectedAnnualCost.usd(), sum.usd(), 1.0);

  // With these rates, the monthly corruptions dominate the expectation:
  // 12 x $0.6M ~ $7.2M/yr vs 0.1 x $11M and 0.02 x $73M.
  EXPECT_GT(risk.modes[0].expectedAnnualPenalty,
            risk.modes[1].expectedAnnualPenalty);
  EXPECT_GT(risk.modes[0].expectedAnnualPenalty,
            risk.modes[2].expectedAnnualPenalty);
}

TEST(Risk, ExpectedDowntimeAccumulates) {
  const StorageDesign d = cs::baseline();
  const RiskAssessment risk = assessRisk(d, cs::defaultFailureModes());
  // 12 x ~0 h + 0.1 x 2.4 h + 0.02 x 26.4 h ~ 0.77 h/yr.
  EXPECT_NEAR(risk.expectedAnnualDowntimeHours, 0.77, 0.05);
}

TEST(Risk, UnrecoverableModePoisonsTheExpectation) {
  // Mirror-only design cannot serve the rollback mode.
  const StorageDesign d = cs::asyncBatchMirror(1);
  const RiskAssessment risk = assessRisk(d, cs::defaultFailureModes());
  EXPECT_DOUBLE_EQ(risk.unrecoverableFrequency, 12.0);
  EXPECT_TRUE(std::isinf(risk.expectedAnnualCost.usd()));
  EXPECT_FALSE(risk.modes[0].recoverable);
  EXPECT_TRUE(risk.modes[1].recoverable);
  // Outlays remain finite and reported.
  EXPECT_TRUE(risk.annualOutlays.isFinite());
}

TEST(Risk, ZeroFrequencyModeContributesNothing) {
  const StorageDesign d = cs::baseline();
  std::vector<FailureMode> modes = cs::defaultFailureModes();
  modes[2].annualFrequency = 0.0;
  const RiskAssessment risk = assessRisk(d, modes);
  EXPECT_DOUBLE_EQ(risk.modes[2].expectedAnnualPenalty.usd(), 0.0);
}

TEST(Risk, RejectsNegativeFrequencies) {
  const StorageDesign d = cs::baseline();
  std::vector<FailureMode> modes = cs::defaultFailureModes();
  modes[0].annualFrequency = -1.0;
  EXPECT_THROW((void)assessRisk(d, modes), DesignError);
}

TEST(Risk, RanksDesignsByExpectedCost) {
  // Under frequency weighting, the daily-full design beats the baseline
  // (cheaper array-failure penalties at slightly higher outlays) — and the
  // mirror-only designs are disqualified by the corruption mode.
  const RiskAssessment base =
      assessRisk(cs::baseline(), cs::defaultFailureModes());
  const RiskAssessment daily =
      assessRisk(cs::weeklyVaultDailyFull(), cs::defaultFailureModes());
  const RiskAssessment mirror =
      assessRisk(cs::asyncBatchMirror(1), cs::defaultFailureModes());
  EXPECT_LT(daily.expectedAnnualCost.usd(), base.expectedAnnualCost.usd());
  EXPECT_TRUE(std::isinf(mirror.expectedAnnualCost.usd()));
}

}  // namespace
}  // namespace stordep
