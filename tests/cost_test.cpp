// Tests for core/cost: outlay attribution (fixed costs to the primary
// technique, incremental costs to secondaries, spares proportional) and
// penalty computation (paper Sec 3.3.5, Figure 5, Table 7).
#include "core/cost.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/evaluator.hpp"

namespace stordep {
namespace {

using casestudy::arrayFailure;
using casestudy::baseline;
using casestudy::objectFailure;
using casestudy::siteDisaster;

CostResult baselineCosts(const FailureScenario& scenario) {
  const StorageDesign d = baseline();
  return computeCosts(d, computeRecovery(d, scenario));
}

TEST(Cost, PenaltyIsRateTimesTime) {
  const CostResult c = baselineCosts(arrayFailure());
  // Paper Table 7 baseline array failure: penalties $10.97M
  // ((2.4 + 217) hr x $50k/hr).
  EXPECT_NEAR(c.lossPenalty.millionUsd(), 217 * 0.05, 1e-6);
  EXPECT_NEAR(c.outagePenalty.millionUsd(), 2.4 * 0.05, 0.01);
  EXPECT_NEAR(c.totalPenalties.millionUsd(), 10.97, 0.02);
}

TEST(Cost, SitePenaltiesDominatedByDataLoss) {
  const CostResult c = baselineCosts(siteDisaster());
  // (26.4 + 1429) hr x $50k/hr ~ $72.8M. (The paper prints $70.97M, which
  // is inconsistent with its own RT/DL figures; see EXPERIMENTS.md.)
  EXPECT_NEAR(c.lossPenalty.millionUsd(), 1429 * 0.05, 1e-6);
  EXPECT_NEAR(c.totalPenalties.millionUsd(), 72.8, 0.1);
  EXPECT_GT(c.lossPenalty.usd(), 50 * c.outagePenalty.usd());
}

TEST(Cost, ObjectFailurePenaltiesAreSmall) {
  const CostResult c = baselineCosts(objectFailure());
  // 12 h loss x $50k = $0.6M; recovery is sub-second.
  EXPECT_NEAR(c.lossPenalty.millionUsd(), 0.6, 1e-6);
  EXPECT_LT(c.outagePenalty.usd(), 1.0);
}

TEST(Cost, OutlaysIndependentOfScenario) {
  const CostResult a = baselineCosts(arrayFailure());
  const CostResult b = baselineCosts(siteDisaster());
  EXPECT_DOUBLE_EQ(a.totalOutlays.usd(), b.totalOutlays.usd());
}

TEST(Cost, BaselineOutlayBreakdownMatchesFigure5Shape) {
  const CostResult c = baselineCosts(arrayFailure());
  // Figure 5: outlays split roughly evenly between foreground, split
  // mirroring and tape backup, with negligible vaulting.
  const auto* fg = c.find("foreground workload");
  const auto* sm = c.find("split mirror");
  const auto* bk = c.find("tape backup");
  const auto* vt = c.find("remote vaulting");
  ASSERT_NE(fg, nullptr);
  ASSERT_NE(sm, nullptr);
  ASSERT_NE(bk, nullptr);
  ASSERT_NE(vt, nullptr);
  // Foreground: array fixed + its capacity, doubled by the dedicated spare.
  EXPECT_NEAR(fg->total().usd(), 2 * (123'297 + 1360 * 17.2), 5.0);
  // Split mirror: 5 x 1360 GB of array capacity, doubled by the spare.
  EXPECT_NEAR(sm->total().usd(), 2 * (6800 * 17.2), 5.0);
  // Tape backup: the whole library (fixed + media + drives), doubled.
  EXPECT_NEAR(bk->total().usd(), 2 * (98'895 + 6800 * 0.4 + 8.06 * 108.6),
              20.0);
  // Vaulting: vault capacity + 13 shipments, no spare.
  EXPECT_NEAR(vt->total().usd(), 25'000 + 39 * 1360 * 0.4 + 50 * 365.0 / 28,
              5.0);
  // "Roughly evenly": each of the big three within a factor ~2 of the
  // others; vaulting negligible.
  EXPECT_LT(fg->total().usd() / bk->total().usd(), 2.0);
  EXPECT_LT(bk->total().usd() / sm->total().usd(), 2.0);
  EXPECT_LT(vt->total().usd(), 0.25 * sm->total().usd());
  // Total ~ $0.78M against the paper's $0.97M (unpublished facilities
  // costs account for the gap; the split is what matters).
  EXPECT_NEAR(c.totalOutlays.millionUsd(), 0.78, 0.02);
}

TEST(Cost, SecondaryTechniqueChargedIncrementallyOnly) {
  // The split mirror shares the primary array: it must not be charged the
  // array's fixed cost, only its own capacity (plus spare share).
  const CostResult c = baselineCosts(arrayFailure());
  const auto* sm = c.find("split mirror");
  ASSERT_NE(sm, nullptr);
  EXPECT_NEAR(sm->deviceOutlay.usd(), 6800 * 17.2, 1.0);
  EXPECT_GT(sm->spareOutlay.usd(), 0.0);
}

TEST(Cost, SpareSharesAreProportional) {
  const CostResult c = baselineCosts(arrayFailure());
  const auto* fg = c.find("foreground workload");
  const auto* sm = c.find("split mirror");
  ASSERT_NE(fg, nullptr);
  ASSERT_NE(sm, nullptr);
  // Dedicated spare at 1x: every technique's spare share equals its direct
  // share on that device.
  EXPECT_NEAR(fg->spareOutlay.usd(), fg->deviceOutlay.usd(), 1e-6);
  EXPECT_NEAR(sm->spareOutlay.usd(), sm->deviceOutlay.usd(), 1e-6);
}

TEST(Cost, AsyncBatchOutlaysMatchTable7) {
  // Table 7: 1 link $0.93M, 10 links $5.03M.
  const StorageDesign one = casestudy::asyncBatchMirror(1);
  const CostResult c1 = computeCosts(one, computeRecovery(one, arrayFailure()));
  EXPECT_NEAR(c1.totalOutlays.millionUsd(), 0.93, 0.05);
  const StorageDesign ten = casestudy::asyncBatchMirror(10);
  const CostResult c10 =
      computeCosts(ten, computeRecovery(ten, arrayFailure()));
  EXPECT_NEAR(c10.totalOutlays.millionUsd(), 5.03, 0.15);
}

TEST(Cost, AsyncBatchTotalsMatchTable7) {
  // The paper's punchline: the cheap 1-link mirror has the lowest total
  // cost despite its much longer recovery, because outlays dominate.
  const StorageDesign one = casestudy::asyncBatchMirror(1);
  const CostResult c1 = computeCosts(one, computeRecovery(one, arrayFailure()));
  EXPECT_NEAR(c1.totalPenalties.millionUsd(), 1.09, 0.06);
  EXPECT_NEAR(c1.totalCost.millionUsd(), 2.01, 0.1);

  const StorageDesign ten = casestudy::asyncBatchMirror(10);
  const CostResult c10 =
      computeCosts(ten, computeRecovery(ten, arrayFailure()));
  EXPECT_NEAR(c10.totalPenalties.millionUsd(), 0.14, 0.02);
  EXPECT_NEAR(c10.totalCost.millionUsd(), 5.18, 0.15);
  EXPECT_LT(c1.totalCost, c10.totalCost);
}

TEST(Cost, UnrecoverableScenarioHasInfinitePenalty) {
  const StorageDesign d = casestudy::asyncBatchMirror(1);
  // The mirror cannot serve a 24 h rollback: infinite loss -> infinite cost.
  const CostResult c = computeCosts(d, computeRecovery(d, objectFailure()));
  EXPECT_TRUE(std::isinf(c.lossPenalty.usd()));
  EXPECT_TRUE(std::isinf(c.totalCost.usd()));
  EXPECT_TRUE(c.totalOutlays.isFinite());
}

TEST(Cost, SnapshotVariantCheaperThanSplitMirrors) {
  // Table 7: snapshots save ~$0.25M/yr over split mirrors (array capacity
  // plus its mirrored spare).
  const StorageDesign mirror = casestudy::weeklyVaultDailyFull();
  const StorageDesign snap = casestudy::weeklyVaultDailyFullSnapshot();
  const CostResult cm =
      computeCosts(mirror, computeRecovery(mirror, arrayFailure()));
  const CostResult cs =
      computeCosts(snap, computeRecovery(snap, arrayFailure()));
  EXPECT_NEAR(cm.totalOutlays.usd() - cs.totalOutlays.usd(),
              2 * (6800 - 56) * 17.2, 2'000.0);
  EXPECT_LT(cs.totalOutlays, cm.totalOutlays);
}

TEST(Cost, FindReturnsNullForUnknownTechnique) {
  const CostResult c = baselineCosts(arrayFailure());
  EXPECT_EQ(c.find("nonexistent"), nullptr);
}

}  // namespace
}  // namespace stordep
