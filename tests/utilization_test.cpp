// Tests for core/utilization: per-device and global normal-mode utilization
// (paper Sec 3.3.1), validated against Table 5.
#include "core/utilization.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/split_mirror.hpp"
#include "devices/catalog.hpp"

namespace stordep {
namespace {

TEST(Utilization, BaselineMatchesTable5) {
  const UtilizationResult u = computeUtilization(casestudy::baseline());
  ASSERT_TRUE(u.feasible());

  const DeviceUtilization* array = u.find(casestudy::kPrimaryArrayName);
  ASSERT_NE(array, nullptr);
  // Table 5 disk-array rows.
  ASSERT_EQ(array->shares.size(), 3u);
  EXPECT_EQ(array->shares[0].technique, "foreground workload");
  EXPECT_NEAR(array->shares[0].bwUtil, 0.002, 0.0003);
  EXPECT_NEAR(array->shares[0].capUtil, 0.146, 0.001);
  EXPECT_EQ(array->shares[1].technique, "split mirror");
  EXPECT_NEAR(array->shares[1].bwUtil, 0.006, 0.0005);
  EXPECT_NEAR(array->shares[1].capUtil, 0.728, 0.001);
  EXPECT_EQ(array->shares[2].technique, "tape backup");
  EXPECT_NEAR(array->shares[2].bwUtil, 0.016, 0.001);
  EXPECT_NEAR(array->shares[2].capUtil, 0.0, 1e-12);
  // Overall array row: 2.4% bandwidth (12.4 MB/s), 87.4% capacity (~8 TB).
  EXPECT_NEAR(array->bwUtil, 0.024, 0.001);
  EXPECT_NEAR(array->bwDemand.mbPerSec(), 12.4, 0.3);
  EXPECT_NEAR(array->capUtil, 0.874, 0.001);
  EXPECT_NEAR(array->capDemand.terabytes(), 8.0, 0.05);

  const DeviceUtilization* lib = u.find("tape-library");
  ASSERT_NE(lib, nullptr);
  // Table 5 tape-library row: 3.4% bandwidth (8.1 MB/s), 3.4% capacity.
  EXPECT_NEAR(lib->bwUtil, 0.034, 0.001);
  EXPECT_NEAR(lib->bwDemand.mbPerSec(), 8.1, 0.1);
  EXPECT_NEAR(lib->capUtil, 0.034, 0.001);
  EXPECT_NEAR(lib->capDemand.terabytes(), 6.6, 0.05);

  const DeviceUtilization* vault = u.find("tape-vault");
  ASSERT_NE(vault, nullptr);
  // Table 5 vault row: 2.6% capacity (51.8 TB), no bandwidth.
  EXPECT_NEAR(vault->capUtil, 0.026, 0.001);
  EXPECT_NEAR(vault->capDemand.terabytes(), 51.8, 0.1);
  EXPECT_DOUBLE_EQ(vault->bwUtil, 0.0);

  // Global: capacity pinned by the array, bandwidth by the tape library.
  EXPECT_EQ(u.maxCapDevice, casestudy::kPrimaryArrayName);
  EXPECT_NEAR(u.overallCapUtil, 0.874, 0.001);
  EXPECT_EQ(u.maxBwDevice, "tape-library");
  EXPECT_NEAR(u.overallBwUtil, 0.034, 0.001);
}

TEST(Utilization, SnapshotVariantFreesArrayCapacity) {
  const UtilizationResult base =
      computeUtilization(casestudy::weeklyVaultDailyFull());
  const UtilizationResult snap =
      computeUtilization(casestudy::weeklyVaultDailyFullSnapshot());
  const auto* arrayBase = base.find(casestudy::kPrimaryArrayName);
  const auto* arraySnap = snap.find(casestudy::kPrimaryArrayName);
  ASSERT_NE(arrayBase, nullptr);
  ASSERT_NE(arraySnap, nullptr);
  // Snapshots store deltas, not five full copies.
  EXPECT_LT(arraySnap->capUtil, 0.25);
  EXPECT_GT(arrayBase->capUtil, 0.85);
}

TEST(Utilization, OverloadedCapacityIsFlagged) {
  // 30 retained split mirrors cannot fit on the array.
  auto array = catalog::midrangeDiskArray("a", Location::at("s"));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<SplitMirror>(
      "sm", array,
      ProtectionPolicy(WindowSpec{.accW = hours(12)}, 30, weeks(2))));
  const StorageDesign d("overloaded", casestudy::celloWorkload(),
                        caseStudyRequirements(), std::move(levels));
  const UtilizationResult u = computeUtilization(d);
  EXPECT_FALSE(u.feasible());
  ASSERT_EQ(u.errors.size(), 1u);
  EXPECT_NE(u.errors[0].find("capacity overloaded"), std::string::npos);
  EXPECT_GT(u.overallCapUtil, 1.0);
}

TEST(Utilization, OverloadedBandwidthIsFlagged) {
  // A 1360 GB full backup forced through a 15-minute window needs
  // ~1.5 GB/s from a 240 MB/s library.
  auto array = catalog::midrangeDiskArray("a", Location::at("s"));
  auto lib = catalog::enterpriseTapeLibrary("l", Location::at("s"));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<Backup>(
      "b", BackupStyle::kFullOnly, array, lib,
      ProtectionPolicy(WindowSpec{.accW = hours(24), .propW = minutes(15)}, 2,
                       days(2))));
  const StorageDesign d("hot", casestudy::celloWorkload(),
                        caseStudyRequirements(), std::move(levels));
  const UtilizationResult u = computeUtilization(d);
  EXPECT_FALSE(u.feasible());
  bool bwError = false;
  for (const auto& e : u.errors) {
    if (e.find("bandwidth overloaded") != std::string::npos) bwError = true;
  }
  EXPECT_TRUE(bwError);
}

TEST(Utilization, SharesSumToDeviceTotals) {
  const UtilizationResult u = computeUtilization(casestudy::baseline());
  for (const auto& dev : u.devices) {
    double bw = 0.0, cap = 0.0;
    for (const auto& s : dev.shares) {
      bw += s.bwUtil;
      cap += s.capUtil;
    }
    EXPECT_NEAR(bw, dev.bwUtil, 1e-9) << dev.device;
    EXPECT_NEAR(cap, dev.capUtil, 1e-9) << dev.device;
  }
}

TEST(Utilization, TransportsNeverReportCapacityUtilization) {
  const UtilizationResult u =
      computeUtilization(casestudy::asyncBatchMirror(1));
  const auto* links = u.find("wan-links");
  ASSERT_NE(links, nullptr);
  EXPECT_DOUBLE_EQ(links->capUtil, 0.0);
  // 727 KB/s of batch updates on a 19.375 MB/s link: ~3.7%.
  EXPECT_NEAR(links->bwUtil, 0.0384, 0.002);
}

TEST(Utilization, FindReturnsNullForUnknownDevice) {
  const UtilizationResult u = computeUtilization(casestudy::baseline());
  EXPECT_EQ(u.find("nonexistent"), nullptr);
}

// Property: scaling the retained mirror count scales the array capacity
// utilization linearly (plus the fixed foreground share).
class MirrorCountSweep : public ::testing::TestWithParam<int> {};

TEST_P(MirrorCountSweep, CapacityScalesWithRetention) {
  const int retCnt = GetParam();
  auto array = catalog::midrangeDiskArray("a", Location::at("s"));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<SplitMirror>(
      "sm", array,
      ProtectionPolicy(WindowSpec{.accW = hours(12)}, retCnt,
                       hours(12.0 * retCnt))));
  const StorageDesign d("sweep", casestudy::celloWorkload(),
                        caseStudyRequirements(), std::move(levels));
  const UtilizationResult u = computeUtilization(d);
  const auto* a = u.find("a");
  ASSERT_NE(a, nullptr);
  const double expected = (1.0 + retCnt + 1.0) * 1360.0 / 9344.0;
  EXPECT_NEAR(a->capUtil, expected, 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Retentions, MirrorCountSweep,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace stordep
