// Tests for core/units: strong-typed quantities, arithmetic, formatting,
// parsing of the paper's notation ("4 wk + 12 hr", "727 KB/s", "$50000").
#include "core/units.hpp"

#include <gtest/gtest.h>

#include <sstream>

namespace stordep {
namespace {

TEST(Bytes, ConversionsUseBinaryPrefixes) {
  EXPECT_DOUBLE_EQ(kilobytes(1).bytes(), 1024.0);
  EXPECT_DOUBLE_EQ(megabytes(1).bytes(), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(gigabytes(1).megabytes(), 1024.0);
  EXPECT_DOUBLE_EQ(terabytes(2).gigabytes(), 2048.0);
  EXPECT_DOUBLE_EQ(gigabytes(1360).terabytes(), 1360.0 / 1024.0);
}

TEST(Bytes, Arithmetic) {
  EXPECT_EQ(gigabytes(2) + gigabytes(3), gigabytes(5));
  EXPECT_EQ(gigabytes(5) - gigabytes(3), gigabytes(2));
  EXPECT_EQ(gigabytes(2) * 3.0, gigabytes(6));
  EXPECT_EQ(3.0 * gigabytes(2), gigabytes(6));
  EXPECT_DOUBLE_EQ(gigabytes(6) / gigabytes(2), 3.0);
  Bytes b = gigabytes(1);
  b += gigabytes(2);
  EXPECT_EQ(b, gigabytes(3));
  b -= gigabytes(1);
  EXPECT_EQ(b, gigabytes(2));
  b *= 2.0;
  EXPECT_EQ(b, gigabytes(4));
}

TEST(Bytes, Comparisons) {
  EXPECT_LT(megabytes(1), gigabytes(1));
  EXPECT_GT(terabytes(1), gigabytes(1023));
  EXPECT_LE(gigabytes(1), gigabytes(1));
  EXPECT_TRUE(approxEqual(gigabytes(1), gigabytes(1) + bytes(1)));
  EXPECT_FALSE(approxEqual(gigabytes(1), gigabytes(2)));
}

TEST(Bytes, Infinity) {
  EXPECT_TRUE(Bytes::infinite().isInfinite());
  EXPECT_FALSE(Bytes::infinite().isFinite());
  EXPECT_TRUE(gigabytes(1).isFinite());
  EXPECT_LT(terabytes(10000), Bytes::infinite());
}

TEST(Duration, Conversions) {
  EXPECT_DOUBLE_EQ(minutes(1).secs(), 60.0);
  EXPECT_DOUBLE_EQ(hours(1).minutes(), 60.0);
  EXPECT_DOUBLE_EQ(days(1).hrs(), 24.0);
  EXPECT_DOUBLE_EQ(weeks(1).dys(), 7.0);
  EXPECT_DOUBLE_EQ(years(1).dys(), 365.0);
  EXPECT_DOUBLE_EQ(weeks(4).hrs(), 672.0);
}

TEST(Duration, Arithmetic) {
  EXPECT_EQ(hours(1) + minutes(30), minutes(90));
  EXPECT_EQ(days(1) - hours(12), hours(12));
  EXPECT_EQ(hours(2) * 3.0, hours(6));
  EXPECT_DOUBLE_EQ(days(1) / hours(6), 4.0);
}

TEST(Bandwidth, Conversions) {
  EXPECT_DOUBLE_EQ(mbPerSec(1).bytesPerSec(), 1024.0 * 1024.0);
  EXPECT_DOUBLE_EQ(kbPerSec(1024).mbPerSec(), 1.0);
  // OC-3: 155 Mbps (decimal megabits) = 19.375 decimal MB/s.
  EXPECT_DOUBLE_EQ(megabitsPerSec(155).bytesPerSec(), 155e6 / 8.0);
}

TEST(CrossTypeArithmetic, BytesDurationBandwidth) {
  // Paper Table 5: a 1360 GB full backup over a 48-hour window is ~8.1 MB/s.
  const Bandwidth rate = gigabytes(1360) / hours(48);
  EXPECT_NEAR(rate.mbPerSec(), 8.06, 0.01);
  EXPECT_TRUE(approxEqual(rate * hours(48), gigabytes(1360), 1e-12));
  EXPECT_TRUE(approxEqual(gigabytes(1360) / rate, hours(48), 1e-12));
}

TEST(CrossTypeArithmetic, MoneyRates) {
  const MoneyRate rate = dollarsPerHour(50'000);
  EXPECT_DOUBLE_EQ((rate * hours(2)).usd(), 100'000.0);
  EXPECT_DOUBLE_EQ((hours(217) * rate).millionUsd(), 10.85);
  EXPECT_DOUBLE_EQ((millionDollars(1) / hours(20)).usdPerHour(), 50'000.0);
}

TEST(Formatting, HumanReadable) {
  EXPECT_EQ(toString(gigabytes(1360)), "1.33 TB");
  EXPECT_EQ(toString(megabytes(1)), "1 MB");
  EXPECT_EQ(toString(hours(26.4)), "1.1 days");
  EXPECT_EQ(toString(hours(2.4)), "2.4 hr");
  EXPECT_EQ(toString(seconds(0.004)), "0.004 s");
  EXPECT_EQ(toString(mbPerSec(12.4)), "12.4 MB/s");
  EXPECT_EQ(toString(millionDollars(11.94)), "$11.94M");
  EXPECT_EQ(toString(dollars(650)), "$650");
  EXPECT_EQ(toString(dollarsPerHour(50'000)), "$50000/hr");
}

TEST(Formatting, StreamsMatchToString) {
  std::ostringstream os;
  os << gigabytes(73) << " " << hours(12) << " " << mbPerSec(25) << " "
     << dollars(123'297);
  EXPECT_EQ(os.str(), "73 GB 12 hr 25 MB/s $123.3K");
}

TEST(Parsing, Bytes) {
  EXPECT_EQ(parseBytes("1360 GB"), gigabytes(1360));
  EXPECT_EQ(parseBytes("73GB"), gigabytes(73));
  EXPECT_EQ(parseBytes("400 GB"), gigabytes(400));
  EXPECT_EQ(parseBytes("1 MB"), megabytes(1));
  EXPECT_EQ(parseBytes("512"), bytes(512));
  EXPECT_EQ(parseBytes("2 TiB"), terabytes(2));
  EXPECT_THROW((void)parseBytes("twelve GB"), ParseError);
  EXPECT_THROW((void)parseBytes("12 XB"), ParseError);
  EXPECT_THROW((void)parseBytes(""), ParseError);
}

TEST(Parsing, Durations) {
  EXPECT_EQ(parseDuration("12 hr"), hours(12));
  EXPECT_EQ(parseDuration("48 hr"), hours(48));
  EXPECT_EQ(parseDuration("1 wk"), weeks(1));
  EXPECT_EQ(parseDuration("4 wks"), weeks(4));
  EXPECT_EQ(parseDuration("3 years"), years(3));
  EXPECT_EQ(parseDuration("2 days"), days(2));
  EXPECT_EQ(parseDuration("1 min"), minutes(1));
  EXPECT_EQ(parseDuration("90 s"), seconds(90));
  EXPECT_EQ(parseDuration("0.02 hr"), hours(0.02));
}

TEST(Parsing, CompoundDurations) {
  // The paper's vault hold window: "4 wk + 12 hr".
  EXPECT_EQ(parseDuration("4 wk + 12 hr"), weeks(4) + hours(12));
  EXPECT_EQ(parseDuration("1 day + 1 hr + 30 min"),
            days(1) + hours(1) + minutes(30));
  EXPECT_THROW((void)parseDuration("4 wk +"), ParseError);
  EXPECT_THROW((void)parseDuration("+ 12 hr"), ParseError);
}

TEST(Parsing, Bandwidth) {
  EXPECT_EQ(parseBandwidth("25 MB/s"), mbPerSec(25));
  EXPECT_EQ(parseBandwidth("727 KB/s"), kbPerSec(727));
  EXPECT_EQ(parseBandwidth("155 Mbps"), megabitsPerSec(155));
  EXPECT_THROW((void)parseBandwidth("25 MB"), ParseError);
  EXPECT_THROW((void)parseBandwidth("25 MB/hr"), ParseError);
}

TEST(Parsing, Money) {
  EXPECT_EQ(parseMoney("$123297"), dollars(123'297));
  EXPECT_EQ(parseMoney("123297"), dollars(123'297));
  EXPECT_EQ(parseMoney("$11.94M"), millionDollars(11.94));
  EXPECT_EQ(parseMoney("$50K"), dollars(50'000));
  EXPECT_THROW((void)parseMoney("lots"), ParseError);
}

}  // namespace
}  // namespace stordep
