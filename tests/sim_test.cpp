// Tests for the discrete-event simulation substrate: event queue ordering,
// engine clock semantics, and the deterministic RNG.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>
#include <vector>

#include "sim/engine.hpp"
#include "sim/rng.hpp"

namespace stordep::sim {
namespace {

TEST(EventQueue, OrdersByTime) {
  EventQueue queue;
  std::vector<int> order;
  queue.schedule(3.0, [&] { order.push_back(3); });
  queue.schedule(1.0, [&] { order.push_back(1); });
  queue.schedule(2.0, [&] { order.push_back(2); });
  while (!queue.empty()) queue.pop().action();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(EventQueue, TieBreaksByScheduleOrder) {
  EventQueue queue;
  std::vector<int> order;
  for (int i = 0; i < 10; ++i) {
    queue.schedule(5.0, [&order, i] { order.push_back(i); });
  }
  while (!queue.empty()) queue.pop().action();
  std::vector<int> expected(10);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(order, expected);
}

TEST(EventQueue, SizeAndClear) {
  EventQueue queue;
  queue.schedule(1.0, [] {});
  queue.schedule(2.0, [] {});
  EXPECT_EQ(queue.size(), 2u);
  EXPECT_DOUBLE_EQ(queue.nextTime(), 1.0);
  queue.clear();
  EXPECT_TRUE(queue.empty());
}

TEST(Engine, ClockAdvancesWithEvents) {
  Engine engine;
  std::vector<double> times;
  engine.scheduleAt(10.0, [&] { times.push_back(engine.now()); });
  engine.scheduleAt(5.0, [&] {
    times.push_back(engine.now());
    engine.scheduleIn(2.0, [&] { times.push_back(engine.now()); });
  });
  engine.runAll();
  EXPECT_EQ(times, (std::vector<double>{5.0, 7.0, 10.0}));
  EXPECT_DOUBLE_EQ(engine.now(), 10.0);
  EXPECT_EQ(engine.processedEvents(), 3u);
}

TEST(Engine, RunUntilLeavesLaterEventsPending) {
  Engine engine;
  int fired = 0;
  engine.scheduleAt(1.0, [&] { ++fired; });
  engine.scheduleAt(100.0, [&] { ++fired; });
  EXPECT_EQ(engine.run(50.0), 1u);
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(engine.hasPending());
  EXPECT_DOUBLE_EQ(engine.now(), 50.0);
  engine.runAll();
  EXPECT_EQ(fired, 2);
}

TEST(Engine, RejectsSchedulingInThePast) {
  Engine engine;
  engine.scheduleAt(10.0, [] {});
  engine.run(20.0);
  EXPECT_THROW(engine.scheduleAt(5.0, [] {}), SimulationError);
  EXPECT_THROW(engine.scheduleIn(-1.0, [] {}), SimulationError);
}

TEST(Engine, ResetClearsEverything) {
  Engine engine;
  engine.scheduleAt(1.0, [] {});
  engine.reset();
  EXPECT_FALSE(engine.hasPending());
  EXPECT_DOUBLE_EQ(engine.now(), 0.0);
}

TEST(Rng, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.next(), b.next());
  }
  Rng c(124);
  EXPECT_NE(Rng(123).next(), c.next());
}

TEST(Rng, UniformInRange) {
  Rng rng(7);
  double sum = 0;
  for (int i = 0; i < 10'000; ++i) {
    const double u = rng.uniform();
    ASSERT_GE(u, 0.0);
    ASSERT_LT(u, 1.0);
    sum += u;
  }
  EXPECT_NEAR(sum / 10'000, 0.5, 0.02);
}

TEST(Rng, UniformIntBounds) {
  Rng rng(7);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 50'000; ++i) {
    const auto v = rng.uniformInt(10);
    ASSERT_LT(v, 10u);
    ++counts[static_cast<size_t>(v)];
  }
  for (int c : counts) {
    EXPECT_NEAR(c, 5000, 400);  // ~5 sigma
  }
}

TEST(Rng, ExponentialMean) {
  Rng rng(11);
  double sum = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) sum += rng.exponential(3.0);
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(Rng, NormalMoments) {
  Rng rng(13);
  double sum = 0, sq = 0;
  const int n = 50'000;
  for (int i = 0; i < n; ++i) {
    const double x = rng.normal(10.0, 2.0);
    sum += x;
    sq += x * x;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 10.0, 0.05);
  EXPECT_NEAR(std::sqrt(var), 2.0, 0.05);
}

TEST(Rng, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  const int n = 20'000;
  int rank0 = 0, topDecile = 0;
  for (int i = 0; i < n; ++i) {
    const auto k = rng.zipf(1000, 1.0);
    ASSERT_LT(k, 1000u);
    if (k == 0) ++rank0;
    if (k < 100) ++topDecile;
  }
  // Under Zipf(1.0, 1000): P(0) ~ 1/H(1000) ~ 13%, P(k<100) ~ 62%.
  EXPECT_GT(rank0, n / 20);
  EXPECT_GT(topDecile, n / 2);
}

TEST(Rng, ZipfZeroSkewIsUniform) {
  Rng rng(19);
  const int n = 30'000;
  int low = 0;
  for (int i = 0; i < n; ++i) {
    if (rng.zipf(100, 0.0) < 50) ++low;
  }
  EXPECT_NEAR(low, n / 2, n / 20);
}

TEST(Rng, SplitStreamsDiffer) {
  Rng a(29);
  Rng b = a.split();
  int equal = 0;
  for (int i = 0; i < 1000; ++i) {
    if (a.next() == b.next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

}  // namespace
}  // namespace stordep::sim
