// Tests for the expected-case analytics (rpExpectedTimeLag /
// expectedDataLoss) and the sync-mirror write-latency advisory — extensions
// beyond the paper's worst-case metrics.
#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/data_loss.hpp"
#include "core/propagation.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "devices/catalog.hpp"

namespace stordep {
namespace {

namespace cs = casestudy;

TEST(ExpectedLag, HalvesTheAccumulationTerm) {
  const StorageDesign d = cs::baseline();
  // Worst: transit + accW; expected: transit + accW/2.
  EXPECT_EQ(rpExpectedTimeLag(d, 0), Duration::zero());
  EXPECT_EQ(rpExpectedTimeLag(d, 1), hours(6));
  EXPECT_EQ(rpExpectedTimeLag(d, 2), hours(49) + weeks(0.5));
  EXPECT_EQ(rpExpectedTimeLag(d, 3), rpTransitTime(d, 3) + weeks(2));
  // Always at most the worst case, and at least the transit.
  for (int level = 1; level < d.levelCount(); ++level) {
    EXPECT_LE(rpExpectedTimeLag(d, level), rpTimeLag(d, level));
    EXPECT_GE(rpExpectedTimeLag(d, level), rpTransitTime(d, level));
  }
}

TEST(ExpectedLoss, Case1IsExpectedLagMinusTarget) {
  const StorageDesign d = cs::baseline();
  // Array failure (target now): expected loss at the backup level
  // = 49 h + 84 h = 133 h (vs the 217 h worst case).
  EXPECT_EQ(expectedDataLoss(d, 2, cs::arrayFailure()),
            hours(49) + hours(84));
  EXPECT_LT(expectedDataLoss(d, 2, cs::arrayFailure()),
            assessLevel(d, 2, cs::arrayFailure()).dataLoss);
}

TEST(ExpectedLoss, Case2IsHalfTheWindow) {
  const StorageDesign d = cs::baseline();
  // Object failure: the 24 h target sits inside the mirror range; RPs every
  // 12 h put the expected gap at 6 h.
  EXPECT_EQ(expectedDataLoss(d, 1, cs::objectFailure()), hours(6));
}

TEST(ExpectedLoss, ClampsAtZeroWhenTargetExceedsExpectedLag) {
  const StorageDesign d = cs::baseline();
  // Target 100 h old at the backup level: worst case still case 1
  // (lag 217 > 100) but the *expected* staleness (133 h) exceeds the
  // target by only 33 h.
  const auto scenario = FailureScenario::objectFailure(hours(100),
                                                       megabytes(1));
  EXPECT_EQ(expectedDataLoss(d, 2, scenario), hours(33));
  // Target older than the expected lag but younger than the worst:
  // expectation clamps at zero (on average the RP already covers it).
  const auto older = FailureScenario::objectFailure(hours(150), megabytes(1));
  const auto worst = assessLevel(d, 2, older);
  if (worst.lossCase == LossCase::kNotYetPropagated) {
    EXPECT_EQ(expectedDataLoss(d, 2, older), Duration::zero());
  }
}

TEST(ExpectedLoss, InfiniteWhenLevelCannotServe) {
  const StorageDesign d = cs::baseline();
  EXPECT_TRUE(expectedDataLoss(d, 0, cs::objectFailure()).isInfinite());
  EXPECT_TRUE(expectedDataLoss(d, 1, cs::arrayFailure()).isInfinite());
  const auto ancient = FailureScenario::objectFailure(years(5), megabytes(1));
  EXPECT_TRUE(expectedDataLoss(d, 3, ancient).isInfinite());
}

TEST(ExpectedLoss, AcrossAllDesignsBoundedByWorst) {
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    for (const auto& scenario : {cs::arrayFailure(), cs::siteDisaster()}) {
      for (int level = 1; level < design.levelCount(); ++level) {
        const Duration expected = expectedDataLoss(design, level, scenario);
        const Duration worst = assessLevel(design, level, scenario).dataLoss;
        if (worst.isFinite()) {
          EXPECT_LE(expected.secs(), worst.secs() + 1e-9)
              << label << " level " << level;
        } else {
          EXPECT_TRUE(expected.isInfinite()) << label << " level " << level;
        }
      }
    }
  }
}

TEST(MirrorBufferSizing, AsyncBufferAbsorbsBurstOvershoot) {
  const WorkloadSpec w = cs::celloWorkload();
  auto src = catalog::midrangeDiskArray("src", Location::at("a"));
  auto dst = catalog::midrangeDiskArray("dst", Location::at("b"),
                                        RaidLevel::kRaid1, SpareSpec::none());
  // One OC-3: 18.5 MB/s — well below cello's 7.8 MB/s peak? No: peak is
  // 7.8 MB/s, below the link; the overshoot is zero.
  auto bigLink = catalog::oc3WanLinks("wan", Location::at("wide-area"), 1);
  const RemoteMirror asyncBig("a", MirrorMode::kAsync, src, dst, bigLink,
                              continuousMirrorPolicy());
  EXPECT_EQ(asyncBig.requiredBufferSize(w, minutes(5)), Bytes{0});

  // A thin 2 MB/s link: bursts overshoot by ~5.8 MB/s; five minutes of
  // burst needs ~1.7 GB of buffer.
  auto thinLink = std::make_shared<NetworkLink>(
      "thin", Location::at("wide-area"), 1, mbPerSec(2), seconds(0.05),
      DeviceCostModel{});
  const RemoteMirror asyncThin("a", MirrorMode::kAsync, src, dst, thinLink,
                               continuousMirrorPolicy());
  const Bytes buffer = asyncThin.requiredBufferSize(w, minutes(5));
  const double overshootMBps = w.peakUpdateRate().mbPerSec() - 2.0;
  EXPECT_NEAR(buffer.megabytes(), overshootMBps * 300.0, 1.0);

  // Sync mirrors buffer nothing (they block instead).
  const RemoteMirror sync("s", MirrorMode::kSync, src, dst, thinLink,
                          continuousMirrorPolicy());
  EXPECT_EQ(sync.requiredBufferSize(w, minutes(5)), Bytes{0});
}

TEST(MirrorBufferSizing, AsyncBatchStagesTheWholeBatch) {
  const WorkloadSpec w = cs::celloWorkload();
  auto src = catalog::midrangeDiskArray("src", Location::at("a"));
  auto dst = catalog::midrangeDiskArray("dst", Location::at("b"),
                                        RaidLevel::kRaid1, SpareSpec::none());
  auto links = catalog::oc3WanLinks("wan", Location::at("wide-area"), 1);
  const RemoteMirror batch(
      "b", MirrorMode::kAsyncBatch, src, dst, links,
      ProtectionPolicy(WindowSpec{.accW = minutes(1), .propW = minutes(1)}, 1,
                       minutes(1)));
  // One minute's unique updates: 727 KB/s x 60 s ~ 42.6 MB — indeed a small
  // fraction of the array's 32 GB cache, as the paper asserts.
  const Bytes buffer = batch.requiredBufferSize(w, minutes(5));
  EXPECT_NEAR(buffer.megabytes(), 727.0 * 60 / 1024, 0.5);
  EXPECT_LT(buffer.gigabytes(), 32.0 * 0.01);
}

TEST(SyncMirrorLatency, RoundTripOverTheLinks) {
  auto src = catalog::midrangeDiskArray("src", Location::at("a"));
  auto dst = catalog::midrangeDiskArray("dst", Location::at("b"),
                                        RaidLevel::kRaid1, SpareSpec::none());
  // 5 ms one-way propagation (~1000 km of fiber).
  auto links = std::make_shared<NetworkLink>(
      "wan", Location::at("wide-area"), 2, mbPerSec(50), seconds(0.005),
      DeviceCostModel{});
  const RemoteMirror sync("sync", MirrorMode::kSync, src, dst, links,
                          continuousMirrorPolicy());
  EXPECT_DOUBLE_EQ(sync.foregroundWriteLatency().secs(), 0.010);
  // Async modes hide the distance from the application.
  const RemoteMirror async("async", MirrorMode::kAsync, src, dst, links,
                           continuousMirrorPolicy());
  EXPECT_EQ(async.foregroundWriteLatency(), Duration::zero());
  const RemoteMirror batch(
      "batch", MirrorMode::kAsyncBatch, src, dst, links,
      ProtectionPolicy(WindowSpec{.accW = minutes(1), .propW = minutes(1)}, 1,
                       minutes(1)));
  EXPECT_EQ(batch.foregroundWriteLatency(), Duration::zero());
}

}  // namespace
}  // namespace stordep
