// Framework-wide property tests: monotonicity and consistency invariants
// that must hold across parameter sweeps, not just at the case-study point.
#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/evaluator.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/split_mirror.hpp"
#include "core/techniques/vaulting.hpp"
#include "devices/catalog.hpp"

namespace stordep {
namespace {

namespace cs = casestudy;

/// Baseline-shaped design with a parameterized backup accumulation window.
StorageDesign designWithBackupAccW(Duration accW, Duration propW) {
  auto array = catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                          Location::at(cs::kPrimarySite));
  auto library = catalog::enterpriseTapeLibrary(
      "tape-library", Location::at(cs::kPrimarySite));
  const int retCnt =
      std::max(1, static_cast<int>(weeks(4) / accW));
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<SplitMirror>(
      "mirrors", array,
      ProtectionPolicy(WindowSpec{.accW = hours(12)}, 4, days(2))));
  levels.push_back(std::make_shared<Backup>(
      "backup", BackupStyle::kFullOnly, array, library,
      ProtectionPolicy(WindowSpec{.accW = accW,
                                  .propW = propW,
                                  .holdW = hours(1)},
                       retCnt, weeks(4))));
  return StorageDesign("sweep", cs::celloWorkload(), cs::requirements(),
                       std::move(levels), cs::recoveryFacility());
}

TEST(Invariants, DataLossMonotoneInBackupWindow) {
  // More frequent backups never increase array-failure data loss.
  Duration prev = Duration::infinite();
  for (const double accH : {168.0, 96.0, 48.0, 24.0, 12.0}) {
    const StorageDesign d =
        designWithBackupAccW(hours(accH), hours(accH / 2));
    const RecoveryResult r = computeRecovery(d, cs::arrayFailure());
    ASSERT_TRUE(r.recoverable) << accH;
    EXPECT_LE(r.dataLoss, prev) << accH;
    prev = r.dataLoss;
  }
}

TEST(Invariants, ShorterPropagationWindowTradesLossForBandwidth) {
  // Shrinking propW (faster backups) cuts data loss but demands more tape
  // bandwidth — the fundamental dependability/provisioning trade-off.
  const StorageDesign slow = designWithBackupAccW(weeks(1), hours(48));
  const StorageDesign fast = designWithBackupAccW(weeks(1), hours(6));
  const RecoveryResult slowR = computeRecovery(slow, cs::arrayFailure());
  const RecoveryResult fastR = computeRecovery(fast, cs::arrayFailure());
  EXPECT_LT(fastR.dataLoss, slowR.dataLoss);
  const UtilizationResult slowU = computeUtilization(slow);
  const UtilizationResult fastU = computeUtilization(fast);
  EXPECT_GT(fastU.find("tape-library")->bwUtil,
            slowU.find("tape-library")->bwUtil);
}

TEST(Invariants, RecoveryTimeMonotoneInDataSize) {
  // Restoring more data never gets faster.
  Duration prev = Duration::zero();
  for (const double gb : {100.0, 400.0, 800.0, 1360.0, 2000.0}) {
    auto array = catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                            Location::at(cs::kPrimarySite));
    auto library = catalog::enterpriseTapeLibrary(
        "tape-library", Location::at(cs::kPrimarySite));
    std::vector<TechniquePtr> levels;
    levels.push_back(std::make_shared<PrimaryCopy>(array));
    levels.push_back(std::make_shared<SplitMirror>(
        "mirrors", array,
        ProtectionPolicy(WindowSpec{.accW = hours(12)}, 4, days(2))));
    levels.push_back(std::make_shared<Backup>(
        "backup", BackupStyle::kFullOnly, array, library,
        ProtectionPolicy(WindowSpec{.accW = weeks(1),
                                    .propW = hours(48),
                                    .holdW = hours(1)},
                         4, weeks(4))));
    const WorkloadSpec w("scaled", gigabytes(gb), kbPerSec(1028),
                         kbPerSec(799), 10.0,
                         cs::celloWorkload().batchCurve());
    const StorageDesign d("scaled", w, cs::requirements(), std::move(levels),
                          cs::recoveryFacility());
    const RecoveryResult r = computeRecovery(d, cs::arrayFailure());
    ASSERT_TRUE(r.recoverable) << gb;
    EXPECT_GE(r.recoveryTime, prev) << gb;
    prev = r.recoveryTime;
  }
}

TEST(Invariants, PenaltiesMonotoneInPenaltyRate) {
  const StorageDesign base = cs::baseline();
  Money prev = Money::zero();
  for (const double rate : {1e3, 1e4, 5e4, 1e5, 1e6}) {
    std::vector<TechniquePtr> levels;
    for (int i = 0; i < base.levelCount(); ++i) {
      levels.push_back(base.levelPtr(i));
    }
    BusinessRequirements business = base.business();
    business.unavailabilityPenaltyRate = dollarsPerHour(rate);
    business.lossPenaltyRate = dollarsPerHour(rate);
    const StorageDesign d(base.name(), base.workload(), business,
                          std::move(levels), base.facility());
    const EvaluationResult r = evaluate(d, cs::siteDisaster());
    EXPECT_GT(r.cost.totalPenalties, prev) << rate;
    prev = r.cost.totalPenalties;
  }
}

TEST(Invariants, MoreMirrorRetentionCostsMoreAndCoversMore) {
  Money prevCost = Money::zero();
  Duration prevOldest = Duration::zero();
  // retCnt >= 3 keeps the 24 h rollback target inside the retained range
  // ((retCnt - 1) x 12 h >= 24 h).
  for (const int retCnt : {3, 4, 6, 8, 12}) {
    auto array = catalog::midrangeDiskArray(cs::kPrimaryArrayName,
                                            Location::at(cs::kPrimarySite));
    std::vector<TechniquePtr> levels;
    levels.push_back(std::make_shared<PrimaryCopy>(array));
    levels.push_back(std::make_shared<SplitMirror>(
        "mirrors", array,
        ProtectionPolicy(WindowSpec{.accW = hours(12)}, retCnt,
                         hours(12.0 * retCnt))));
    const StorageDesign d("ret-sweep", cs::celloWorkload(),
                          cs::requirements(), std::move(levels),
                          cs::recoveryFacility());
    const RecoveryResult r = computeRecovery(d, cs::objectFailure());
    ASSERT_TRUE(r.recoverable) << retCnt;
    const CostResult cost = computeCosts(d, r);
    EXPECT_GT(cost.totalOutlays, prevCost) << retCnt;
    prevCost = cost.totalOutlays;
    const RpRange range = guaranteedRange(d, 1);
    EXPECT_GT(range.oldestAge, prevOldest) << retCnt;
    prevOldest = range.oldestAge;
  }
}

TEST(Invariants, EvaluationIsDeterministic) {
  // Two evaluations of freshly built identical designs agree bit-for-bit.
  const EvaluationResult a = evaluate(cs::baseline(), cs::siteDisaster());
  const EvaluationResult b = evaluate(cs::baseline(), cs::siteDisaster());
  EXPECT_EQ(a.recovery.recoveryTime.secs(), b.recovery.recoveryTime.secs());
  EXPECT_EQ(a.recovery.dataLoss.secs(), b.recovery.dataLoss.secs());
  EXPECT_EQ(a.cost.totalCost.usd(), b.cost.totalCost.usd());
  EXPECT_EQ(a.utilization.overallCapUtil, b.utilization.overallCapUtil);
}

TEST(Invariants, WiderFailureScopeNeverShrinksLossOrRecovery) {
  // object -> array -> site: each wider scope destroys a superset of
  // levels, so loss and recovery time are non-decreasing (for target=now
  // scenarios; the object case uses a rollback target, so compare array vs
  // site only).
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const RecoveryResult array = computeRecovery(design, cs::arrayFailure());
    const RecoveryResult site = computeRecovery(design, cs::siteDisaster());
    if (array.recoverable && site.recoverable) {
      EXPECT_GE(site.dataLoss.secs(), array.dataLoss.secs()) << label;
      EXPECT_GE(site.recoveryTime.secs() + 1e-9, array.recoveryTime.secs())
          << label;
    }
  }
}

TEST(Invariants, OutlaysIndependentOfScenarioEverywhere) {
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const CostResult a =
        computeCosts(design, computeRecovery(design, cs::objectFailure()));
    const CostResult b =
        computeCosts(design, computeRecovery(design, cs::siteDisaster()));
    EXPECT_DOUBLE_EQ(a.totalOutlays.usd(), b.totalOutlays.usd()) << label;
  }
}

TEST(Invariants, LagEqualsCase1LossForNowTargets) {
  // For target = now, a level's case-1 data loss IS its time lag — across
  // all designs and levels.
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    for (int level = 1; level < design.levelCount(); ++level) {
      const auto a = assessLevel(design, level, cs::arrayFailure());
      if (a.lossCase == LossCase::kNotYetPropagated) {
        EXPECT_DOUBLE_EQ(a.dataLoss.secs(), rpTimeLag(design, level).secs())
            << label << " level " << level;
      }
    }
  }
}

TEST(Invariants, UtilizationSharesNeverNegative) {
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const UtilizationResult u = computeUtilization(design);
    for (const auto& dev : u.devices) {
      EXPECT_GE(dev.bwUtil, 0.0) << label << "/" << dev.device;
      EXPECT_GE(dev.capUtil, 0.0) << label << "/" << dev.device;
      for (const auto& share : dev.shares) {
        EXPECT_GE(share.bwUtil, 0.0);
        EXPECT_GE(share.capUtil, 0.0);
      }
    }
  }
}

}  // namespace
}  // namespace stordep
