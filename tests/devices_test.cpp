// Tests for the device models: capacity/bandwidth derivations, RAID
// overheads, tape transfer limits, transports, spares and cost models.
#include <gtest/gtest.h>

#include "devices/catalog.hpp"
#include "devices/disk_array.hpp"
#include "devices/interconnect.hpp"
#include "devices/tape_library.hpp"
#include "devices/vault.hpp"

namespace stordep {
namespace {

using catalog::enterpriseTapeLibrary;
using catalog::midrangeDiskArray;
using catalog::offsiteTapeVault;
using catalog::overnightAirShipment;
using catalog::oc3WanLinks;

TEST(DiskArray, Raid1HalvesCapacity) {
  const auto array = midrangeDiskArray("a", Location::at("s"));
  // 256 x 73 GB raw = 18688 GB; RAID-1 usable = 9344 GB (what Table 5 needs).
  EXPECT_DOUBLE_EQ(array->usableCapacity().gigabytes(), 9344.0);
  EXPECT_DOUBLE_EQ(array->writeAmplification(), 2.0);
  EXPECT_DOUBLE_EQ(array->smallWriteCost(), 2.0);
}

TEST(DiskArray, BandwidthIsEnclosureLimited) {
  const auto array = midrangeDiskArray("a", Location::at("s"));
  // min(512 MB/s enclosure, 256 x 25 MB/s slots) = 512 MB/s.
  EXPECT_DOUBLE_EQ(array->maxBandwidth().mbPerSec(), 512.0);
}

TEST(DiskArray, RaidLevels) {
  const auto jbod =
      midrangeDiskArray("a", Location::at("s"), RaidLevel::kNone);
  EXPECT_DOUBLE_EQ(jbod->usableCapacity().gigabytes(), 18688.0);
  EXPECT_DOUBLE_EQ(jbod->writeAmplification(), 1.0);

  const auto r5 = midrangeDiskArray("a", Location::at("s"), RaidLevel::kRaid5);
  // default group size 8: usable 7/8 of raw.
  EXPECT_DOUBLE_EQ(r5->usableCapacity().gigabytes(), 18688.0 * 7 / 8);
  EXPECT_DOUBLE_EQ(r5->writeAmplification(), 8.0 / 7.0);
  EXPECT_DOUBLE_EQ(r5->smallWriteCost(), 4.0);

  const auto r10 =
      midrangeDiskArray("a", Location::at("s"), RaidLevel::kRaid10);
  EXPECT_DOUBLE_EQ(r10->usableCapacity().gigabytes(), 9344.0);
}

TEST(DiskArray, Raid5GroupSizeValidated) {
  DeviceSpec spec;
  spec.name = "bad";
  spec.maxCapSlots = 8;
  spec.slotCap = gigabytes(73);
  EXPECT_THROW(DiskArray(spec, RaidLevel::kRaid5, 2), DeviceError);
}

TEST(TapeLibrary, CapacityAndBandwidth) {
  const auto lib = enterpriseTapeLibrary("t", Location::at("s"));
  EXPECT_DOUBLE_EQ(lib->usableCapacity().terabytes(),
                   500 * 400.0 / 1024.0);  // ~195 TB
  // min(240 enclosure, 16 x 60) = 240 MB/s.
  EXPECT_DOUBLE_EQ(lib->maxBandwidth().mbPerSec(), 240.0);
  EXPECT_EQ(lib->accessDelay(), hours(0.01));
}

TEST(TapeLibrary, CartridgeMath) {
  const auto lib = enterpriseTapeLibrary("t", Location::at("s"));
  EXPECT_EQ(lib->cartridgesFor(Bytes{0}), 0);
  EXPECT_EQ(lib->cartridgesFor(gigabytes(1)), 1);
  EXPECT_EQ(lib->cartridgesFor(gigabytes(400)), 1);
  EXPECT_EQ(lib->cartridgesFor(gigabytes(401)), 2);
  EXPECT_EQ(lib->cartridgesFor(gigabytes(1360)), 4);
}

TEST(TapeLibrary, TransferBandwidthScalesWithCartridges) {
  const auto lib = enterpriseTapeLibrary("t", Location::at("s"));
  // One cartridge: one drive.
  EXPECT_DOUBLE_EQ(lib->transferBandwidth(gigabytes(100)).mbPerSec(), 60.0);
  // Two cartridges: two drives.
  EXPECT_DOUBLE_EQ(lib->transferBandwidth(gigabytes(500)).mbPerSec(), 120.0);
  // Full dataset (4 cartridges): enclosure-limited at 240.
  EXPECT_DOUBLE_EQ(lib->transferBandwidth(gigabytes(1360)).mbPerSec(), 240.0);
  // A huge payload can't exceed the enclosure either.
  EXPECT_DOUBLE_EQ(lib->transferBandwidth(terabytes(50)).mbPerSec(), 240.0);
}

TEST(MediaVault, PureCapacity) {
  const auto vault = offsiteTapeVault("v", Location::at("s"));
  EXPECT_DOUBLE_EQ(vault->usableCapacity().terabytes(), 5000 * 400.0 / 1024.0);
  EXPECT_TRUE(vault->maxBandwidth().isInfinite());
  EXPECT_FALSE(vault->isTransport());
}

TEST(PhysicalShipment, DeliversPhysically) {
  const auto air = overnightAirShipment("air", Location::at("transit"));
  EXPECT_TRUE(air->isTransport());
  EXPECT_TRUE(air->deliversPhysically());
  EXPECT_EQ(air->accessDelay(), hours(24));
  EXPECT_TRUE(air->maxBandwidth().isInfinite());
  // $50 per shipment, 13 shipments per year.
  EXPECT_DOUBLE_EQ(air->annualOutlay(Bytes{0}, Bandwidth::zero(), 13.0).usd(),
                   650.0);
}

TEST(NetworkLink, BandwidthScalesWithLinkCount) {
  const auto one = oc3WanLinks("wan", Location::at("wide-area"), 1);
  const auto ten = oc3WanLinks("wan", Location::at("wide-area"), 10);
  EXPECT_NEAR(one->maxBandwidth().bytesPerSec(), 155e6 / 8, 1);
  EXPECT_NEAR(ten->maxBandwidth().bytesPerSec(), 10 * 155e6 / 8, 1);
  EXPECT_TRUE(one->isTransport());
  EXPECT_FALSE(one->deliversPhysically());
}

TEST(NetworkLink, ChargedAtProvisionedCapacity) {
  const auto one = oc3WanLinks("wan", Location::at("wide-area"), 1);
  // Cost is per provisioned MB/s (x $23535), independent of demand.
  const Money demandless = one->annualOutlay(Bytes{0}, Bandwidth::zero());
  const Money demanded = one->annualOutlay(Bytes{0}, mbPerSec(5));
  EXPECT_DOUBLE_EQ(demandless.usd(), demanded.usd());
  // $23535 per decimal MB/s x 19.375 MB/s ~ $456k (Table 7).
  EXPECT_NEAR(demandless.usd(), 23'535 * 19.375, 1.0);
}

TEST(NetworkLink, Validation) {
  EXPECT_THROW(NetworkLink("w", Location::at("s"), 0, mbPerSec(10),
                           Duration::zero(), DeviceCostModel{}),
               DeviceError);
  EXPECT_THROW(NetworkLink("w", Location::at("s"), 1, Bandwidth::zero(),
                           Duration::zero(), DeviceCostModel{}),
               DeviceError);
}

TEST(DeviceCostModel, Components) {
  const DeviceCostModel cost{.fixedCost = dollars(1000),
                             .costPerGB = 2.0,
                             .costPerMBps = 10.0,
                             .costPerShipment = 5.0};
  const Money total = cost.annualOutlay(gigabytes(100), mbPerSec(3), 4.0);
  EXPECT_DOUBLE_EQ(total.usd(), 1000 + 200 + 30 + 20);
}

TEST(Spares, DedicatedSpareCostsAndTime) {
  const auto array = midrangeDiskArray("a", Location::at("s"));
  EXPECT_EQ(array->spec().spare.type, SpareType::kDedicated);
  EXPECT_EQ(array->spareProvisioningTime(), hours(0.02));
  // Dedicated spare at 1x: same outlay as the original usage.
  const Money base = array->annualOutlay(gigabytes(8160), Bandwidth::zero());
  const Money spare = array->annualSpareOutlay(gigabytes(8160),
                                               Bandwidth::zero());
  EXPECT_DOUBLE_EQ(base.usd(), spare.usd());
}

TEST(Spares, NoSpareMeansInfiniteProvisioning) {
  const auto vault = offsiteTapeVault("v", Location::at("s"));
  EXPECT_EQ(vault->spec().spare.type, SpareType::kNone);
  EXPECT_TRUE(vault->spareProvisioningTime().isInfinite());
  EXPECT_DOUBLE_EQ(
      vault->annualSpareOutlay(gigabytes(100), Bandwidth::zero()).usd(), 0.0);
}

TEST(Spares, SharedSpareDiscounted) {
  const SpareSpec shared = SpareSpec::shared(hours(9), 0.2);
  EXPECT_EQ(shared.type, SpareType::kShared);
  EXPECT_EQ(shared.provisioningTime, hours(9));
  EXPECT_DOUBLE_EQ(shared.discountFactor, 0.2);
  EXPECT_EQ(toString(SpareType::kShared), "shared");
  EXPECT_EQ(toString(SpareType::kDedicated), "dedicated");
  EXPECT_EQ(toString(SpareType::kNone), "none");
}

TEST(DeviceModel, PaperTable4Costs) {
  // Spot-check the catalog cost models against Table 4.
  const auto array = midrangeDiskArray("a", Location::at("s"));
  EXPECT_DOUBLE_EQ(
      array->annualOutlay(gigabytes(8160), Bandwidth::zero()).usd(),
      123'297 + 8160 * 17.2);
  const auto lib = enterpriseTapeLibrary("t", Location::at("s"));
  EXPECT_NEAR(lib->annualOutlay(gigabytes(6800), mbPerSec(8.06)).usd(),
              98'895 + 6800 * 0.4 + 8.06 * 108.6, 0.5);
  const auto vault = offsiteTapeVault("v", Location::at("s"));
  EXPECT_DOUBLE_EQ(
      vault->annualOutlay(gigabytes(53'040), Bandwidth::zero()).usd(),
      25'000 + 53'040 * 0.4);
}

TEST(DeviceModel, Validation) {
  DeviceSpec spec;
  EXPECT_THROW(DiskArray(spec, RaidLevel::kNone), DeviceError);  // no name
  spec.name = "x";
  spec.maxCapSlots = -1;
  EXPECT_THROW(DiskArray(spec, RaidLevel::kNone), DeviceError);
  spec.maxCapSlots = 1;
  spec.slotCap = gigabytes(1);
  spec.accessDelay = seconds(-1);
  EXPECT_THROW(DiskArray(spec, RaidLevel::kNone), DeviceError);
}

TEST(DeviceModel, Describe) {
  const auto array = midrangeDiskArray("primary-array", Location::at("hq"));
  const std::string desc = array->describe();
  EXPECT_NE(desc.find("primary-array"), std::string::npos);
  EXPECT_NE(desc.find("RAID-1"), std::string::npos);
  const auto lib = enterpriseTapeLibrary("lib", Location::at("hq"));
  EXPECT_NE(lib->describe().find("drives"), std::string::npos);
}

}  // namespace
}  // namespace stordep
