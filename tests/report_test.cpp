// Tests for the reporting substrate: table/CSV rendering and the
// paper-style evaluation report sections.
#include <gtest/gtest.h>

#include <sstream>

#include "casestudy/casestudy.hpp"
#include "report/csv.hpp"
#include "report/report.hpp"
#include "report/table.hpp"
#include "sim/rng.hpp"
#include "verify/gen.hpp"

namespace stordep::report {
namespace {

namespace cs = stordep::casestudy;

TEST(TextTable, RendersAlignedCells) {
  TextTable table({"Name", "Value"});
  table.align(1, Align::kRight);
  table.addRow({"alpha", "1"});
  table.addRow({"b", "22"});
  const std::string out = table.render();
  EXPECT_NE(out.find("| Name  | Value |"), std::string::npos);
  EXPECT_NE(out.find("| alpha |     1 |"), std::string::npos);
  EXPECT_NE(out.find("| b     |    22 |"), std::string::npos);
  EXPECT_EQ(table.rowCount(), 2u);
}

TEST(TextTable, SeparatorsAndTitle) {
  TextTable table({"A"});
  table.title("My Table").addRow({"x"}).addSeparator().addRow({"y"});
  const std::string out = table.render();
  EXPECT_EQ(out.find("My Table"), 0u);
  // 5 rules: top, after header, the explicit separator, bottom.
  size_t rules = 0;
  for (size_t pos = out.find("+--"); pos != std::string::npos;
       pos = out.find("+--", pos + 1)) {
    ++rules;
  }
  EXPECT_EQ(rules, 4u);
}

TEST(TextTable, ShortRowsPadded) {
  TextTable table({"A", "B", "C"});
  table.addRow({"only"});
  EXPECT_NE(table.render().find("| only |"), std::string::npos);
  EXPECT_THROW(table.addRow({"1", "2", "3", "4"}), std::invalid_argument);
  EXPECT_THROW(table.align(5, Align::kRight), std::out_of_range);
  EXPECT_THROW(TextTable({}), std::invalid_argument);
}

TEST(Csv, EscapesSpecials) {
  EXPECT_EQ(csvEscape("plain"), "plain");
  EXPECT_EQ(csvEscape("with,comma"), "\"with,comma\"");
  EXPECT_EQ(csvEscape("with\"quote"), "\"with\"\"quote\"");
  EXPECT_EQ(csvEscape("with\nnewline"), "\"with\nnewline\"");
}

TEST(Csv, RendersDocument) {
  CsvWriter csv({"design", "rt_hr", "dl_hr"});
  csv.addRow({"baseline", "2.4", "217"});
  csv.addRow({"weekly, vault", "2.4", "217"});
  EXPECT_EQ(csv.render(),
            "design,rt_hr,dl_hr\n"
            "baseline,2.4,217\n"
            "\"weekly, vault\",2.4,217\n");
  EXPECT_EQ(csv.rowCount(), 2u);
  EXPECT_THROW(CsvWriter({}), std::invalid_argument);
}

TEST(Report, NumberHelpers) {
  EXPECT_EQ(fixed(2.379, 1), "2.4");
  EXPECT_EQ(fixed(217.0, 0), "217");
  EXPECT_EQ(percent(0.874), "87.4%");
  EXPECT_EQ(percent(0.002, 1), "0.2%");
}

TEST(Report, UtilizationTableHasPaperRows) {
  const auto u = computeUtilization(cs::baseline());
  const std::string out = utilizationTable(u).render();
  EXPECT_NE(out.find("foreground workload"), std::string::npos);
  EXPECT_NE(out.find("split mirror"), std::string::npos);
  EXPECT_NE(out.find("tape backup"), std::string::npos);
  EXPECT_NE(out.find("87.3%"), std::string::npos);  // array capacity
  EXPECT_NE(out.find("3.4%"), std::string::npos);   // tape bandwidth
}

TEST(Report, RecoverySummaryLines) {
  const StorageDesign design = cs::baseline();
  const auto site = computeRecovery(design, cs::siteDisaster());
  const std::string line = recoverySummaryLine(cs::siteDisaster(), site);
  EXPECT_NE(line.find("site"), std::string::npos);
  EXPECT_NE(line.find("remote vaulting"), std::string::npos);
  EXPECT_NE(line.find("recovery time"), std::string::npos);

  // Unrecoverable rendering.
  const StorageDesign mirror = cs::asyncBatchMirror(1);
  const auto object = computeRecovery(mirror, cs::objectFailure());
  EXPECT_NE(recoverySummaryLine(cs::objectFailure(), object)
                .find("UNRECOVERABLE"),
            std::string::npos);
}

TEST(Report, CostTableTotalsUp) {
  const StorageDesign design = cs::baseline();
  const auto cost =
      computeCosts(design, computeRecovery(design, cs::arrayFailure()));
  const std::string out = costTable(cost).render();
  EXPECT_NE(out.find("outlay: foreground workload"), std::string::npos);
  EXPECT_NE(out.find("data outage penalty"), std::string::npos);
  EXPECT_NE(out.find("TOTAL"), std::string::npos);
}

TEST(Report, TimelineTableShowsLegs) {
  const StorageDesign design = cs::baseline();
  const auto recovery = computeRecovery(design, cs::siteDisaster());
  const std::string out = recoveryTimelineTable(recovery).render();
  EXPECT_NE(out.find("air-shipment"), std::string::npos);
  EXPECT_NE(out.find("tape-vault"), std::string::npos);
}

TEST(Report, RpRangeTableCoversLevels) {
  const std::string out = rpRangeTable(cs::baseline()).render();
  EXPECT_NE(out.find("split mirror"), std::string::npos);
  EXPECT_NE(out.find("remote vaulting"), std::string::npos);
}

TEST(TextTable, MarkdownRendering) {
  TextTable table({"Name", "Value"});
  table.align(1, Align::kRight);
  table.title("Caption");
  table.addRow({"pipe|cell", "1"});
  table.addSeparator();
  table.addRow({"b", "22"});
  const std::string md = table.renderMarkdown();
  EXPECT_NE(md.find("**Caption**"), std::string::npos);
  EXPECT_NE(md.find("| Name | Value |"), std::string::npos);
  EXPECT_NE(md.find("| --- | ---: |"), std::string::npos);
  EXPECT_NE(md.find("| pipe\\|cell | 1 |"), std::string::npos);
  EXPECT_NE(md.find("| b | 22 |"), std::string::npos);
  // Separator rows are dropped, not rendered.
  EXPECT_EQ(md.find("+--"), std::string::npos);
}

TEST(Report, MarkdownReportAssemblesSections) {
  const StorageDesign design = cs::baseline();
  const auto result = evaluate(design, cs::siteDisaster());
  const std::string md = markdownReport(design, cs::siteDisaster(), result);
  EXPECT_EQ(md.find("# Dependability report: baseline"), 0u);
  EXPECT_NE(md.find("## Summary"), std::string::npos);
  EXPECT_NE(md.find("| Worst-case recovery time |"), std::string::npos);
  EXPECT_NE(md.find("## Normal-mode utilization"), std::string::npos);
  EXPECT_NE(md.find("## Recovery timeline"), std::string::npos);
  EXPECT_NE(md.find("## Costs"), std::string::npos);
  EXPECT_NE(md.find("> "), std::string::npos);  // provisioning notes

  // Unrecoverable rendering.
  const StorageDesign mirror = cs::asyncBatchMirror(1);
  const auto object = evaluate(mirror, cs::objectFailure());
  EXPECT_NE(markdownReport(mirror, cs::objectFailure(), object)
                .find("UNRECOVERABLE"),
            std::string::npos);
}

// ---- Formatting under generator-produced extreme quantities ---------------
// The verification layer's extreme generators (verify/gen.hpp) produce the
// magnitudes real evaluations emit in corner cases: infinities (unrecoverable
// scenarios), NaN penalties (0 rate x inf loss), negative deltas, sub-unit
// and far-beyond-petabyte values. The formatting layers must stay structural:
// parseable CSV, well-formed markdown, no empty or multi-line cells.

/// Minimal RFC-4180 reader: splits one CSV document into rows of fields,
/// honoring quoted fields with doubled quotes and embedded separators.
std::vector<std::vector<std::string>> parseCsv(const std::string& text) {
  std::vector<std::vector<std::string>> rows;
  std::vector<std::string> row;
  std::string field;
  bool quoted = false;
  for (size_t i = 0; i < text.size(); ++i) {
    const char c = text[i];
    if (quoted) {
      if (c == '"' && i + 1 < text.size() && text[i + 1] == '"') {
        field += '"';
        ++i;
      } else if (c == '"') {
        quoted = false;
      } else {
        field += c;
      }
    } else if (c == '"') {
      quoted = true;
    } else if (c == ',') {
      row.push_back(std::move(field));
      field.clear();
    } else if (c == '\n') {
      row.push_back(std::move(field));
      field.clear();
      rows.push_back(std::move(row));
      row.clear();
    } else {
      field += c;
    }
  }
  return rows;
}

TEST(Csv, StructuralRoundTripUnderExtremeQuantities) {
  sim::Rng rng(2026);
  CsvWriter csv({"bytes", "duration", "money"});
  std::vector<std::vector<std::string>> expected;
  for (int i = 0; i < 64; ++i) {
    std::vector<std::string> cells{toString(verify::extremeBytes(rng)),
                                   toString(verify::extremeDuration(rng)),
                                   toString(verify::extremeMoney(rng))};
    for (const std::string& cell : cells) {
      EXPECT_FALSE(cell.empty());
      EXPECT_EQ(cell.find('\n'), std::string::npos) << cell;
    }
    expected.push_back(cells);
    csv.addRow(std::move(cells));
  }
  const std::vector<std::vector<std::string>> parsed = parseCsv(csv.render());
  ASSERT_EQ(parsed.size(), expected.size() + 1);  // header row
  for (size_t r = 0; r < expected.size(); ++r) {
    ASSERT_EQ(parsed[r + 1].size(), 3u) << "row " << r;
    for (size_t c = 0; c < 3; ++c) {
      EXPECT_EQ(parsed[r + 1][c], expected[r][c]) << "row " << r;
    }
  }
}

TEST(TextTable, ExtremeQuantitiesKeepTablesWellFormed) {
  sim::Rng rng(4242);
  TextTable table({"quantity", "rendered"});
  table.align(1, Align::kRight);
  for (int i = 0; i < 32; ++i) {
    table.addRow({"duration", toString(verify::extremeDuration(rng))});
    table.addRow({"money", toString(verify::extremeMoney(rng))});
  }
  const std::string out = table.render();
  // Every non-rule line is one table row: starts and ends with a pipe.
  std::istringstream lines(out);
  std::string line;
  size_t body = 0;
  while (std::getline(lines, line)) {
    ASSERT_FALSE(line.empty());
    if (line.front() == '+') continue;  // rule
    EXPECT_EQ(line.front(), '|') << line;
    EXPECT_EQ(line.back(), '|') << line;
    ++body;
  }
  EXPECT_EQ(body, 1u + 64u);  // header + rows

  const std::string md = table.renderMarkdown();
  std::istringstream mdLines(md);
  size_t mdRows = 0;
  while (std::getline(mdLines, line)) {
    if (!line.empty() && line.front() == '|') {
      // GFM rows must balance their pipes: unescaped count is columns + 1.
      size_t pipes = 0;
      for (size_t i = 0; i < line.size(); ++i) {
        if (line[i] == '|' && (i == 0 || line[i - 1] != '\\')) ++pipes;
      }
      EXPECT_EQ(pipes, 3u) << line;
      ++mdRows;
    }
  }
  EXPECT_EQ(mdRows, 2u + 64u);  // header + alignment row + rows
}

TEST(Report, NonFiniteQuantitiesRenderReadably) {
  // The exact strings the formatting layer prints for the values extreme
  // generators produce; reports embed these in tables and CSV exports.
  EXPECT_FALSE(toString(Duration::infinite()).empty());
  EXPECT_FALSE(toString(Bytes{1e24}).empty());      // ~gigapetabyte scale
  EXPECT_FALSE(toString(Bytes{1e-3}).empty());      // sub-byte
  EXPECT_FALSE(toString(dollars(-123.45)).empty());  // negative delta
  EXPECT_EQ(toString(Duration::infinite()).find(','), std::string::npos);
}

TEST(Report, FullReportAssemblesSections) {
  const StorageDesign design = cs::baseline();
  const auto result = evaluate(design, cs::siteDisaster());
  const std::string out = fullReport(design, cs::siteDisaster(), result);
  EXPECT_NE(out.find("=== Design: baseline ==="), std::string::npos);
  EXPECT_NE(out.find("Normal-mode utilization"), std::string::npos);
  EXPECT_NE(out.find("Retrieval point ranges"), std::string::npos);
  EXPECT_NE(out.find("-- Recovery --"), std::string::npos);
  EXPECT_NE(out.find("-- Costs --"), std::string::npos);
  EXPECT_NE(out.find("recovery facility"), std::string::npos);  // note
}

}  // namespace
}  // namespace stordep::report
