// Tests for sim/bandwidth_probe: the simulated transfer schedules must
// reproduce the analytic Table 5 bandwidth demands as their binned peaks.
#include "sim/bandwidth_probe.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"

namespace stordep::sim {
namespace {

namespace cs = casestudy;

const DeviceBandwidthProfile* find(
    const std::vector<DeviceBandwidthProfile>& profiles,
    const std::string& device) {
  for (const auto& p : profiles) {
    if (p.device == device) return &p;
  }
  return nullptr;
}

TEST(BandwidthProbe, BaselineBackupDrivesTheTapeAtTheAnalyticRate) {
  RpSimOptions options;
  options.horizon = days(120);
  RpLifecycleSimulator sim(cs::baseline(), options);
  sim.run();
  const auto profiles = profileTransferBandwidth(sim, hours(1));

  const auto* tape = find(profiles, "tape-library");
  ASSERT_NE(tape, nullptr);
  // Table 5: the weekly full streams at 1360 GB / 48 h = 8.06 MB/s while
  // active...
  EXPECT_NEAR(tape->peak().mbPerSec(), 8.06, 0.1);
  // ...for 48 of every 168 hours (~28.6% duty cycle; warm-up skews a bit).
  EXPECT_NEAR(tape->dutyCycle(), 48.0 / 168.0, 0.04);
  // The long-run mean is the amortized rate, well below the peak.
  EXPECT_NEAR(tape->mean().mbPerSec(), 8.06 * 48.0 / 168.0, 0.4);

  // The same stream reads from the primary array.
  const auto* array = find(profiles, cs::kPrimaryArrayName);
  ASSERT_NE(array, nullptr);
  EXPECT_NEAR(array->peak().mbPerSec(), 8.06, 0.1);
}

TEST(BandwidthProbe, PeakNeverExceedsAnalyticDemand) {
  // The analytic model charges each technique's worst window; the simulated
  // peak must not exceed the per-device analytic total.
  for (const auto& [label, design] :
       std::vector<std::pair<std::string, StorageDesign>>{
           {"baseline", cs::baseline()},
           {"daily F", cs::weeklyVaultDailyFull()}}) {
    RpSimOptions options;
    options.horizon = days(120);
    RpLifecycleSimulator sim(design, options);
    sim.run();
    const UtilizationResult analytic = computeUtilization(design);
    for (const auto& profile : profileTransferBandwidth(sim, hours(1))) {
      const auto* dev = analytic.find(profile.device);
      ASSERT_NE(dev, nullptr) << label << "/" << profile.device;
      EXPECT_LE(profile.peak().mbPerSec(),
                dev->bwDemand.mbPerSec() * 1.001)
          << label << "/" << profile.device;
    }
  }
}

TEST(BandwidthProbe, IncrementalTransfersAreLighterThanFulls) {
  RpSimOptions options;
  options.horizon = days(120);
  RpLifecycleSimulator sim(cs::weeklyVaultFullPlusIncremental(), options);
  sim.run();
  const auto profiles = profileTransferBandwidth(sim, hours(1));
  const auto* tape = find(profiles, "tape-library");
  ASSERT_NE(tape, nullptr);
  // A finding the analytic model misses: the day-1 incremental's 12 h
  // window overlaps the full's 48 h one, so the true concurrent peak is
  // full + inc1 = 8.06 + 0.62 = 8.68 MB/s — 8% above the analytic
  // max(full, incr) = 8.06 the paper's formula charges.
  EXPECT_GT(tape->peak().mbPerSec(), 8.06 + 0.3);
  EXPECT_NEAR(tape->peak().mbPerSec(), 8.68, 0.1);
  // Incrementals also raise the duty cycle well above the full-only case.
  EXPECT_GT(tape->dutyCycle(), 48.0 / 168.0 + 0.1);
}

TEST(BandwidthProbe, MirrorBatchesStreamContinuously) {
  RpSimOptions options;
  options.horizon = hours(12);
  RpLifecycleSimulator sim(cs::asyncBatchMirror(1), options);
  sim.run();
  const auto profiles = profileTransferBandwidth(sim, minutes(10));
  const auto* links = find(profiles, "wan-links");
  ASSERT_NE(links, nullptr);
  // Per-minute batches at 727 KB/s of coalesced updates: effectively a
  // continuous stream.
  EXPECT_GT(links->dutyCycle(), 0.95);
  EXPECT_NEAR(links->mean().kbPerSec(), 727.0, 40.0);
}

TEST(BandwidthProbe, Validation) {
  RpSimOptions options;
  options.horizon = days(30);
  RpLifecycleSimulator sim(cs::baseline(), options);
  sim.run();
  EXPECT_THROW((void)profileTransferBandwidth(sim, Duration::zero()),
               SimulationError);
}

}  // namespace
}  // namespace stordep::sim
