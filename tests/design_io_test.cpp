// Tests for design (de)serialization: quantity parsing from both notations,
// component round trips, and full-design round trips that must evaluate to
// identical results.
#include "config/design_io.hpp"

#include <gtest/gtest.h>

#include <cstdio>

#include "casestudy/casestudy.hpp"
#include "core/evaluator.hpp"

namespace stordep::config {
namespace {

namespace cs = casestudy;

TEST(QuantityJson, AcceptsNumbersAndStrings) {
  EXPECT_EQ(jsonToDuration(Json(3600.0)), hours(1));
  EXPECT_EQ(jsonToDuration(Json("4 wk + 12 hr")), weeks(4) + hours(12));
  EXPECT_EQ(jsonToBytes(Json("1360 GB")), gigabytes(1360));
  EXPECT_EQ(jsonToBytes(Json(1024.0)), kilobytes(1));
  EXPECT_EQ(jsonToBandwidth(Json("155 Mbps")), megabitsPerSec(155));
  EXPECT_EQ(jsonToMoney(Json("$50K")), dollars(50'000));
  EXPECT_THROW((void)jsonToDuration(Json(true)), DesignIoError);
  EXPECT_THROW((void)jsonToBytes(Json::parse("[]")), DesignIoError);
}

TEST(WorkloadJson, RoundTrips) {
  const WorkloadSpec original = cs::celloWorkload();
  const WorkloadSpec reloaded = workloadFromJson(workloadToJson(original));
  EXPECT_EQ(reloaded.name(), original.name());
  EXPECT_EQ(reloaded.dataCap(), original.dataCap());
  EXPECT_EQ(reloaded.avgAccessRate(), original.avgAccessRate());
  EXPECT_EQ(reloaded.avgUpdateRate(), original.avgUpdateRate());
  EXPECT_DOUBLE_EQ(reloaded.burstMultiplier(), original.burstMultiplier());
  ASSERT_EQ(reloaded.batchCurve().size(), original.batchCurve().size());
  for (size_t i = 0; i < original.batchCurve().size(); ++i) {
    EXPECT_EQ(reloaded.batchCurve()[i].window, original.batchCurve()[i].window);
    EXPECT_EQ(reloaded.batchCurve()[i].rate, original.batchCurve()[i].rate);
  }
}

TEST(PolicyJson, RoundTripsSimpleAndCyclic) {
  const ProtectionPolicy simple(
      WindowSpec{.accW = weeks(1), .propW = hours(48), .holdW = hours(1)}, 4,
      weeks(4));
  const ProtectionPolicy reloadedSimple =
      policyFromJson(policyToJson(simple));
  EXPECT_EQ(reloadedSimple.primaryWindows().accW, weeks(1));
  EXPECT_EQ(reloadedSimple.primaryWindows().propW, hours(48));
  EXPECT_EQ(reloadedSimple.retentionCount(), 4);
  EXPECT_FALSE(reloadedSimple.isCyclic());

  const ProtectionPolicy cyclic(
      WindowSpec{.accW = weeks(1), .propW = hours(48), .holdW = hours(1)},
      WindowSpec{.accW = hours(24),
                 .propW = hours(12),
                 .holdW = hours(1),
                 .propRep = Representation::kPartial},
      5, weeks(1), 4, weeks(4));
  const ProtectionPolicy reloadedCyclic =
      policyFromJson(policyToJson(cyclic));
  ASSERT_TRUE(reloadedCyclic.isCyclic());
  EXPECT_EQ(reloadedCyclic.cycleCount(), 5);
  EXPECT_EQ(reloadedCyclic.secondaryWindows()->propRep,
            Representation::kPartial);
  EXPECT_EQ(reloadedCyclic.cyclePeriod(), weeks(1));
}

TEST(DeviceJson, RoundTripsEveryDeviceType) {
  const StorageDesign baseline = cs::baseline();
  const StorageDesign mirror = cs::asyncBatchMirror(3);
  std::vector<DevicePtr> devices = baseline.devices();
  for (const auto& d : mirror.devices()) devices.push_back(d);

  for (const DevicePtr& device : devices) {
    const DevicePtr reloaded = deviceFromJson(deviceToJson(*device));
    EXPECT_EQ(reloaded->name(), device->name());
    EXPECT_EQ(reloaded->location(), device->location());
    EXPECT_EQ(reloaded->usableCapacity(), device->usableCapacity());
    EXPECT_EQ(reloaded->maxBandwidth(), device->maxBandwidth());
    EXPECT_EQ(reloaded->accessDelay(), device->accessDelay());
    EXPECT_EQ(reloaded->isTransport(), device->isTransport());
    EXPECT_EQ(reloaded->deliversPhysically(), device->deliversPhysically());
    EXPECT_EQ(reloaded->spec().spare.type, device->spec().spare.type);
    EXPECT_DOUBLE_EQ(
        reloaded->annualOutlay(gigabytes(100), mbPerSec(5), 2.0).usd(),
        device->annualOutlay(gigabytes(100), mbPerSec(5), 2.0).usd());
  }
}

TEST(ScenarioJson, RoundTrips) {
  for (const FailureScenario& scenario :
       {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster(),
        FailureScenario::buildingFailure("b1"),
        FailureScenario::regionDisaster("west")}) {
    const FailureScenario reloaded =
        scenarioFromJson(scenarioToJson(scenario));
    EXPECT_EQ(reloaded.scope, scenario.scope);
    EXPECT_EQ(reloaded.target, scenario.target);
    EXPECT_EQ(reloaded.recoveryTargetAge, scenario.recoveryTargetAge);
    EXPECT_EQ(reloaded.recoverySize.has_value(),
              scenario.recoverySize.has_value());
  }
}

/// Round-tripping a design must preserve its evaluation results exactly.
class DesignRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(DesignRoundTrip, EvaluationInvariant) {
  const auto designs = cs::allWhatIfDesigns();
  const auto& [label, original] = designs[static_cast<size_t>(GetParam())];
  const StorageDesign reloaded = loadDesign(saveDesign(original));
  EXPECT_EQ(reloaded.name(), original.name());
  EXPECT_EQ(reloaded.levelCount(), original.levelCount());

  for (const FailureScenario& scenario :
       {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
    const EvaluationResult a = evaluate(original, scenario);
    const EvaluationResult b = evaluate(reloaded, scenario);
    EXPECT_EQ(a.recovery.recoverable, b.recovery.recoverable) << label;
    if (a.recovery.recoverable) {
      EXPECT_DOUBLE_EQ(a.recovery.recoveryTime.secs(),
                       b.recovery.recoveryTime.secs())
          << label;
      EXPECT_DOUBLE_EQ(a.recovery.dataLoss.secs(), b.recovery.dataLoss.secs())
          << label;
      EXPECT_DOUBLE_EQ(a.cost.totalCost.usd(), b.cost.totalCost.usd())
          << label;
    }
    EXPECT_DOUBLE_EQ(a.utilization.overallCapUtil,
                     b.utilization.overallCapUtil)
        << label;
    EXPECT_DOUBLE_EQ(a.cost.totalOutlays.usd(), b.cost.totalOutlays.usd())
        << label;
  }
}

INSTANTIATE_TEST_SUITE_P(AllDesigns, DesignRoundTrip, ::testing::Range(0, 7));

TEST(DesignJson, HumanNotationAccepted) {
  // A hand-written design using the paper's notation throughout.
  const std::string text = R"({
    "name": "hand-written",
    "workload": {
      "name": "small",
      "dataCap": "100 GB",
      "avgAccessR": "1 MB/s",
      "avgUpdateR": "500 KB/s",
      "burstM": 5,
      "batchUpdR": [
        {"window": "1 min", "rate": "400 KB/s"},
        {"window": "12 hr", "rate": "200 KB/s"}
      ]
    },
    "business": {"unavailPenRatePerHour": 50000, "lossPenRatePerHour": 50000},
    "devices": [
      {"type": "disk_array", "name": "array", "location": {"site": "hq"},
       "raid": "RAID-1", "maxCapSlots": 16, "slotCap": "73 GB",
       "maxBWSlots": 16, "slotBW": "25 MB/s", "enclBW": "200 MB/s",
       "costs": {"fixed": "$20K", "perGB": 17.2},
       "spare": {"type": "dedicated", "provisioningTime": "0.02 hr"}}
    ],
    "levels": [
      {"technique": "primary_copy", "array": "array"},
      {"technique": "split_mirror", "array": "array",
       "policy": {"windows": {"accW": "12 hr"}, "retCnt": 3,
                  "retW": "1 day + 12 hr"}}
    ]
  })";
  const StorageDesign design = loadDesign(text);
  EXPECT_EQ(design.name(), "hand-written");
  EXPECT_EQ(design.levelCount(), 2);
  EXPECT_EQ(design.workload().dataCap(), gigabytes(100));
  const EvaluationResult result =
      evaluate(design, FailureScenario::objectFailure(hours(13), megabytes(1)));
  EXPECT_TRUE(result.recovery.recoverable);
  EXPECT_EQ(result.recovery.dataLoss, hours(12));
}

TEST(DesignJson, ErrorsAreDiagnosed) {
  EXPECT_THROW((void)loadDesign("{}"), std::runtime_error);
  // Unknown device reference.
  const std::string badRef = R"({
    "name": "x",
    "workload": {"name": "w", "dataCap": "1 GB", "avgAccessR": "1 MB/s",
                 "avgUpdateR": "1 KB/s", "burstM": 1, "batchUpdR": []},
    "business": {"unavailPenRatePerHour": 1, "lossPenRatePerHour": 1},
    "devices": [],
    "levels": [{"technique": "primary_copy", "array": "missing"}]
  })";
  EXPECT_THROW((void)loadDesign(badRef), DesignIoError);
}

TEST(DesignJson, ShippedDesignFilesEvaluate) {
  // The repository ships the seven case-study designs under designs/; they
  // must load and evaluate identically to the in-code builders. The test
  // locates the directory relative to the source tree.
  const std::string dir = std::string(STORDEP_SOURCE_DIR) + "/designs/";
  const std::vector<std::pair<std::string, StorageDesign>> expected = {
      {"baseline.json", cs::baseline()},
      {"weekly_vault.json", cs::weeklyVault()},
      {"weekly_vault_full_plus_incremental.json",
       cs::weeklyVaultFullPlusIncremental()},
      {"weekly_vault_daily_full.json", cs::weeklyVaultDailyFull()},
      {"weekly_vault_daily_full_snapshot.json",
       cs::weeklyVaultDailyFullSnapshot()},
      {"async_batch_mirror_1link.json", cs::asyncBatchMirror(1)},
      {"async_batch_mirror_10links.json", cs::asyncBatchMirror(10)},
  };
  for (const auto& [file, builder] : expected) {
    const StorageDesign loaded = loadDesignFile(dir + file);
    for (const FailureScenario& scenario :
         {cs::arrayFailure(), cs::siteDisaster()}) {
      const EvaluationResult a = evaluate(loaded, scenario);
      const EvaluationResult b = evaluate(builder, scenario);
      EXPECT_DOUBLE_EQ(a.cost.totalCost.usd(), b.cost.totalCost.usd())
          << file;
      EXPECT_DOUBLE_EQ(a.recovery.dataLoss.secs(), b.recovery.dataLoss.secs())
          << file;
    }
  }
}

TEST(DesignJson, FileRoundTrip) {
  const std::string path = "/tmp/stordep_design_io_test.json";
  saveDesignFile(cs::baseline(), path);
  const StorageDesign reloaded = loadDesignFile(path);
  EXPECT_EQ(reloaded.name(), "baseline");
  EXPECT_EQ(reloaded.levelCount(), 4);
  std::remove(path.c_str());
  EXPECT_THROW((void)loadDesignFile("/nonexistent/nope.json"), DesignIoError);
}

}  // namespace
}  // namespace stordep::config
