// Tests for core/data_loss: the three-case loss model and recovery-source
// selection (paper Sec 3.3.3), on the case-study scenarios.
#include "core/data_loss.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"

namespace stordep {
namespace {

using casestudy::arrayFailure;
using casestudy::baseline;
using casestudy::objectFailure;
using casestudy::siteDisaster;

TEST(LevelDestroyed, ScopesKnockOutTheRightLevels) {
  const StorageDesign d = baseline();
  const auto object = objectFailure();
  const auto array = arrayFailure();
  const auto site = siteDisaster();
  // Object corruption destroys no hardware.
  for (int i = 0; i < d.levelCount(); ++i) {
    EXPECT_FALSE(levelDestroyed(d, i, object)) << i;
  }
  // Array failure kills the primary copy and the on-array split mirrors.
  EXPECT_TRUE(levelDestroyed(d, 0, array));
  EXPECT_TRUE(levelDestroyed(d, 1, array));
  EXPECT_FALSE(levelDestroyed(d, 2, array));
  EXPECT_FALSE(levelDestroyed(d, 3, array));
  // Site disaster also takes the tape library; the vault survives off-site.
  EXPECT_TRUE(levelDestroyed(d, 0, site));
  EXPECT_TRUE(levelDestroyed(d, 1, site));
  EXPECT_TRUE(levelDestroyed(d, 2, site));
  EXPECT_FALSE(levelDestroyed(d, 3, site));
}

TEST(AssessLevel, ObjectFailureCorruptsPrimary) {
  const StorageDesign d = baseline();
  const auto a = assessLevel(d, 0, objectFailure());
  EXPECT_EQ(a.lossCase, LossCase::kLevelCorrupted);
  EXPECT_TRUE(a.dataLoss.isInfinite());
}

TEST(AssessLevel, ObjectFailureSplitMirrorWithinRange) {
  const StorageDesign d = baseline();
  // 24 h target sits inside the mirror's [12 h, 36 h] range: loss = accW.
  const auto a = assessLevel(d, 1, objectFailure());
  EXPECT_EQ(a.lossCase, LossCase::kWithinRange);
  EXPECT_EQ(a.dataLoss, hours(12));  // Table 6
}

TEST(AssessLevel, ArrayFailureBackupNotYetPropagated) {
  const StorageDesign d = baseline();
  const auto a = assessLevel(d, 2, arrayFailure());
  EXPECT_EQ(a.lossCase, LossCase::kNotYetPropagated);
  EXPECT_EQ(a.dataLoss, hours(217));  // Table 6
}

TEST(AssessLevel, SiteDisasterVaultNotYetPropagated) {
  const StorageDesign d = baseline();
  const auto a = assessLevel(d, 3, siteDisaster());
  EXPECT_EQ(a.lossCase, LossCase::kNotYetPropagated);
  EXPECT_EQ(a.dataLoss, hours(1429));  // Table 6
}

TEST(AssessLevel, TargetOlderThanRetention) {
  const StorageDesign d = baseline();
  // Ask for a version from 5 years ago: even the vault (3 yr) has retired it.
  const auto scenario =
      FailureScenario::objectFailure(years(5), megabytes(1));
  for (int i = 1; i < d.levelCount(); ++i) {
    const auto a = assessLevel(d, i, scenario);
    EXPECT_EQ(a.lossCase, LossCase::kTooOld) << "level " << i;
    EXPECT_TRUE(a.dataLoss.isInfinite());
  }
  EXPECT_FALSE(chooseRecoverySource(d, scenario).has_value());
}

TEST(AssessLevel, OldTargetServedByDeeperLevel) {
  const StorageDesign d = baseline();
  // A 3-week-old version: the split mirror (36 h) can't help; backup can.
  const auto scenario =
      FailureScenario::objectFailure(weeks(3), megabytes(1));
  EXPECT_EQ(assessLevel(d, 1, scenario).lossCase, LossCase::kTooOld);
  const auto backup = assessLevel(d, 2, scenario);
  EXPECT_EQ(backup.lossCase, LossCase::kWithinRange);
  EXPECT_EQ(backup.dataLoss, weeks(1));  // weekly RPs at the backup level
  const auto chosen = chooseRecoverySource(d, scenario);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->level, 2);
}

TEST(ChooseRecoverySource, PaperTable6Sources) {
  const StorageDesign d = baseline();
  const auto object = chooseRecoverySource(d, objectFailure());
  ASSERT_TRUE(object.has_value());
  EXPECT_EQ(object->level, 1);  // split mirror
  const auto array = chooseRecoverySource(d, arrayFailure());
  ASSERT_TRUE(array.has_value());
  EXPECT_EQ(array->level, 2);  // tape backup
  const auto site = chooseRecoverySource(d, siteDisaster());
  ASSERT_TRUE(site.has_value());
  EXPECT_EQ(site->level, 3);  // remote vault
}

TEST(ChooseRecoverySource, PrimarySurvivesNonPrimaryFailure) {
  const StorageDesign d = baseline();
  // A failure that only hits the tape library leaves the primary intact:
  // recovery is trivial (source = level 0, no loss).
  const auto scenario = FailureScenario::arrayFailure("tape-library");
  const auto chosen = chooseRecoverySource(d, scenario);
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->level, 0);
  EXPECT_EQ(chosen->dataLoss, Duration::zero());
}

TEST(ChooseRecoverySource, MirrorCannotServeOldRollback) {
  // An async-batch mirror holds only the current state; a 24 h rollback must
  // fail when it is the only secondary level.
  const StorageDesign d = casestudy::asyncBatchMirror(1);
  const auto chosen = chooseRecoverySource(d, objectFailure());
  EXPECT_FALSE(chosen.has_value());
  const auto a = assessLevel(d, 1, objectFailure());
  EXPECT_EQ(a.lossCase, LossCase::kTooOld);
}

TEST(ChooseRecoverySource, MirrorServesCurrentTarget) {
  const StorageDesign d = casestudy::asyncBatchMirror(1);
  const auto chosen = chooseRecoverySource(d, arrayFailure());
  ASSERT_TRUE(chosen.has_value());
  EXPECT_EQ(chosen->level, 1);
  EXPECT_EQ(chosen->dataLoss, minutes(2));  // Table 7: 0.03 hr
}

TEST(AssessLevel, RollbackTargetReducesCase1Loss) {
  const StorageDesign d = baseline();
  // For a 24 h-old target, the backup level's loss is its lag minus the
  // target age: the requested point predates the target by lag, but only
  // updates back to the target count as loss.
  const auto scenario =
      FailureScenario::objectFailure(hours(24), megabytes(1));
  const auto a = assessLevel(d, 2, scenario);
  EXPECT_EQ(a.lossCase, LossCase::kNotYetPropagated);
  EXPECT_EQ(a.dataLoss, hours(217 - 24));
}

TEST(AssessAllLevels, CoversEveryLevel) {
  const StorageDesign d = baseline();
  const auto all = assessAllLevels(d, arrayFailure());
  ASSERT_EQ(all.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(all[static_cast<size_t>(i)].level, i);
  EXPECT_EQ(all[0].lossCase, LossCase::kLevelDestroyed);
  EXPECT_EQ(all[1].lossCase, LossCase::kLevelDestroyed);
}

TEST(LossCase, Names) {
  EXPECT_EQ(toString(LossCase::kNotYetPropagated), "target not yet propagated");
  EXPECT_EQ(toString(LossCase::kWithinRange), "target within retained range");
  EXPECT_EQ(toString(LossCase::kTooOld), "target older than retention");
  EXPECT_EQ(toString(LossCase::kLevelDestroyed), "level destroyed");
  EXPECT_EQ(toString(LossCase::kLevelCorrupted), "level corrupted");
}

// Property sweep: data loss is monotone in the rollback target age — asking
// for an older restoration point never *increases* the loss, until the
// target falls off the end of retention.
class TargetAgeSweep : public ::testing::TestWithParam<double> {};

TEST_P(TargetAgeSweep, LossIsBoundedByLag) {
  const StorageDesign d = baseline();
  const Duration target = hours(GetParam());
  const auto scenario = FailureScenario::objectFailure(target, megabytes(1));
  for (int i = 1; i < d.levelCount(); ++i) {
    const auto a = assessLevel(d, i, scenario);
    if (a.dataLoss.isFinite()) {
      EXPECT_LE(a.dataLoss, rpTimeLag(d, i)) << "level " << i;
      EXPECT_GE(a.dataLoss.secs(), 0.0);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Ages, TargetAgeSweep,
                         ::testing::Values(0.0, 6.0, 12.0, 24.0, 48.0, 100.0,
                                           217.0, 400.0, 1000.0));

}  // namespace
}  // namespace stordep
