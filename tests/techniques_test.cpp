// Tests for the data-protection technique models: each technique's
// normal-mode demand conversion (paper Sec 3.2.3), validated against the
// case study's published Table 5 numbers where applicable.
#include <gtest/gtest.h>

#include <map>

#include "casestudy/casestudy.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/foreground.hpp"
#include "core/techniques/remote_mirror.hpp"
#include "core/techniques/snapshot.hpp"
#include "core/techniques/split_mirror.hpp"
#include "core/techniques/vaulting.hpp"
#include "devices/catalog.hpp"

namespace stordep {
namespace {

WorkloadSpec cello() { return casestudy::celloWorkload(); }

DevicePtr array() {
  return catalog::midrangeDiskArray("array", Location::at("site"));
}
DevicePtr library() {
  return catalog::enterpriseTapeLibrary("library", Location::at("site"));
}

ProtectionPolicy simplePolicy(Duration accW, Duration propW, Duration holdW,
                              int retCnt, Duration retW) {
  return ProtectionPolicy(WindowSpec{.accW = accW,
                                     .propW = propW,
                                     .holdW = holdW,
                                     .propRep = Representation::kFull},
                          retCnt, retW);
}

/// Sums a technique's demands on one device.
std::pair<Bandwidth, Bytes> demandOn(const Technique& tech,
                                     const WorkloadSpec& w,
                                     const DevicePtr& device) {
  Bandwidth bw = Bandwidth::zero();
  Bytes cap{0};
  for (const auto& pd : tech.normalModeDemands(w)) {
    if (pd.device.get() == device.get()) {
      bw += pd.demand.bandwidth;
      cap += pd.demand.capacity;
    }
  }
  return {bw, cap};
}

TEST(PrimaryCopy, ForegroundDemands) {
  const auto a = array();
  const PrimaryCopy primary(a);
  const auto [bw, cap] = demandOn(primary, cello(), a);
  // Table 5: foreground = 0.2% of 512 MB/s and 14.6% of the array.
  EXPECT_NEAR(bw.mbPerSec(), 1.0, 0.01);
  EXPECT_DOUBLE_EQ(cap.gigabytes(), 1360.0);
  EXPECT_NEAR(bw / a->maxBandwidth(), 0.002, 0.0002);
  EXPECT_NEAR(cap / a->usableCapacity(), 0.146, 0.001);
  EXPECT_TRUE(primary.normalModeDemands(cello())[0].demand.isPrimaryTechnique);
  EXPECT_EQ(primary.policy(), nullptr);
}

TEST(PrimaryCopy, RequiresArray) {
  EXPECT_THROW(PrimaryCopy(nullptr), TechniqueError);
}

TEST(SplitMirror, DemandsMatchTable5) {
  const auto a = array();
  const SplitMirror sm("split mirror", a,
                       simplePolicy(hours(12), Duration::zero(),
                                    Duration::zero(), 4, days(2)));
  EXPECT_EQ(sm.mirrorCount(), 5);
  const auto [bw, cap] = demandOn(sm, cello(), a);
  // Table 5: split mirror = 72.8% capacity (6800 GB of 9344) and 0.6% bw.
  EXPECT_DOUBLE_EQ(cap.gigabytes(), 5 * 1360.0);
  EXPECT_NEAR(cap / a->usableCapacity(), 0.728, 0.001);
  EXPECT_NEAR(bw.mbPerSec(), 3.17, 0.1);
  EXPECT_NEAR(bw / a->maxBandwidth(), 0.006, 0.0005);
}

TEST(SplitMirror, RestoreIsIntraArrayCopy) {
  const auto a = array();
  const SplitMirror sm("sm", a,
                       simplePolicy(hours(12), Duration::zero(),
                                    Duration::zero(), 4, days(2)));
  const auto legs = sm.recoveryLegs(a);
  ASSERT_EQ(legs.size(), 1u);
  EXPECT_EQ(legs[0].from.get(), a.get());
  EXPECT_EQ(legs[0].to.get(), a.get());
  EXPECT_EQ(legs[0].via, nullptr);
}

TEST(VirtualSnapshot, CowDemands) {
  const auto a = array();
  const VirtualSnapshot snap("snap", a,
                             simplePolicy(hours(12), Duration::zero(),
                                          Duration::zero(), 4, days(2)));
  const auto [bw, cap] = demandOn(snap, cello(), a);
  // COW: an extra read + write per foreground write.
  EXPECT_NEAR(bw.kbPerSec(), 2 * 799.0, 1e-6);
  // Capacity: 4 snapshots x 12 h of unique updates (350 KB/s) ~ 56 GB —
  // two orders of magnitude below split mirrors.
  const double expectGB = 4 * 350.0 * 1024 * 12 * 3600 / (1024.0 * 1024 * 1024);
  EXPECT_NEAR(cap.gigabytes(), expectGB, 0.01);
  EXPECT_LT(cap.gigabytes(), 6800 / 50.0);
}

TEST(RemoteMirror, SyncSizedForPeakRate) {
  const auto src = array();
  const auto dst = catalog::midrangeDiskArray("remote", Location::at("far"));
  const auto links = catalog::oc3WanLinks("wan", Location::at("wide-area"), 10);
  const RemoteMirror m("sync", MirrorMode::kSync, src, dst, links,
                       continuousMirrorPolicy());
  // Peak = avgUpdateR x burstM = 7.8 MB/s.
  EXPECT_NEAR(m.propagationRate(cello()).kbPerSec(), 7990.0, 1e-6);
  const auto [linkBw, linkCap] = demandOn(m, cello(), links);
  EXPECT_NEAR(linkBw.kbPerSec(), 7990.0, 1e-6);
  EXPECT_DOUBLE_EQ(linkCap.bytes(), 0.0);
  const auto [dstBw, dstCap] = demandOn(m, cello(), dst);
  EXPECT_NEAR(dstBw.kbPerSec(), 7990.0, 1e-6);
  EXPECT_DOUBLE_EQ(dstCap.gigabytes(), 1360.0);
  // No demand on the source array's client interface.
  const auto [srcBw, srcCap] = demandOn(m, cello(), src);
  EXPECT_DOUBLE_EQ(srcBw.bytesPerSec(), 0.0);
  EXPECT_DOUBLE_EQ(srcCap.bytes(), 0.0);
}

TEST(RemoteMirror, AsyncSizedForAverageRate) {
  const auto src = array();
  const auto dst = catalog::midrangeDiskArray("remote", Location::at("far"));
  const auto links = catalog::oc3WanLinks("wan", Location::at("wide-area"), 1);
  const RemoteMirror m("async", MirrorMode::kAsync, src, dst, links,
                       continuousMirrorPolicy());
  EXPECT_NEAR(m.propagationRate(cello()).kbPerSec(), 799.0, 1e-6);
}

TEST(RemoteMirror, AsyncBatchSizedForUniqueUpdates) {
  const auto src = array();
  const auto dst = catalog::midrangeDiskArray("remote", Location::at("far"));
  const auto links = catalog::oc3WanLinks("wan", Location::at("wide-area"), 1);
  const RemoteMirror m(
      "asyncb", MirrorMode::kAsyncBatch, src, dst, links,
      simplePolicy(minutes(1), minutes(1), Duration::zero(), 1, minutes(1)));
  // 1-minute batches: coalesced unique rate 727 KB/s (Table 2).
  EXPECT_NEAR(m.propagationRate(cello()).kbPerSec(), 727.0, 1e-6);
  // Batch coalescing beats shipping every update, which beats sync peak.
  const RemoteMirror async("a", MirrorMode::kAsync, src, dst, links,
                           continuousMirrorPolicy());
  const RemoteMirror sync("s", MirrorMode::kSync, src, dst, links,
                          continuousMirrorPolicy());
  EXPECT_LT(m.propagationRate(cello()).bytesPerSec(),
            async.propagationRate(cello()).bytesPerSec());
  EXPECT_LT(async.propagationRate(cello()).bytesPerSec(),
            sync.propagationRate(cello()).bytesPerSec());
}

TEST(RemoteMirror, Validation) {
  const auto src = array();
  const auto dst = catalog::midrangeDiskArray("remote", Location::at("far"));
  const auto links = catalog::oc3WanLinks("wan", Location::at("wide-area"), 1);
  EXPECT_THROW(RemoteMirror("m", MirrorMode::kSync, src, src, links,
                            continuousMirrorPolicy()),
               TechniqueError);
  EXPECT_THROW(RemoteMirror("m", MirrorMode::kSync, nullptr, dst, links,
                            continuousMirrorPolicy()),
               TechniqueError);
  // Async-batch needs a real batch window.
  EXPECT_THROW(RemoteMirror("m", MirrorMode::kAsyncBatch, src, dst, links,
                            continuousMirrorPolicy()),
               TechniqueError);
}

TEST(Backup, FullOnlyDemandsMatchTable5) {
  const auto a = array();
  const auto lib = library();
  const Backup b("tape backup", BackupStyle::kFullOnly, a, lib,
                 simplePolicy(weeks(1), hours(48), hours(1), 4, weeks(4)));
  // Full rate: 1360 GB / 48 h ~ 8.06 MB/s.
  EXPECT_NEAR(b.transferRate(cello()).mbPerSec(), 8.06, 0.01);
  const auto [arrBw, arrCap] = demandOn(b, cello(), a);
  EXPECT_NEAR(arrBw.mbPerSec(), 8.06, 0.01);
  EXPECT_DOUBLE_EQ(arrCap.bytes(), 0.0);  // PiT copy provides the image
  const auto [libBw, libCap] = demandOn(b, cello(), lib);
  EXPECT_NEAR(libBw.mbPerSec(), 8.06, 0.01);
  // Table 5: 4 retained fulls + 1 extra = 6800 GB ("6.6 TB", 3.4%).
  EXPECT_DOUBLE_EQ(libCap.gigabytes(), 5 * 1360.0);
  EXPECT_NEAR(libCap / lib->usableCapacity(), 0.034, 0.001);
}

TEST(Backup, CumulativeIncrementalCycle) {
  const auto a = array();
  const auto lib = library();
  const ProtectionPolicy policy(
      WindowSpec{.accW = weeks(1), .propW = hours(48), .holdW = hours(1)},
      WindowSpec{.accW = hours(24), .propW = hours(12), .holdW = hours(1)},
      /*cycleCount=*/5, weeks(1), 4, weeks(4));
  const Backup b("f+i", BackupStyle::kCumulativeIncremental, a, lib, policy);

  // Largest cumulative incremental: 5 days of unique updates at 317 KB/s
  // ~ 130 GB, over 12 h ~ 3.1 MB/s < the full's 8.06 MB/s.
  EXPECT_NEAR(b.transferRate(cello()).mbPerSec(), 8.06, 0.01);

  // Cycle capacity: full + sum of growing cumulative incrementals.
  const WorkloadSpec w = cello();
  Bytes expected = w.dataCap();
  for (int k = 1; k <= 5; ++k) {
    expected += w.uniqueBytes(hours(24 * k));
  }
  EXPECT_TRUE(approxEqual(b.cycleCapacity(w), expected, 1e-9));

  // Restore payload: the full plus the largest incremental.
  EXPECT_TRUE(approxEqual(b.restorePayload(w, w.dataCap()),
                          w.dataCap() + w.uniqueBytes(hours(120)), 1e-9));
}

TEST(Backup, DifferentialIncrementalCycle) {
  const auto a = array();
  const auto lib = library();
  const ProtectionPolicy policy(
      WindowSpec{.accW = weeks(1), .propW = hours(48), .holdW = hours(1)},
      WindowSpec{.accW = hours(24), .propW = hours(12), .holdW = hours(1)},
      /*cycleCount=*/5, weeks(1), 4, weeks(4));
  const Backup b("f+d", BackupStyle::kDifferentialIncremental, a, lib, policy);
  const WorkloadSpec w = cello();
  // Each differential covers exactly one day.
  const Bytes daily = w.uniqueBytes(hours(24));
  EXPECT_TRUE(approxEqual(b.cycleCapacity(w),
                          w.dataCap() + daily * 5.0, 1e-9));
  // Restore must replay all five differentials.
  EXPECT_TRUE(approxEqual(b.restorePayload(w, w.dataCap()),
                          w.dataCap() + daily * 5.0, 1e-9));
  // Differentials are individually smaller than the largest cumulative.
  const Backup cum("f+i", BackupStyle::kCumulativeIncremental, a, lib, policy);
  EXPECT_LT(b.transferRate(w).bytesPerSec() - 1.0,
            cum.transferRate(w).bytesPerSec());
}

TEST(Backup, PartialObjectRestoreScalesIncrementals) {
  const auto a = array();
  const auto lib = library();
  const ProtectionPolicy policy(
      WindowSpec{.accW = weeks(1), .propW = hours(48), .holdW = hours(1)},
      WindowSpec{.accW = hours(24), .propW = hours(12), .holdW = hours(1)}, 5,
      weeks(1), 4, weeks(4));
  const Backup b("f+i", BackupStyle::kCumulativeIncremental, a, lib, policy);
  const WorkloadSpec w = cello();
  const Bytes small = b.restorePayload(w, megabytes(1));
  // Restoring 1 MB reads ~1 MB + a proportional sliver of incrementals.
  EXPECT_LT(small.megabytes(), 2.0);
  EXPECT_GE(small.megabytes(), 1.0);
}

TEST(Backup, Validation) {
  const auto a = array();
  const auto lib = library();
  // Zero propagation window.
  EXPECT_THROW(Backup("b", BackupStyle::kFullOnly, a, lib,
                      simplePolicy(weeks(1), Duration::zero(), hours(1), 4,
                                   weeks(4))),
               TechniqueError);
  // Incremental style without a cyclic policy.
  EXPECT_THROW(Backup("b", BackupStyle::kCumulativeIncremental, a, lib,
                      simplePolicy(weeks(1), hours(48), hours(1), 4, weeks(4))),
               TechniqueError);
  // Full-only with a cyclic policy.
  const ProtectionPolicy cyclic(
      WindowSpec{.accW = weeks(1), .propW = hours(48), .holdW = hours(1)},
      WindowSpec{.accW = hours(24), .propW = hours(12), .holdW = hours(1)}, 5,
      weeks(1), 4, weeks(4));
  EXPECT_THROW(Backup("b", BackupStyle::kFullOnly, a, lib, cyclic),
               TechniqueError);
}

TEST(Vaulting, NoExtraDemandsWhenHoldCoversRetention) {
  const auto lib = library();
  const auto vault = catalog::offsiteTapeVault("vault", Location::at("far"));
  const auto air = catalog::overnightAirShipment("air", Location::at("t"));
  // Baseline: holdW (4 wk + 12 h) >= backup retW (4 wk).
  const Vaulting v("vault", lib, vault, air,
                   simplePolicy(weeks(4), hours(24), weeks(4) + hours(12), 39,
                                years(3)),
                   /*backupRetentionWindow=*/weeks(4));
  EXPECT_FALSE(v.needsExtraCopy());
  const auto [libBw, libCap] = demandOn(v, cello(), lib);
  EXPECT_DOUBLE_EQ(libBw.bytesPerSec(), 0.0);
  EXPECT_DOUBLE_EQ(libCap.bytes(), 0.0);
  // Table 5: 39 fulls = 51.8 TB, 2.6% of the vault.
  const auto [vBw, vCap] = demandOn(v, cello(), vault);
  EXPECT_DOUBLE_EQ(vCap.gigabytes(), 39 * 1360.0);
  EXPECT_NEAR(vCap / vault->usableCapacity(), 0.026, 0.001);
  EXPECT_DOUBLE_EQ(vBw.bytesPerSec(), 0.0);
  // 13 shipments per year (every 4 weeks).
  EXPECT_NEAR(v.shipmentsPerYear(), 365.0 / 28.0, 1e-9);
}

TEST(Vaulting, ExtraCopyWhenShippingEarly) {
  const auto lib = library();
  const auto vault = catalog::offsiteTapeVault("vault", Location::at("far"));
  const auto air = catalog::overnightAirShipment("air", Location::at("t"));
  // Weekly vaulting with a 12 h hold ships tapes well before the 4-week
  // backup retention expires: the library must cut a copy first.
  const Vaulting v("vault", lib, vault, air,
                   simplePolicy(weeks(1), hours(24), hours(12), 157, years(3)),
                   /*backupRetentionWindow=*/weeks(4));
  EXPECT_TRUE(v.needsExtraCopy());
  const auto [libBw, libCap] = demandOn(v, cello(), lib);
  // Read + write of one full within the 24 h propagation window.
  EXPECT_NEAR(libBw.mbPerSec(), 2 * 1360.0 * 1024 / (24 * 3600), 0.1);
  EXPECT_DOUBLE_EQ(libCap.gigabytes(), 1360.0);
}

TEST(Vaulting, RecoveryPathShipsThenReads) {
  const auto lib = library();
  const auto vault = catalog::offsiteTapeVault("vault", Location::at("far"));
  const auto air = catalog::overnightAirShipment("air", Location::at("t"));
  const auto a = array();
  const Vaulting v("vault", lib, vault, air,
                   simplePolicy(weeks(4), hours(24), weeks(4) + hours(12), 39,
                                years(3)),
                   weeks(4));
  const auto legs = v.recoveryLegs(a);
  ASSERT_EQ(legs.size(), 2u);
  EXPECT_EQ(legs[0].from.get(), vault.get());
  EXPECT_EQ(legs[0].to.get(), lib.get());
  EXPECT_EQ(legs[0].via.get(), air.get());
  EXPECT_EQ(legs[1].from.get(), lib.get());
  EXPECT_EQ(legs[1].to.get(), a.get());
  EXPECT_EQ(legs[1].serializedFix, lib->accessDelay());
}

TEST(Vaulting, Validation) {
  const auto lib = library();
  const auto vault = catalog::offsiteTapeVault("vault", Location::at("far"));
  const auto air = catalog::overnightAirShipment("air", Location::at("t"));
  EXPECT_THROW(Vaulting("v", lib, vault, /*shipment=*/lib,
                        ProtectionPolicy(WindowSpec{.accW = weeks(4),
                                                    .propW = hours(24),
                                                    .holdW = weeks(4)},
                                         39, years(3)),
                        weeks(4)),
               TechniqueError);  // shipment must be a transport
  EXPECT_THROW(Vaulting("v", nullptr, vault, air,
                        ProtectionPolicy(WindowSpec{.accW = weeks(4),
                                                    .propW = hours(24),
                                                    .holdW = weeks(4)},
                                         39, years(3)),
                        weeks(4)),
               TechniqueError);
}

TEST(TechniqueKind, Names) {
  EXPECT_EQ(toString(TechniqueKind::kPrimaryCopy), "foreground workload");
  EXPECT_EQ(toString(TechniqueKind::kSplitMirror), "split mirror");
  EXPECT_EQ(toString(TechniqueKind::kVirtualSnapshot), "virtual snapshot");
  EXPECT_EQ(toString(TechniqueKind::kSyncMirror), "sync mirror");
  EXPECT_EQ(toString(TechniqueKind::kAsyncMirror), "async mirror");
  EXPECT_EQ(toString(TechniqueKind::kAsyncBatchMirror), "async batch mirror");
  EXPECT_EQ(toString(TechniqueKind::kBackup), "backup");
  EXPECT_EQ(toString(TechniqueKind::kVaulting), "vaulting");
  EXPECT_EQ(toString(MirrorMode::kSync), "sync");
  EXPECT_EQ(toString(BackupStyle::kFullOnly), "full-only");
}

}  // namespace
}  // namespace stordep
