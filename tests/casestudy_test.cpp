// End-to-end tests reproducing the paper's Section 4 case study through the
// public evaluate() entry point: Table 5 (utilization), Table 6 (recovery),
// Figure 5 (cost structure) and Table 7 (what-if scenarios).
#include <gtest/gtest.h>

#include <algorithm>

#include "casestudy/casestudy.hpp"

namespace stordep {
namespace {

namespace cs = casestudy;

TEST(CaseStudy, BaselineIsFeasibleAndConventional) {
  const StorageDesign d = cs::baseline();
  const EvaluationResult r = evaluate(d, cs::arrayFailure());
  EXPECT_TRUE(r.utilization.feasible());
  EXPECT_TRUE(r.warnings.empty())
      << "unexpected warning: " << (r.warnings.empty() ? "" : r.warnings[0]);
  EXPECT_EQ(d.levelCount(), 4);
  EXPECT_EQ(d.level(1).kind(), TechniqueKind::kSplitMirror);
  EXPECT_EQ(d.level(2).kind(), TechniqueKind::kBackup);
  EXPECT_EQ(d.level(3).kind(), TechniqueKind::kVaulting);
}

TEST(CaseStudy, Table6ObjectFailure) {
  const EvaluationResult r = evaluate(cs::baseline(), cs::objectFailure());
  EXPECT_EQ(r.recovery.sourceName, "split mirror");
  EXPECT_NEAR(r.recovery.recoveryTime.secs(), 0.004, 0.0005);
  EXPECT_EQ(r.recovery.dataLoss, hours(12));
}

TEST(CaseStudy, Table6ArrayFailure) {
  const EvaluationResult r = evaluate(cs::baseline(), cs::arrayFailure());
  EXPECT_EQ(r.recovery.sourceName, "tape backup");
  EXPECT_NEAR(r.recovery.recoveryTime.hrs(), 2.4, 0.15);
  EXPECT_EQ(r.recovery.dataLoss, hours(217));
}

TEST(CaseStudy, Table6SiteDisaster) {
  const EvaluationResult r = evaluate(cs::baseline(), cs::siteDisaster());
  EXPECT_EQ(r.recovery.sourceName, "remote vaulting");
  EXPECT_NEAR(r.recovery.recoveryTime.hrs(), 26.4, 0.2);
  EXPECT_EQ(r.recovery.dataLoss, hours(1429));
}

/// One Table 7 row (array failure and site disaster) for a design.
/// `rtTol` is the relative tolerance on recovery times: two cells carry a
/// wider band because the paper's restore-bandwidth accounting for
/// incremental replay and concurrent vault copies is unpublished (the
/// divergences are itemized in EXPERIMENTS.md).
struct Table7Row {
  const char* label;
  double paperOutlaysM;
  double arrayRtHr, arrayDlHr, arrayTotalM;
  double siteRtHr, siteDlHr, siteTotalM;
  double rtTol;
};

// Published values (Table 7). Total costs recomputed as outlays +
// (RT+DL) x $50k where the paper's own arithmetic is internally
// inconsistent (site rows of the baseline; see EXPERIMENTS.md).
constexpr Table7Row kTable7[] = {
    {"Baseline", 0.97, 2.4, 217, 11.94, 26.4, 1429, 73.74, 0.10},
    {"Weekly vault", 0.99, 2.4, 217, 11.96, 26.4, 253, 14.96, 0.10},
    {"Weekly vault, F+I", 0.99, 4.0, 73, 4.84, 26.4, 253, 14.96, 0.40},
    {"Weekly vault, daily F", 1.01, 2.4, 37, 2.98, 26.4, 217, 13.18, 0.30},
    {"Weekly vault, daily F, snapshot", 0.76, 2.4, 37, 2.73, 26.4, 217, 12.93,
     0.30},
    {"AsyncB mirror, 1 link", 0.93, 21.7, 0.03, 2.01, 21.7, 0.03, 2.01, 0.10},
    {"AsyncB mirror, 10 links", 5.03, 2.8, 0.03, 5.18, 9.8, 0.03, 5.52, 0.10},
};

class Table7Test : public ::testing::TestWithParam<int> {};

TEST_P(Table7Test, RowReproduces) {
  const Table7Row& row = kTable7[GetParam()];
  const auto designs = cs::allWhatIfDesigns();
  const auto it = std::find_if(
      designs.begin(), designs.end(),
      [&](const auto& entry) { return entry.first == row.label; });
  ASSERT_NE(it, designs.end()) << row.label;
  const StorageDesign& d = it->second;

  const EvaluationResult array = evaluate(d, cs::arrayFailure());
  const EvaluationResult site = evaluate(d, cs::siteDisaster());
  ASSERT_TRUE(array.recovery.recoverable) << row.label;
  ASSERT_TRUE(site.recovery.recoverable) << row.label;

  // Outlays: within 25% of the paper. The paper's component costs are only
  // partially published (a ~$0.2M/yr facilities/service block is missing
  // from what can be reconstructed); shapes and orderings are exact.
  EXPECT_NEAR(array.cost.totalOutlays.millionUsd(), row.paperOutlaysM,
              0.25 * row.paperOutlaysM)
      << row.label;

  // Recovery time: per-row tolerance + a small absolute slack.
  EXPECT_NEAR(array.recovery.recoveryTime.hrs(), row.arrayRtHr,
              row.rtTol * row.arrayRtHr + 0.25)
      << row.label;
  EXPECT_NEAR(site.recovery.recoveryTime.hrs(), row.siteRtHr,
              row.rtTol * row.siteRtHr + 0.25)
      << row.label;

  // Data loss: exact policy arithmetic, reproduced to the hour
  // (the async rows are 2 minutes = 0.033 hr).
  EXPECT_NEAR(array.recovery.dataLoss.hrs(), row.arrayDlHr,
              row.arrayDlHr > 1 ? 0.5 : 0.01)
      << row.label;
  EXPECT_NEAR(site.recovery.dataLoss.hrs(), row.siteDlHr,
              row.siteDlHr > 1 ? 0.5 : 0.01)
      << row.label;

  // Total cost: within 12% (penalties dominate and reproduce tightly).
  EXPECT_NEAR(array.cost.totalCost.millionUsd(), row.arrayTotalM,
              0.12 * row.arrayTotalM)
      << row.label;
  EXPECT_NEAR(site.cost.totalCost.millionUsd(), row.siteTotalM,
              0.12 * row.siteTotalM)
      << row.label;
}

INSTANTIATE_TEST_SUITE_P(AllRows, Table7Test, ::testing::Range(0, 7));

TEST(CaseStudy, Table7Orderings) {
  // The qualitative conclusions the paper draws from Table 7.
  const auto designs = cs::allWhatIfDesigns();
  auto total = [&](const char* label, const FailureScenario& s) {
    const auto it = std::find_if(
        designs.begin(), designs.end(),
        [&](const auto& e) { return e.first == label; });
    return evaluate(it->second, s).cost.totalCost.millionUsd();
  };
  const auto array = cs::arrayFailure();
  const auto site = cs::siteDisaster();

  // Weekly vaulting slashes site-disaster cost.
  EXPECT_LT(total("Weekly vault", site), 0.3 * total("Baseline", site));
  // Incrementals cut array-failure cost; daily fulls cut it further.
  EXPECT_LT(total("Weekly vault, F+I", array), total("Weekly vault", array));
  EXPECT_LT(total("Weekly vault, daily F", array),
            total("Weekly vault, F+I", array));
  // Snapshots shave outlays off the daily-full design.
  EXPECT_LT(total("Weekly vault, daily F, snapshot", array),
            total("Weekly vault, daily F", array));
  // The paper's punchline: the single-link mirror is the cheapest design
  // overall despite its long recovery, because outlays dominate.
  double cheapest = 1e30;
  std::string cheapestLabel;
  for (const auto& [label, design] : designs) {
    const double t = evaluate(design, array).cost.totalCost.millionUsd();
    if (t < cheapest) {
      cheapest = t;
      cheapestLabel = label;
    }
  }
  EXPECT_EQ(cheapestLabel, "AsyncB mirror, 1 link");
}

TEST(CaseStudy, WhatIfDesignsAreFeasible) {
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const UtilizationResult u = computeUtilization(design);
    EXPECT_TRUE(u.feasible()) << label << ": "
                              << (u.errors.empty() ? "" : u.errors[0]);
  }
}

TEST(CaseStudy, EvaluateProducesAssessmentsAndObjectives) {
  const EvaluationResult r = evaluate(cs::baseline(), cs::siteDisaster());
  ASSERT_EQ(r.levelAssessments.size(), 4u);
  EXPECT_EQ(r.levelAssessments[3].lossCase, LossCase::kNotYetPropagated);
  EXPECT_TRUE(r.meetsObjectives);  // no RTO/RPO set

  // With a hard RPO of 24 h, the baseline fails a site disaster.
  StorageDesign strict(
      "strict", cs::celloWorkload(),
      BusinessRequirements{.unavailabilityPenaltyRate = dollarsPerHour(50'000),
                           .lossPenaltyRate = dollarsPerHour(50'000),
                           .rto = hours(48),
                           .rpo = hours(24)},
      [] {
        const StorageDesign base = cs::baseline();
        std::vector<TechniquePtr> levels;
        for (int i = 0; i < base.levelCount(); ++i) {
          levels.push_back(base.levelPtr(i));
        }
        return levels;
      }(),
      cs::recoveryFacility());
  const EvaluationResult strictResult = evaluate(strict, cs::siteDisaster());
  EXPECT_FALSE(strictResult.meetsObjectives);
}

}  // namespace
}  // namespace stordep
