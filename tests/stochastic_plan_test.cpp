// Tests for the compiled stochastic TrialPlan: bit-identity with the legacy
// trial loop across thread counts (conditional and mission sampling), arena
// reuse across evaluations, and the legacy fallback for designs the plan
// compiler rejects. Sample comparisons are field-wise — never whole-struct
// memcmp, which would compare padding bytes.
#include "stochastic/trial_plan.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <utility>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "core/reliability.hpp"
#include "devices/catalog.hpp"
#include "engine/batch.hpp"
#include "stochastic/evaluator.hpp"

namespace stordep::stochastic {
namespace {

namespace cs = casestudy;

void expectBitSame(double a, double b, const char* what, std::size_t i) {
  if (std::isnan(a) && std::isnan(b)) return;
  EXPECT_EQ(a, b) << what << " differs at trial " << i;
}

void expectSameConditional(const TrialTrace& got, const TrialTrace& want) {
  ASSERT_EQ(got.conditional.size(), want.conditional.size());
  for (std::size_t i = 0; i < got.conditional.size(); ++i) {
    const ConditionalSample& g = got.conditional[i];
    const ConditionalSample& w = want.conditional[i];
    EXPECT_EQ(g.recoverable, w.recoverable) << "recoverable at trial " << i;
    expectBitSame(g.rt, w.rt, "rt", i);
    expectBitSame(g.dl, w.dl, "dl", i);
    expectBitSame(g.payload, w.payload, "payload", i);
    expectBitSame(g.penalty, w.penalty, "penalty", i);
  }
}

void expectSameMission(const TrialTrace& got, const TrialTrace& want) {
  ASSERT_EQ(got.mission.size(), want.mission.size());
  for (std::size_t i = 0; i < got.mission.size(); ++i) {
    const MissionSample& g = got.mission[i];
    const MissionSample& w = want.mission[i];
    EXPECT_EQ(g.events, w.events) << "events at trial " << i;
    EXPECT_EQ(g.unrecoverable, w.unrecoverable)
        << "unrecoverable at trial " << i;
    expectBitSame(g.penalty, w.penalty, "penalty", i);
    expectBitSame(g.lossBytes, w.lossBytes, "lossBytes", i);
    expectBitSame(g.downtimeSecs, w.downtimeSecs, "downtimeSecs", i);
    ASSERT_EQ(g.eventRtDl.size(), w.eventRtDl.size())
        << "event count at trial " << i;
    for (std::size_t e = 0; e < g.eventRtDl.size(); ++e) {
      expectBitSame(g.eventRtDl[e].first, w.eventRtDl[e].first, "event rt", i);
      expectBitSame(g.eventRtDl[e].second, w.eventRtDl[e].second, "event dl",
                    i);
    }
  }
}

StochasticOptions optionsFor(int threads, bool usePlan, TrialTrace* trace) {
  StochasticOptions options;
  options.trials = 400;
  options.seed = 99;
  options.threads = threads;
  options.usePlan = usePlan;
  options.trace = trace;
  // Site shocks on top of the device-class failure defaults so mission
  // trials contain correlated whole-site events, not just independent
  // device failures.
  options.reliability.siteShockAnnualRate = 2.0;
  return options;
}

// ---- Plan vs legacy, across thread counts ---------------------------------

TEST(StochasticPlan, ConditionalBitIdenticalToLegacyAtAnyThreadCount) {
  const FailureScenario scenario = cs::arrayFailure();
  TrialTrace reference;
  {
    const StochasticEvaluator legacy(
        cs::weeklyVaultFullPlusIncremental(),
        optionsFor(/*threads=*/1, /*usePlan=*/false, &reference));
    ASSERT_FALSE(legacy.usingPlan());
    ASSERT_TRUE(legacy.distributionFor(scenario).ok());
    ASSERT_EQ(reference.conditional.size(), 400u);
  }
  for (const int threads : {1, 2, 4, 8}) {
    TrialTrace trace;
    const StochasticEvaluator viaPlan(
        cs::weeklyVaultFullPlusIncremental(),
        optionsFor(threads, /*usePlan=*/true, &trace));
    ASSERT_TRUE(viaPlan.usingPlan());
    const auto result = viaPlan.distributionFor(scenario);
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    EXPECT_TRUE(result.value().usedPlan);
    EXPECT_GT(result.value().trialsPerSec, 0.0);
    expectSameConditional(trace, reference);
  }
}

TEST(StochasticPlan, MissionBitIdenticalToLegacyAtAnyThreadCount) {
  TrialTrace reference;
  {
    const StochasticEvaluator legacy(
        cs::weeklyVault(),
        optionsFor(/*threads=*/1, /*usePlan=*/false, &reference));
    ASSERT_TRUE(legacy.annualizedRisk().ok());
    ASSERT_EQ(reference.mission.size(), 400u);
  }
  for (const int threads : {1, 2, 4, 8}) {
    TrialTrace trace;
    const StochasticEvaluator viaPlan(
        cs::weeklyVault(), optionsFor(threads, /*usePlan=*/true, &trace));
    ASSERT_TRUE(viaPlan.usingPlan());
    const auto result = viaPlan.annualizedRisk();
    ASSERT_TRUE(result.ok()) << "threads=" << threads;
    EXPECT_TRUE(result.value().usedPlan);
    expectSameMission(trace, reference);
  }
}

TEST(StochasticPlan, EnvelopesMatchBetweenModes) {
  const FailureScenario scenario = cs::siteDisaster();
  const auto run = [&](bool usePlan) {
    const StochasticEvaluator eval(cs::baseline(),
                                   optionsFor(1, usePlan, nullptr));
    auto cond = eval.distributionFor(scenario);
    auto mission = eval.annualizedRisk();
    EXPECT_TRUE(cond.ok());
    EXPECT_TRUE(mission.ok());
    return std::make_pair(cond.value(), mission.value());
  };
  const auto [planCond, planMission] = run(true);
  const auto [legacyCond, legacyMission] = run(false);
  EXPECT_TRUE(planCond.usedPlan);
  EXPECT_FALSE(legacyCond.usedPlan);
  EXPECT_EQ(planCond.unrecoverable, legacyCond.unrecoverable);
  EXPECT_EQ(planCond.rt.max, legacyCond.rt.max);
  EXPECT_EQ(planCond.dl.p99, legacyCond.dl.p99);
  EXPECT_EQ(planCond.penalty.mean, legacyCond.penalty.mean);
  EXPECT_EQ(planCond.expectedPenalty.raw(), legacyCond.expectedPenalty.raw());
  EXPECT_EQ(planMission.eventsPerYear, legacyMission.eventsPerYear);
  EXPECT_EQ(planMission.expectedAnnualPenalty.raw(),
            legacyMission.expectedAnnualPenalty.raw());
  EXPECT_EQ(planMission.expectedAnnualLossBytes.raw(),
            legacyMission.expectedAnnualLossBytes.raw());
  EXPECT_EQ(planMission.expectedAnnualDowntimeHours,
            legacyMission.expectedAnnualDowntimeHours);
}

// ---- Arena reuse -----------------------------------------------------------

TEST(StochasticPlan, MissionTrialsReuseTheThreadArena) {
  // threads = 1 runs every trial inline, so all plan frames come from this
  // thread's arena: after a warm-up evaluation the arena must stop growing,
  // and every trial must have rewound its frame.
  const StochasticEvaluator eval(cs::weeklyVault(),
                                 optionsFor(1, /*usePlan=*/true, nullptr));
  ASSERT_TRUE(eval.usingPlan());
  ASSERT_TRUE(eval.annualizedRisk().ok());  // warm-up sizes the arena

  engine::BumpArena& arena = engine::Engine::threadArena();
  const std::size_t warmBlocks = arena.blockCount();
  const std::size_t warmCapacity = arena.capacity();
  for (int round = 0; round < 3; ++round) {
    ASSERT_TRUE(eval.annualizedRisk().ok());
    EXPECT_EQ(arena.blockCount(), warmBlocks);
    EXPECT_EQ(arena.capacity(), warmCapacity);
    EXPECT_EQ(arena.used(), 0u);  // every missionTrial rewound its frame
  }
}

// ---- Fallback for un-plannable designs -------------------------------------

/// A technique whose restore path has a missing endpoint: EvalPlan::compile
/// rejects it, so TrialPlan::compile must too, and the evaluator must route
/// every trial through the legacy loop regardless of usePlan.
class BrokenRestoreTechnique final : public stordep::Technique {
 public:
  explicit BrokenRestoreTechnique(stordep::DevicePtr storage)
      : Technique("broken restore", stordep::TechniqueKind::kBackup),
        storage_(std::move(storage)),
        policy_(stordep::WindowSpec{stordep::hours(24), stordep::hours(1),
                                    stordep::Duration::zero()},
                /*retentionCount=*/2, stordep::days(14)) {}

  [[nodiscard]] const stordep::ProtectionPolicy* policy()
      const noexcept override {
    return &policy_;
  }
  [[nodiscard]] std::vector<stordep::DevicePtr> storageDevices()
      const override {
    return {storage_};
  }
  [[nodiscard]] std::vector<stordep::PlacedDemand> normalModeDemands(
      const stordep::WorkloadSpec&) const override {
    return {};
  }
  [[nodiscard]] std::vector<stordep::RecoveryLeg> recoveryLegs(
      stordep::DevicePtr) const override {
    return {stordep::RecoveryLeg{nullptr, nullptr, nullptr,
                                 stordep::Duration::zero()}};
  }

 private:
  stordep::DevicePtr storage_;
  stordep::ProtectionPolicy policy_;
};

stordep::StorageDesign brokenRestoreDesign() {
  auto primary = stordep::catalog::midrangeDiskArray(
      "primary array", stordep::Location::at("primary site"));
  auto offsite = stordep::catalog::midrangeDiskArray(
      "offsite array", stordep::Location::at("offsite"));
  std::vector<stordep::TechniquePtr> levels;
  levels.push_back(std::make_shared<stordep::PrimaryCopy>(primary));
  levels.push_back(std::make_shared<BrokenRestoreTechnique>(offsite));
  return stordep::StorageDesign("broken restore design", cs::celloWorkload(),
                                cs::requirements(), std::move(levels));
}

TEST(StochasticPlanFallback, UnplannableDesignRunsLegacyLoop) {
  TrialTrace requested;
  TrialTrace forced;
  const StochasticEvaluator wantsPlan(
      brokenRestoreDesign(), optionsFor(1, /*usePlan=*/true, &requested));
  const StochasticEvaluator legacy(
      brokenRestoreDesign(), optionsFor(1, /*usePlan=*/false, &forced));
  EXPECT_FALSE(wantsPlan.usingPlan());  // compile rejected -> fallback
  EXPECT_FALSE(legacy.usingPlan());

  const FailureScenario scenario = cs::arrayFailure();
  const auto a = wantsPlan.distributionFor(scenario);
  const auto b = legacy.distributionFor(scenario);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_FALSE(a.value().usedPlan);
  expectSameConditional(requested, forced);

  requested.mission.clear();
  forced.mission.clear();
  const auto ma = wantsPlan.annualizedRisk();
  const auto mb = legacy.annualizedRisk();
  ASSERT_TRUE(ma.ok());
  ASSERT_TRUE(mb.ok());
  EXPECT_FALSE(ma.value().usedPlan);
  expectSameMission(requested, forced);
}

}  // namespace
}  // namespace stordep::stochastic
