// Tests for the fault-tolerant evaluation pipeline: per-request error
// isolation, deterministic fault injection, cancellation/deadlines, retry
// budgets, thread-pool failure drain, checkpoint/resume for long sweeps,
// and the design-io error-wrapping contract.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <filesystem>
#include <fstream>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "engine/batch.hpp"
#include "multiobject/portfolio.hpp"
#include "optimizer/checkpoint.hpp"
#include "optimizer/refine.hpp"
#include "optimizer/search.hpp"

namespace stordep {
namespace {

namespace cs = stordep::casestudy;
namespace eng = stordep::engine;
namespace opt = stordep::optimizer;

using std::chrono::microseconds;
using std::chrono::milliseconds;

// ---- Shared fixtures -------------------------------------------------------

/// The 7 Table-7 designs x 3 scenarios: 21 distinct evaluation requests.
std::vector<eng::EvalRequest> caseStudyRequests() {
  std::vector<eng::EvalRequest> requests;
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    auto shared = std::make_shared<const StorageDesign>(design);
    for (const FailureScenario& scenario :
         {cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()}) {
      requests.push_back(eng::EvalRequest{shared, scenario});
    }
  }
  return requests;
}

void expectBitIdentical(const EvaluationResult& a, const EvaluationResult& b) {
  EXPECT_EQ(a.recovery.recoverable, b.recovery.recoverable);
  EXPECT_EQ(a.recovery.recoveryTime.raw(), b.recovery.recoveryTime.raw());
  EXPECT_EQ(a.recovery.dataLoss.raw(), b.recovery.dataLoss.raw());
  EXPECT_EQ(a.cost.totalOutlays.raw(), b.cost.totalOutlays.raw());
  EXPECT_EQ(a.cost.totalPenalties.raw(), b.cost.totalPenalties.raw());
  EXPECT_EQ(a.cost.totalCost.raw(), b.cost.totalCost.raw());
  EXPECT_EQ(a.meetsObjectives, b.meetsObjectives);
}

void expectSameCandidate(const opt::EvaluatedCandidate& a,
                         const opt::EvaluatedCandidate& b) {
  EXPECT_EQ(a.label, b.label);
  EXPECT_EQ(a.feasible, b.feasible);
  EXPECT_EQ(a.meetsObjectives, b.meetsObjectives);
  EXPECT_EQ(a.outlays.raw(), b.outlays.raw());
  EXPECT_EQ(a.weightedPenalties.raw(), b.weightedPenalties.raw());
  EXPECT_EQ(a.totalCost.raw(), b.totalCost.raw());
  EXPECT_EQ(a.worstRecoveryTime.raw(), b.worstRecoveryTime.raw());
  EXPECT_EQ(a.worstDataLoss.raw(), b.worstDataLoss.raw());
  EXPECT_EQ(a.rejectionReason, b.rejectionReason);
}

/// Rankings (and rejections) must match candidate for candidate, with every
/// metric bit-identical — the resume/parallelism determinism contract.
void expectSameSearch(const opt::SearchResult& a, const opt::SearchResult& b) {
  ASSERT_EQ(a.ranked.size(), b.ranked.size());
  ASSERT_EQ(a.rejected.size(), b.rejected.size());
  for (std::size_t i = 0; i < a.ranked.size(); ++i) {
    expectSameCandidate(a.ranked[i], b.ranked[i]);
  }
  for (std::size_t i = 0; i < a.rejected.size(); ++i) {
    expectSameCandidate(a.rejected[i], b.rejected[i]);
  }
}

/// A reduced (~40 candidate) design space so checkpoint tests stay fast.
std::vector<opt::CandidateSpec> smallSpace() {
  opt::DesignSpaceOptions options;
  options.pitAccWs = {hours(12)};
  options.backupAccWs = {weeks(1)};
  options.vaultAccWs = {weeks(4)};
  options.mirrorLinkCounts = {1, 4};
  return opt::enumerateDesignSpace(options);
}

std::string tempPath(const std::string& name) {
  const std::string path = ::testing::TempDir() + name;
  std::filesystem::remove(path);
  return path;
}

// ---- Expected / error taxonomy --------------------------------------------

TEST(ErrorModel, DefaultExpectedIsLoudNotEvaluatedError) {
  const eng::EvalOutcome outcome;
  EXPECT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, eng::EvalErrorCode::kInternal);
  EXPECT_EQ(outcome.error().attempts, 0);
  EXPECT_THROW((void)outcome.value(), eng::EvalException);
  EXPECT_EQ(outcome.valueIf(), nullptr);
  ASSERT_NE(outcome.errorIf(), nullptr);
}

TEST(ErrorModel, ValueSideBehavesLikeTheValue) {
  eng::Expected<int> value(42);
  EXPECT_TRUE(value.ok());
  EXPECT_EQ(value.value(), 42);
  EXPECT_THROW((void)value.error(), std::logic_error);
  EXPECT_EQ(value.errorIf(), nullptr);
}

TEST(ErrorModel, CodesHaveStableNames) {
  EXPECT_STREQ(toString(eng::EvalErrorCode::kInvalidDesign), "invalid-design");
  EXPECT_STREQ(toString(eng::EvalErrorCode::kCancelled), "cancelled");
  EXPECT_STREQ(toString(eng::EvalErrorCode::kDeadlineExceeded),
               "deadline-exceeded");
  EXPECT_STREQ(toString(eng::EvalErrorCode::kInjected), "injected");
}

// ---- Per-request isolation -------------------------------------------------

TEST(FaultInjection, TargetedFaultIsolatesOneRequest) {
  const std::vector<eng::EvalRequest> requests = caseStudyRequests();
  const std::size_t victim = 5;

  eng::Engine clean(eng::EngineOptions{.threads = 4});
  const eng::BatchResult reference = clean.evaluateBatch(requests);
  ASSERT_TRUE(reference.allOk());

  eng::FaultPlan plan;
  plan.targets = {eng::fingerprintEvaluation(*requests[victim].design,
                                             requests[victim].scenario)};
  eng::Engine faulty(eng::EngineOptions{.threads = 4});
  faulty.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  const eng::BatchResult batch = faulty.evaluateBatch(requests);
  ASSERT_EQ(batch.results.size(), requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i == victim) {
      ASSERT_FALSE(batch.results[i].ok());
      EXPECT_EQ(batch.results[i].error().code, eng::EvalErrorCode::kInjected);
      EXPECT_FALSE(batch.results[i].error().transient);
    } else {
      ASSERT_TRUE(batch.results[i].ok()) << "slot " << i;
      expectBitIdentical(batch.results[i].value(),
                         reference.results[i].value());
    }
  }
  EXPECT_EQ(batch.stats.failed, 1u);
  EXPECT_EQ(batch.stats.cancelled, 0u);
  EXPECT_EQ(batch.stats.requests, requests.size());
}

TEST(FaultInjection, NullDesignFailsItsSlotOnly) {
  std::vector<eng::EvalRequest> requests = caseStudyRequests();
  requests[2].design = nullptr;

  eng::Engine engine(eng::EngineOptions{.threads = 4});
  const eng::BatchResult batch = engine.evaluateBatch(requests);
  ASSERT_FALSE(batch.results[2].ok());
  EXPECT_EQ(batch.results[2].error().code, eng::EvalErrorCode::kInvalidDesign);
  EXPECT_EQ(batch.results[2].error().attempts, 0);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i != 2) {
      EXPECT_TRUE(batch.results[i].ok()) << "slot " << i;
    }
  }
  EXPECT_EQ(batch.stats.failed, 1u);
}

TEST(FaultInjection, ProbabilityDecisionsAreThreadCountIndependent) {
  const std::vector<eng::EvalRequest> requests = caseStudyRequests();
  eng::FaultPlan plan;
  plan.seed = 1234;
  plan.probability = 0.4;

  eng::Engine parallel(eng::EngineOptions{.threads = 4, .useCache = false});
  parallel.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));
  eng::Engine serial(eng::EngineOptions{.threads = 1, .useCache = false});
  serial.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  const eng::BatchResult a = parallel.evaluateBatch(requests);
  const eng::BatchResult b = serial.evaluateBatch(requests);
  ASSERT_EQ(a.results.size(), b.results.size());
  std::size_t failures = 0;
  for (std::size_t i = 0; i < a.results.size(); ++i) {
    EXPECT_EQ(a.results[i].ok(), b.results[i].ok()) << "slot " << i;
    if (!a.results[i].ok()) ++failures;
  }
  // The seed above hits some but not all of the 21 requests; if either
  // degenerate case shows up the determinism assertion above is vacuous.
  EXPECT_GT(failures, 0u);
  EXPECT_LT(failures, a.results.size());
  EXPECT_EQ(a.stats.failed, b.stats.failed);
}

// ---- Retry budget ----------------------------------------------------------

TEST(FaultInjection, TransientFaultsClearWithinRetryBudget) {
  const StorageDesign design = cs::baseline();
  const FailureScenario scenario = cs::arrayFailure();

  eng::FaultPlan plan;
  plan.targets = {eng::fingerprintEvaluation(design, scenario)};
  plan.failuresPerTarget = 2;
  plan.transient = true;

  eng::Engine engine(eng::EngineOptions{.threads = 1, .useCache = false});
  auto injector = std::make_shared<eng::FaultInjector>(plan);
  engine.setFaultInjector(injector);

  eng::BatchOptions options;
  options.maxRetries = 3;
  options.retryBackoff = milliseconds{0};
  const eng::EvalOutcome outcome =
      engine.tryEvaluate(design, scenario, options);
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(injector->injected(), 2u);  // two faults, then success
  expectBitIdentical(outcome.value(), evaluate(design, scenario));
}

TEST(FaultInjection, RetryGivesUpPastTheBudget) {
  const StorageDesign design = cs::baseline();
  const FailureScenario scenario = cs::arrayFailure();

  eng::FaultPlan plan;
  plan.targets = {eng::fingerprintEvaluation(design, scenario)};
  plan.transient = true;  // unlimited failuresPerTarget

  eng::Engine engine(eng::EngineOptions{.threads = 1, .useCache = false});
  engine.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  eng::BatchOptions options;
  options.maxRetries = 2;
  options.retryBackoff = milliseconds{0};
  const eng::EvalOutcome outcome =
      engine.tryEvaluate(design, scenario, options);
  ASSERT_FALSE(outcome.ok());
  EXPECT_EQ(outcome.error().code, eng::EvalErrorCode::kInjected);
  EXPECT_TRUE(outcome.error().transient);
  EXPECT_EQ(outcome.error().attempts, 3);  // initial try + 2 retries
}

TEST(FaultInjection, BatchRetriesAreCountedInStats) {
  std::vector<eng::EvalRequest> requests = caseStudyRequests();
  eng::FaultPlan plan;
  plan.targets = {eng::fingerprintEvaluation(*requests[0].design,
                                             requests[0].scenario)};
  plan.failuresPerTarget = 1;
  plan.transient = true;

  eng::Engine engine(eng::EngineOptions{.threads = 2});
  engine.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  eng::BatchOptions options;
  options.maxRetries = 2;
  options.retryBackoff = milliseconds{0};
  const eng::BatchResult batch = engine.evaluateBatch(requests, options);
  EXPECT_TRUE(batch.allOk());
  EXPECT_EQ(batch.stats.retries, 1u);
  EXPECT_EQ(batch.stats.failed, 0u);
}

// ---- Cache-site faults -----------------------------------------------------

TEST(FaultInjection, LostCacheInsertNeverFailsARequest) {
  const std::vector<eng::EvalRequest> requests = caseStudyRequests();
  eng::FaultPlan plan;
  plan.sites = eng::faultSiteBit(eng::FaultSite::kCacheInsert);
  plan.probability = 1.0;

  eng::Engine engine(eng::EngineOptions{.threads = 2});
  engine.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  const eng::BatchResult first = engine.evaluateBatch(requests);
  EXPECT_TRUE(first.allOk());
  EXPECT_EQ(engine.cache().stats().inserts, 0u);  // every insert was lost

  // With nothing cached, the second pass recomputes everything — but still
  // succeeds.
  const eng::BatchResult second = engine.evaluateBatch(requests);
  EXPECT_TRUE(second.allOk());
  EXPECT_EQ(second.stats.cacheHits, 0u);
  EXPECT_EQ(second.stats.evaluations, requests.size());
}

TEST(FaultInjection, CacheLookupFaultsFailTheRequest) {
  const std::vector<eng::EvalRequest> requests = caseStudyRequests();
  eng::FaultPlan plan;
  plan.sites = eng::faultSiteBit(eng::FaultSite::kCacheLookup);
  plan.probability = 1.0;

  eng::Engine engine(eng::EngineOptions{.threads = 2});
  engine.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  const eng::BatchResult batch = engine.evaluateBatch(requests);
  for (const eng::EvalOutcome& outcome : batch.results) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, eng::EvalErrorCode::kInjected);
  }
  EXPECT_EQ(batch.stats.failed, requests.size());
}

TEST(FaultInjection, PoolDispatchFaultFailsTheRequest) {
  const std::vector<eng::EvalRequest> requests = caseStudyRequests();
  const std::size_t victim = 4;
  eng::FaultPlan plan;
  plan.sites = eng::faultSiteBit(eng::FaultSite::kPool);
  plan.targets = {eng::fingerprintEvaluation(*requests[victim].design,
                                             requests[victim].scenario)};

  eng::Engine engine(eng::EngineOptions{.threads = 4});
  engine.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  const eng::BatchResult batch = engine.evaluateBatch(requests);
  ASSERT_FALSE(batch.results[victim].ok());
  EXPECT_EQ(batch.results[victim].error().code,
            eng::EvalErrorCode::kInjected);
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (i != victim) {
      EXPECT_TRUE(batch.results[i].ok()) << "slot " << i;
    }
  }
}

// ---- Cancellation and deadlines -------------------------------------------

TEST(Cancellation, DeadlineMarksOnlyUnstartedRequests) {
  const auto designs = cs::allWhatIfDesigns();
  std::vector<eng::EvalRequest> requests;
  std::vector<EvaluationResult> serial;
  for (const auto& [label, design] : designs) {
    requests.push_back(eng::EvalRequest{
        std::make_shared<const StorageDesign>(design), cs::arrayFailure()});
    serial.push_back(evaluate(design, cs::arrayFailure()));
  }

  // 50 ms of injected latency per evaluation against an 80 ms deadline on a
  // serial engine: the first request always starts (polled at ~0 ms), the
  // last ones never do.
  eng::FaultPlan plan;
  plan.latency = microseconds{50'000};
  eng::Engine engine(eng::EngineOptions{.threads = 1});
  engine.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  eng::BatchOptions options;
  options.deadline = milliseconds{80};
  const eng::BatchResult batch = engine.evaluateBatch(requests, options);

  ASSERT_TRUE(batch.results.front().ok());
  ASSERT_FALSE(batch.results.back().ok());
  std::size_t expired = 0;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (const eng::EvalError* error = batch.results[i].errorIf()) {
      EXPECT_EQ(error->code, eng::EvalErrorCode::kDeadlineExceeded);
      ++expired;
    } else {
      // Work already finished stays valid and bit-identical.
      expectBitIdentical(batch.results[i].value(), serial[i]);
    }
  }
  EXPECT_EQ(batch.stats.cancelled, expired);
  EXPECT_EQ(batch.stats.failed, 0u);
}

TEST(Cancellation, ExplicitCancelBeatsDeadlineInTheReason) {
  eng::CancellationSource source;
  source.cancel();
  const eng::CancellationToken token =
      source.token().withDeadline(std::chrono::nanoseconds{0});
  ASSERT_TRUE(token.cancelled());
  EXPECT_EQ(token.reason(), eng::EvalErrorCode::kCancelled);
  EXPECT_EQ(token.toError().code, eng::EvalErrorCode::kCancelled);
}

TEST(Cancellation, MidBatchCancelStopsHandingOutWork) {
  eng::ThreadPool pool(2);  // three runners with the caller
  eng::CancellationSource source;
  std::atomic<std::size_t> executed{0};
  const std::size_t count = 10'000;

  const bool ranAll = pool.parallelForCancellable(
      count,
      [&](std::size_t i) {
        executed.fetch_add(1, std::memory_order_relaxed);
        std::this_thread::sleep_for(microseconds{100});
        if (i == 0) source.cancel();
      },
      source.token(), /*grain=*/1);

  EXPECT_FALSE(ranAll);
  EXPECT_GE(executed.load(), 1u);
  // Without cancellation this fan-out runs all 10k indices (~1 s of sleep);
  // with it only the few indices in flight around the cancel complete.
  EXPECT_LT(executed.load(), count / 2);
}

TEST(Cancellation, PreCancelledTokenShortCircuitsTheBatch) {
  const std::vector<eng::EvalRequest> requests = caseStudyRequests();
  eng::CancellationSource source;
  source.cancel();

  eng::Engine engine(eng::EngineOptions{.threads = 4});
  eng::BatchOptions options;
  options.token = source.token();
  const eng::BatchResult batch = engine.evaluateBatch(requests, options);
  for (const eng::EvalOutcome& outcome : batch.results) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, eng::EvalErrorCode::kCancelled);
  }
  EXPECT_EQ(batch.stats.cancelled, requests.size());
  EXPECT_EQ(batch.stats.evaluations, 0u);
}

// ---- Thread-pool failure drain (regression) --------------------------------

TEST(ThreadPoolDrain, FailedBatchStopsInFlightChunksPromptly) {
  // One worker + the caller: exactly two runners. Four chunks of ten
  // indices. The runner on chunk A (index 0) waits until chunk B is in
  // flight, then throws; chunk B observes the throw, finishes its current
  // body slowly, and must then stop — under the old semantics it would
  // complete all ten of its indices, and chunks C/D could still start.
  eng::ThreadPool pool(1);
  std::atomic<bool> bStarted{false};
  std::atomic<bool> aThrown{false};
  std::atomic<int> executedB{0};
  const auto waitFor = [](std::atomic<bool>& flag) {
    for (int spin = 0; spin < 50'000 && !flag.load(); ++spin) {
      std::this_thread::sleep_for(microseconds{100});  // ≤ 5 s bound
    }
  };

  EXPECT_THROW(
      pool.parallelFor(
          40,
          [&](std::size_t i) {
            if (i == 0) {
              waitFor(bStarted);
              aThrown.store(true);
              throw std::runtime_error("chunk A fails");
            }
            if (i >= 10 && i < 20) {
              bStarted.store(true);
              waitFor(aThrown);
              // Ample time for the pool to latch the failure before this
              // body returns; the runner re-polls before the next index.
              std::this_thread::sleep_for(milliseconds{50});
              executedB.fetch_add(1);
            }
            if (i >= 20) executedB.fetch_add(100);  // C/D must never start
          },
          /*grain=*/10),
      std::runtime_error);

  EXPECT_GE(executedB.load(), 1);
  EXPECT_LE(executedB.load(), 2);
}

// ---- Checkpoint journal ----------------------------------------------------

TEST(Checkpoint, FingerprintHexRoundTrips) {
  const eng::Fingerprint fp = eng::fingerprintBytes("checkpoint-key");
  const auto parsed = eng::Fingerprint::fromHex(fp.toHex());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, fp);
  EXPECT_FALSE(eng::Fingerprint::fromHex("not-hex").has_value());
  EXPECT_FALSE(eng::Fingerprint::fromHex(fp.toHex() + "0").has_value());
}

TEST(Checkpoint, CandidateFingerprintsSeparateSpecs) {
  const std::vector<opt::CandidateSpec> specs = smallSpace();
  ASSERT_GE(specs.size(), 2u);
  EXPECT_EQ(opt::fingerprintCandidate(specs[0]),
            opt::fingerprintCandidate(specs[0]));
  EXPECT_NE(opt::fingerprintCandidate(specs[0]),
            opt::fingerprintCandidate(specs[1]));
}

TEST(Checkpoint, EvaluatedCandidateJsonRoundTripsNonFiniteQuantities) {
  opt::EvaluatedCandidate candidate;
  candidate.label = "unrecoverable candidate";
  candidate.feasible = false;
  candidate.meetsObjectives = false;
  candidate.outlays = dollars(123456.789012345678);
  candidate.weightedPenalties = dollars(0.1);
  candidate.totalCost = candidate.outlays + candidate.weightedPenalties;
  candidate.worstRecoveryTime = Duration::infinite();
  candidate.worstDataLoss = seconds(0.1);
  candidate.rejectionReason = "unrecoverable under scenario 'site disaster'";

  const config::Json json = opt::evaluatedCandidateToJson(candidate);
  const opt::EvaluatedCandidate back =
      opt::evaluatedCandidateFromJson(config::Json::parse(json.dump()));
  expectSameCandidate(candidate, back);
  EXPECT_FALSE(back.worstRecoveryTime.isFinite());
}

TEST(Checkpoint, JournalSurvivesTruncationAndRejectsWrongContext) {
  const std::string path = tempPath("stordep_journal_basics.jsonl");
  const eng::Fingerprint context = eng::fingerprintBytes("context-a");
  const eng::Fingerprint keyA = eng::fingerprintBytes("candidate-a");
  const eng::Fingerprint keyB = eng::fingerprintBytes("candidate-b");

  opt::EvaluatedCandidate record;
  record.label = "a";
  record.feasible = true;
  record.meetsObjectives = true;
  record.outlays = dollars(10.0);
  record.totalCost = dollars(10.0);
  record.worstRecoveryTime = hours(1);
  record.worstDataLoss = seconds(30);
  {
    opt::CheckpointJournal journal(path, context, /*flushEvery=*/1);
    EXPECT_EQ(journal.resumed(), 0u);
    journal.record(keyA, record);
    record.label = "b";
    journal.record(keyB, record);
  }
  {
    // A crash mid-append leaves a partial record; resume drops it only.
    std::ofstream out(path, std::ios::app);
    out << "{\"key\": \"dead";
  }
  {
    opt::CheckpointJournal journal(path, context);
    EXPECT_EQ(journal.resumed(), 2u);
    ASSERT_NE(journal.find(keyA), nullptr);
    EXPECT_EQ(journal.find(keyA)->label, "a");
    ASSERT_NE(journal.find(keyB), nullptr);
    EXPECT_EQ(journal.find(keyB)->outlays.raw(), dollars(10.0).raw());
  }
  {
    // A different search context must not resume this journal.
    opt::CheckpointJournal journal(path, eng::fingerprintBytes("context-b"));
    EXPECT_EQ(journal.resumed(), 0u);
    EXPECT_EQ(journal.find(keyA), nullptr);
  }
  std::filesystem::remove(path);
}

// ---- Checkpoint/resume through the optimizer -------------------------------

TEST(CheckpointResume, PrefixJournalReproducesTheExactRanking) {
  const std::vector<opt::CandidateSpec> candidates = smallSpace();
  const WorkloadSpec workload = cs::celloWorkload();
  const BusinessRequirements business = cs::requirements();
  const std::vector<opt::ScenarioCase> scenarios = opt::caseStudyScenarios();
  const opt::SearchResult serial =
      opt::searchDesignSpaceSerial(candidates, workload, business, scenarios);

  const std::string path = tempPath("stordep_journal_prefix.jsonl");
  eng::Engine engine(eng::EngineOptions{.threads = 4});
  opt::SearchOptions options;
  options.eng = &engine;
  options.checkpointPath = path;
  options.checkpointEvery = 1;
  const opt::SearchResult full = opt::searchDesignSpace(
      candidates, workload, business, scenarios, options);
  EXPECT_EQ(full.skipped, 0);
  EXPECT_FALSE(full.cancelled);
  expectSameSearch(full, serial);

  // Simulate a crash: keep the header and the first half of the records,
  // plus a garbage partial line.
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), candidates.size() + 1);  // header + one per spec
  const std::size_t keep = candidates.size() / 2;
  {
    std::ofstream out(path, std::ios::trunc);
    for (std::size_t i = 0; i < 1 + keep; ++i) out << lines[i] << "\n";
    out << "{\"key\": \"00";  // torn final append
  }

  eng::Engine fresh(eng::EngineOptions{.threads = 4});
  opt::SearchOptions resumeOptions;
  resumeOptions.eng = &fresh;
  resumeOptions.checkpointPath = path;
  const opt::SearchResult resumed = opt::searchDesignSpace(
      candidates, workload, business, scenarios, resumeOptions);
  EXPECT_EQ(resumed.skipped, static_cast<int>(keep));
  EXPECT_EQ(resumed.evaluated, static_cast<int>(candidates.size()));
  EXPECT_FALSE(resumed.cancelled);
  expectSameSearch(resumed, serial);
  std::filesystem::remove(path);
}

TEST(CheckpointResume, RandomInterruptPointsAlwaysResumeToTheSameRanking) {
  const std::vector<opt::CandidateSpec> candidates = smallSpace();
  const WorkloadSpec workload = cs::celloWorkload();
  const BusinessRequirements business = cs::requirements();
  const std::vector<opt::ScenarioCase> scenarios = opt::caseStudyScenarios();
  const opt::SearchResult serial =
      opt::searchDesignSpaceSerial(candidates, workload, business, scenarios);

  // One full journaled sweep provides the record stream to interrupt.
  const std::string path = tempPath("stordep_journal_random_cut.jsonl");
  {
    eng::Engine engine(eng::EngineOptions{.threads = 4});
    opt::SearchOptions options;
    options.eng = &engine;
    options.checkpointPath = path;
    options.checkpointEvery = 1;
    (void)opt::searchDesignSpace(candidates, workload, business, scenarios,
                                 options);
  }
  std::vector<std::string> lines;
  {
    std::ifstream in(path);
    std::string line;
    while (std::getline(in, line)) lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), candidates.size() + 1);  // header + one per spec

  // Property: whatever prefix a crash leaves behind — any number of complete
  // records, optionally followed by a torn partial append — the resumed
  // sweep reproduces the serial ranking bit for bit.
  std::mt19937 rng(20260806u);
  for (int trial = 0; trial < 6; ++trial) {
    const std::size_t keep =
        std::uniform_int_distribution<std::size_t>(0, lines.size())(rng);
    {
      std::ofstream out(path, std::ios::trunc);
      for (std::size_t i = 0; i < keep; ++i) out << lines[i] << "\n";
      if (trial % 2 == 0 && keep < lines.size()) {
        const std::string& next = lines[keep];
        out << next.substr(0, std::uniform_int_distribution<std::size_t>(
                                  1, next.size())(rng));
      }
    }
    eng::Engine engine(eng::EngineOptions{.threads = 4});
    opt::SearchOptions options;
    options.eng = &engine;
    options.checkpointPath = path;
    options.checkpointEvery = 1;
    const opt::SearchResult resumed = opt::searchDesignSpace(
        candidates, workload, business, scenarios, options);
    EXPECT_FALSE(resumed.cancelled) << "trial " << trial;
    EXPECT_EQ(resumed.evaluated, static_cast<int>(candidates.size()))
        << "trial " << trial;
    EXPECT_LE(resumed.skipped, static_cast<int>(keep)) << "trial " << trial;
    expectSameSearch(resumed, serial);
  }
  std::filesystem::remove(path);
}

TEST(CheckpointResume, DeadlineInterruptedSweepResumesToTheSameRanking) {
  const std::vector<opt::CandidateSpec> candidates = smallSpace();
  const WorkloadSpec workload = cs::celloWorkload();
  const BusinessRequirements business = cs::requirements();
  const std::vector<opt::ScenarioCase> scenarios = opt::caseStudyScenarios();
  const opt::SearchResult serial =
      opt::searchDesignSpaceSerial(candidates, workload, business, scenarios);

  // ~6 ms of injected latency per candidate against a 60 ms sweep deadline:
  // the sweep is interrupted with most candidates un-started.
  const std::string path = tempPath("stordep_journal_deadline.jsonl");
  eng::Engine slow(eng::EngineOptions{.threads = 1});
  eng::FaultPlan plan;
  plan.latency = microseconds{2'000};
  slow.setFaultInjector(std::make_shared<eng::FaultInjector>(plan));

  opt::SearchOptions interrupted;
  interrupted.eng = &slow;
  interrupted.deadline = milliseconds{60};
  interrupted.checkpointPath = path;
  interrupted.checkpointEvery = 1;
  const opt::SearchResult partial = opt::searchDesignSpace(
      candidates, workload, business, scenarios, interrupted);
  EXPECT_TRUE(partial.cancelled);
  EXPECT_GT(partial.evaluated, 0);
  EXPECT_LT(partial.evaluated, static_cast<int>(candidates.size()));

  eng::Engine fresh(eng::EngineOptions{.threads = 4});
  opt::SearchOptions resumeOptions;
  resumeOptions.eng = &fresh;
  resumeOptions.checkpointPath = path;
  const opt::SearchResult resumed = opt::searchDesignSpace(
      candidates, workload, business, scenarios, resumeOptions);
  EXPECT_FALSE(resumed.cancelled);
  EXPECT_EQ(resumed.skipped, partial.evaluated);
  EXPECT_EQ(resumed.evaluated, static_cast<int>(candidates.size()));
  expectSameSearch(resumed, serial);
  std::filesystem::remove(path);
}

TEST(CheckpointResume, ChangedRequirementsInvalidateTheJournal) {
  const std::vector<opt::CandidateSpec> candidates = smallSpace();
  const WorkloadSpec workload = cs::celloWorkload();
  const std::vector<opt::ScenarioCase> scenarios = opt::caseStudyScenarios();

  const std::string path = tempPath("stordep_journal_context.jsonl");
  eng::Engine engine(eng::EngineOptions{.threads = 4});
  opt::SearchOptions options;
  options.eng = &engine;
  options.checkpointPath = path;
  (void)opt::searchDesignSpace(candidates, workload, cs::requirements(),
                               scenarios, options);

  // Same candidates, different business requirements: nothing may be
  // skipped, or the resumed "ranking" would answer the wrong question.
  BusinessRequirements tighter = cs::requirements();
  tighter.rto = minutes(5);
  const opt::SearchResult other = opt::searchDesignSpace(
      candidates, workload, tighter, scenarios, options);
  EXPECT_EQ(other.skipped, 0);
  std::filesystem::remove(path);
}

TEST(CheckpointResume, PreCancelledSearchEvaluatesNothing) {
  const std::vector<opt::CandidateSpec> candidates = smallSpace();
  eng::CancellationSource source;
  source.cancel();

  eng::Engine engine(eng::EngineOptions{.threads = 4});
  opt::SearchOptions options;
  options.eng = &engine;
  options.token = source.token();
  const opt::SearchResult result =
      opt::searchDesignSpace(candidates, cs::celloWorkload(),
                             cs::requirements(), opt::caseStudyScenarios(),
                             options);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.evaluated, 0);
  EXPECT_TRUE(result.ranked.empty());
}

TEST(CheckpointResume, RefineHonorsCancellation) {
  // The baseline structure: feasible, so the climb would normally iterate.
  opt::CandidateSpec start;
  start.pit = opt::PitChoice::kSplitMirror;
  start.backup = opt::BackupChoice::kFullOnly;
  start.vault = true;

  eng::Engine engine(eng::EngineOptions{.threads = 2});
  const opt::EvaluatedCandidate startEval = opt::evaluateCandidate(
      start, cs::celloWorkload(), cs::requirements(),
      opt::caseStudyScenarios(), &engine);
  ASSERT_TRUE(startEval.feasible);

  eng::CancellationSource source;
  source.cancel();
  opt::RefineOptions options;
  options.token = source.token();
  const opt::RefineResult result = opt::refineCandidate(
      start, cs::celloWorkload(), cs::requirements(),
      opt::caseStudyScenarios(), options, &engine);
  EXPECT_TRUE(result.cancelled);
  EXPECT_EQ(result.steps, 0);
  EXPECT_EQ(result.best.totalCost.raw(), startEval.totalCost.raw());
}

// ---- Portfolio outcome sweeps ---------------------------------------------

TEST(PortfolioOutcomes, MatchesThrowingRecoverAndHonorsCancellation) {
  multiobject::Portfolio portfolio(
      {multiobject::ObjectSpec{"cello", cs::baseline(), {}}});
  const std::vector<FailureScenario> scenarios{
      cs::objectFailure(), cs::arrayFailure(), cs::siteDisaster()};

  eng::Engine engine(eng::EngineOptions{.threads = 2});
  const auto outcomes =
      portfolio.recoverBatchOutcomes(scenarios, {}, &engine);
  ASSERT_EQ(outcomes.size(), scenarios.size());
  for (std::size_t i = 0; i < scenarios.size(); ++i) {
    ASSERT_TRUE(outcomes[i].ok()) << "scenario " << i;
    const multiobject::PortfolioRecoveryResult direct =
        portfolio.recover(scenarios[i]);
    EXPECT_EQ(outcomes[i].value().totalRecoveryTime.raw(),
              direct.totalRecoveryTime.raw());
    EXPECT_EQ(outcomes[i].value().worstDataLoss.raw(),
              direct.worstDataLoss.raw());
    EXPECT_EQ(outcomes[i].value().allRecoverable, direct.allRecoverable);
  }

  eng::CancellationSource source;
  source.cancel();
  const auto cancelled =
      portfolio.recoverBatchOutcomes(scenarios, source.token(), &engine);
  for (const auto& outcome : cancelled) {
    ASSERT_FALSE(outcome.ok());
    EXPECT_EQ(outcome.error().code, eng::EvalErrorCode::kCancelled);
  }
}

// ---- design_io error wrapping ----------------------------------------------

config::Json& member(config::Json& object, const std::string& key) {
  for (auto& [k, v] : object.asObject()) {
    if (k == key) return v;
  }
  throw std::runtime_error("test fixture: missing key " + key);
}

TEST(DesignIoErrors, DeviceErrorsCarryJsonPointerContext) {
  config::Json doc = config::Json::parse(config::saveDesign(cs::baseline()));
  member(doc, "devices").asArray()[1].set("type",
                                          config::Json("quantum-drive"));
  try {
    (void)config::designFromJson(doc);
    FAIL() << "expected DesignIoError";
  } catch (const config::DesignIoError& e) {
    EXPECT_NE(std::string(e.what()).find("/devices/1"), std::string::npos)
        << e.what();
  }
}

TEST(DesignIoErrors, MalformedSectionsNeverLeakStdExceptions) {
  const std::vector<std::string> malformed{
      "",                         // not JSON at all
      "[1, 2, 3]",                // not an object
      "{\"name\": \"x\"}",        // missing every section
      "{\"name\": \"x\", \"workload\": \"garbage\"}",
  };
  for (const std::string& text : malformed) {
    try {
      (void)config::loadDesign(text);
      FAIL() << "expected DesignIoError for: " << text;
    } catch (const config::DesignIoError&) {
      // The module's single-error contract.
    } catch (const std::exception& e) {
      FAIL() << "leaked " << typeid(e).name() << ": " << e.what();
    }
  }
}

TEST(DesignIoErrors, FileLoadsPrefixThePath) {
  const std::string path = tempPath("stordep_missing_design.json");
  try {
    (void)config::loadDesignFile(path);
    FAIL() << "expected DesignIoError";
  } catch (const config::DesignIoError& e) {
    EXPECT_NE(std::string(e.what()).find(path), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace stordep
