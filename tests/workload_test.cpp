// Tests for core/workload: the batch-update-rate curve, its interpolation,
// uniqueBytes monotonicity, and specification validation.
#include "core/workload.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"

namespace stordep {
namespace {

WorkloadSpec cello() { return casestudy::celloWorkload(); }

TEST(WorkloadSpec, CelloBasics) {
  const WorkloadSpec w = cello();
  EXPECT_DOUBLE_EQ(w.dataCap().gigabytes(), 1360.0);
  EXPECT_NEAR(w.avgAccessRate().mbPerSec(), 1.004, 0.001);
  EXPECT_NEAR(w.avgUpdateRate().kbPerSec(), 799.0, 1e-9);
  EXPECT_DOUBLE_EQ(w.burstMultiplier(), 10.0);
  EXPECT_NEAR(w.peakUpdateRate().kbPerSec(), 7990.0, 1e-9);
}

TEST(WorkloadSpec, BatchRateAtMeasuredPoints) {
  const WorkloadSpec w = cello();
  EXPECT_NEAR(w.batchUpdateRate(minutes(1)).kbPerSec(), 727.0, 1e-9);
  EXPECT_NEAR(w.batchUpdateRate(hours(12)).kbPerSec(), 350.0, 1e-9);
  EXPECT_NEAR(w.batchUpdateRate(hours(24)).kbPerSec(), 317.0, 1e-9);
  EXPECT_NEAR(w.batchUpdateRate(hours(48)).kbPerSec(), 317.0, 1e-9);
  EXPECT_NEAR(w.batchUpdateRate(weeks(1)).kbPerSec(), 317.0, 1e-9);
}

TEST(WorkloadSpec, BatchRateClampsOutsideCurve) {
  const WorkloadSpec w = cello();
  // Below the first point: the first point's rate (capped by avgUpdateR).
  EXPECT_NEAR(w.batchUpdateRate(seconds(1)).kbPerSec(), 727.0, 1e-9);
  // Above the last point: the saturated rate.
  EXPECT_NEAR(w.batchUpdateRate(weeks(40)).kbPerSec(), 317.0, 1e-9);
  // Degenerate window: everything is unique.
  EXPECT_NEAR(w.batchUpdateRate(Duration::zero()).kbPerSec(), 799.0, 1e-9);
}

TEST(WorkloadSpec, BatchRateInterpolatesMonotonically) {
  const WorkloadSpec w = cello();
  Bandwidth prev = w.batchUpdateRate(minutes(1));
  for (double h = 0.1; h <= 200.0; h *= 1.3) {
    const Bandwidth cur = w.batchUpdateRate(hours(h));
    EXPECT_LE(cur.bytesPerSec(), prev.bytesPerSec() * (1 + 1e-12))
        << "window " << h << " hr";
    prev = cur;
  }
}

TEST(WorkloadSpec, UniqueBytesIsMonotoneNonDecreasing) {
  const WorkloadSpec w = cello();
  Bytes prev{0};
  for (double h = 0.01; h <= 2000.0; h *= 1.5) {
    const Bytes cur = w.uniqueBytes(hours(h));
    EXPECT_GE(cur.bytes(), prev.bytes() * (1 - 1e-12)) << "window " << h;
    prev = cur;
  }
}

TEST(WorkloadSpec, UniqueBytesCappedAtDataCap) {
  const WorkloadSpec w = cello();
  // 317 KB/s for ten years would exceed 1360 GB many times over.
  EXPECT_EQ(w.uniqueBytes(years(10)), w.dataCap());
  EXPECT_EQ(w.uniqueBytes(Duration::infinite()), w.dataCap());
}

TEST(WorkloadSpec, SplitMirrorResilverWindowMatchesPaper) {
  // Table 5 needs batchUpdR(60 hr) ~ 317 KB/s so that resilver bandwidth is
  // 2 x 5 x 317 KB/s ~ 3.17 MB/s.
  const WorkloadSpec w = cello();
  const Bandwidth resilver = 2.0 * (w.uniqueBytes(hours(60)) / hours(12));
  EXPECT_NEAR(resilver.mbPerSec(), 3.17 * (5.0 / 5.0), 0.1);
}

TEST(WorkloadSpec, EmptyCurveFallsBackToAverageRate) {
  const WorkloadSpec w("flat", gigabytes(10), kbPerSec(100), kbPerSec(50), 2.0,
                       {});
  EXPECT_EQ(w.batchUpdateRate(hours(1)), kbPerSec(50));
  EXPECT_EQ(w.uniqueBytes(hours(2)), kbPerSec(50) * hours(2));
}

TEST(WorkloadSpec, ValidationRejectsBadSpecs) {
  const std::vector<BatchUpdatePoint> curve{{hours(1), kbPerSec(50)}};
  // Non-positive capacity.
  EXPECT_THROW(WorkloadSpec("w", Bytes{0}, kbPerSec(1), kbPerSec(1), 1, {}),
               WorkloadError);
  // Update rate above access rate.
  EXPECT_THROW(
      WorkloadSpec("w", gigabytes(1), kbPerSec(10), kbPerSec(20), 1, {}),
      WorkloadError);
  // Burst multiplier below 1.
  EXPECT_THROW(
      WorkloadSpec("w", gigabytes(1), kbPerSec(10), kbPerSec(5), 0.5, {}),
      WorkloadError);
  // Batch rate above the average update rate.
  EXPECT_THROW(WorkloadSpec("w", gigabytes(1), kbPerSec(100), kbPerSec(10), 1,
                            {{hours(1), kbPerSec(20)}}),
               WorkloadError);
  // Windows must strictly increase.
  EXPECT_THROW(WorkloadSpec("w", gigabytes(1), kbPerSec(100), kbPerSec(50), 1,
                            {{hours(2), kbPerSec(40)}, {hours(1), kbPerSec(30)}}),
               WorkloadError);
  // Rates must be non-increasing.
  EXPECT_THROW(WorkloadSpec("w", gigabytes(1), kbPerSec(100), kbPerSec(50), 1,
                            {{hours(1), kbPerSec(30)}, {hours(2), kbPerSec(40)}}),
               WorkloadError);
  // Non-positive window.
  EXPECT_THROW(WorkloadSpec("w", gigabytes(1), kbPerSec(100), kbPerSec(50), 1,
                            {{Duration::zero(), kbPerSec(30)}}),
               WorkloadError);
  // A valid one for contrast.
  EXPECT_NO_THROW(
      WorkloadSpec("w", gigabytes(1), kbPerSec(100), kbPerSec(50), 1, curve));
}

// Property sweep: interpolation stays within the bracketing points for a
// variety of synthetic curves.
class WorkloadInterpolationSweep : public ::testing::TestWithParam<double> {};

TEST_P(WorkloadInterpolationSweep, InterpolationIsBracketed) {
  const double decay = GetParam();
  std::vector<BatchUpdatePoint> curve;
  double rate = 500.0;
  for (double h = 1; h <= 256; h *= 4) {
    curve.push_back({hours(h), kbPerSec(rate)});
    rate *= decay;
  }
  const WorkloadSpec w("sweep", terabytes(1), kbPerSec(1000), kbPerSec(500),
                       3.0, curve);
  for (size_t i = 0; i + 1 < curve.size(); ++i) {
    const Duration mid = hours((curve[i].window.hrs() +
                                curve[i + 1].window.hrs()) /
                               2.0);
    const Bandwidth r = w.batchUpdateRate(mid);
    EXPECT_LE(r.bytesPerSec(), curve[i].rate.bytesPerSec() + 1e-9);
    EXPECT_GE(r.bytesPerSec(), curve[i + 1].rate.bytesPerSec() - 1e-9);
  }
}

INSTANTIATE_TEST_SUITE_P(DecayRates, WorkloadInterpolationSweep,
                         ::testing::Values(0.95, 0.8, 0.6, 0.4, 1.0));

}  // namespace
}  // namespace stordep
