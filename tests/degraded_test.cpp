// Tests for core/degraded: technique outages, staleness growth, degraded
// recovery, catch-up estimation and the protection-coverage matrix.
#include "core/degraded.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/propagation.hpp"

namespace stordep {
namespace {

namespace cs = casestudy;

TEST(DegradedStaleness, PropagatesUpward) {
  const StorageDesign d = cs::baseline();
  const std::vector<TechniqueOutage> backup{{2, hours(48)}};
  // Below the outage: unaffected.
  EXPECT_EQ(degradedExtraStaleness(d, 1, backup), Duration::zero());
  // At and above the outage: stale by the elapsed time.
  EXPECT_EQ(degradedExtraStaleness(d, 2, backup), hours(48));
  EXPECT_EQ(degradedExtraStaleness(d, 3, backup), hours(48));
}

TEST(DegradedStaleness, ConcurrentOutagesTakeTheMax) {
  const StorageDesign d = cs::baseline();
  const std::vector<TechniqueOutage> both{{1, hours(10)}, {2, hours(48)}};
  EXPECT_EQ(degradedExtraStaleness(d, 1, both), hours(10));
  EXPECT_EQ(degradedExtraStaleness(d, 3, both), hours(48));
}

TEST(DegradedStaleness, RejectsBadLevels) {
  const StorageDesign d = cs::baseline();
  EXPECT_THROW((void)degradedExtraStaleness(d, 1, {{0, hours(1)}}),
               DesignError);
  EXPECT_THROW((void)degradedExtraStaleness(d, 1, {{9, hours(1)}}),
               DesignError);
  EXPECT_THROW((void)degradedExtraStaleness(d, 1, {{1, hours(-1)}}),
               DesignError);
}

TEST(DegradedAssessment, BackupOutageGrowsArrayFailureLoss) {
  const StorageDesign d = cs::baseline();
  // Healthy: array failure loses 217 h. With the backup technique down for
  // two days, the newest tape is 48 h staler.
  const auto degraded =
      assessLevelDegraded(d, 2, cs::arrayFailure(), {{2, hours(48)}});
  EXPECT_EQ(degraded.lossCase, LossCase::kNotYetPropagated);
  EXPECT_EQ(degraded.dataLoss, hours(217 + 48));
}

TEST(DegradedAssessment, NoOutageMatchesHealthyAssessment) {
  const StorageDesign d = cs::baseline();
  for (int level = 0; level < d.levelCount(); ++level) {
    const auto healthy = assessLevel(d, level, cs::arrayFailure());
    const auto degraded =
        assessLevelDegraded(d, level, cs::arrayFailure(), {});
    EXPECT_EQ(healthy.lossCase, degraded.lossCase) << level;
    EXPECT_EQ(healthy.dataLoss.secs(), degraded.dataLoss.secs()) << level;
  }
}

TEST(DegradedAssessment, MirrorOutageAgesTheRollbackWindow) {
  const StorageDesign d = cs::baseline();
  // Split mirrors suspended for 20 h: the 24 h-old rollback target now sits
  // *above* the young edge (12 + 20 = 32 h), so the loss is the grown lag
  // minus the target age.
  const auto degraded =
      assessLevelDegraded(d, 1, cs::objectFailure(), {{1, hours(20)}});
  EXPECT_EQ(degraded.lossCase, LossCase::kNotYetPropagated);
  EXPECT_EQ(degraded.dataLoss, hours(12 + 20 - 24));
}

TEST(DegradedRecovery, LossGrowsWithMirrorOutage) {
  const StorageDesign d = cs::baseline();
  // Healthy object failure restores from the split mirror (12 h loss).
  // With mirrors suspended for 30 h, the freshest retained mirror predates
  // the 24 h target by (12 + 30) - 24 = 18 h.
  const RecoveryResult degraded =
      computeDegradedRecovery(d, cs::objectFailure(), {{1, hours(30)}});
  ASSERT_TRUE(degraded.recoverable);
  EXPECT_EQ(degraded.sourceLevel, 1);
  EXPECT_EQ(degraded.dataLoss, hours(12 + 30 - 24));

  // Even a week-long mirror outage keeps the (frozen, aging) mirrors the
  // best source: the backup's RPs flowed *through* the mirrors and are
  // equally stale plus the tape transit. The loss reflects the outage 1:1.
  const RecoveryResult week =
      computeDegradedRecovery(d, cs::objectFailure(), {{1, weeks(1)}});
  ASSERT_TRUE(week.recoverable);
  EXPECT_EQ(week.sourceLevel, 1);
  EXPECT_EQ(week.dataLoss, hours(12) + weeks(1) - hours(24));
}

TEST(DegradedRecovery, MirrorOnlyDesignLosesCurrencyDuringOutage) {
  const StorageDesign d = cs::asyncBatchMirror(1);
  // Mirror suspended 6 h when the array dies: 6 h of updates are gone.
  const RecoveryResult r =
      computeDegradedRecovery(d, cs::arrayFailure(), {{1, hours(6)}});
  ASSERT_TRUE(r.recoverable);
  EXPECT_EQ(r.dataLoss, minutes(2) + hours(6));
  // Recovery mechanics (transfer over the WAN) are unchanged.
  EXPECT_NEAR(r.recoveryTime.hrs(), 21.7, 0.8);
}

TEST(DegradedRecovery, UnrecoverableWhenEverythingTooStale) {
  // Mirror-only design + outage: the only secondary level cannot serve.
  auto base = cs::asyncBatchMirror(1);
  const RecoveryResult r =
      computeDegradedRecovery(base, cs::objectFailure(), {{1, hours(1)}});
  EXPECT_FALSE(r.recoverable);
}

TEST(CatchUp, GrowsWithOutageDuration) {
  const StorageDesign d = cs::baseline();
  const Duration day = catchUpTime(d, 1, hours(24));
  const Duration week = catchUpTime(d, 1, weeks(1));
  EXPECT_GT(week, day);
  EXPECT_GT(day, Duration::zero());
  // A week's backlog of unique updates (~183 GB) through the array's
  // remaining bandwidth: minutes, not days.
  EXPECT_LT(week, hours(1));
}

TEST(CatchUp, BackupCatchUpBoundedByTapeBandwidth) {
  const StorageDesign d = cs::baseline();
  // The tape path is the narrow pipe for the backup level.
  const Duration t = catchUpTime(d, 2, weeks(2));
  EXPECT_GT(t, minutes(5));
  EXPECT_LT(t, days(1));
  EXPECT_THROW((void)catchUpTime(d, 0, hours(1)), DesignError);
  EXPECT_THROW((void)catchUpTime(d, 1, hours(-1)), DesignError);
}

TEST(Coverage, MatrixExposesSinglePointsOfFailure) {
  const StorageDesign d = cs::baseline();
  const std::vector<std::pair<std::string, FailureScenario>> scenarios{
      {"object", cs::objectFailure()},
      {"array", cs::arrayFailure()},
      {"site", cs::siteDisaster()}};
  const auto matrix = protectionCoverage(d, scenarios, hours(48));
  // 3 protection levels x 3 scenarios.
  ASSERT_EQ(matrix.size(), 9u);

  for (const auto& cell : matrix) {
    // The baseline hierarchy has no single point of failure: some level
    // always serves.
    EXPECT_TRUE(cell.recoverable)
        << cell.downName << " / " << cell.scenarioName;
    // An outage never *improves* dependability.
    EXPECT_GE(cell.lossIncrease.secs(), 0.0);
  }

  // A backup outage hurts the array-failure case by exactly its duration.
  const auto backupArray = std::find_if(
      matrix.begin(), matrix.end(), [](const CoverageCell& c) {
        return c.downLevel == 2 && c.scenarioName == "array";
      });
  ASSERT_NE(backupArray, matrix.end());
  EXPECT_EQ(backupArray->lossIncrease, hours(48));
  // A vault outage is invisible to the array-failure case (recovery uses
  // the backup level).
  const auto vaultArray = std::find_if(
      matrix.begin(), matrix.end(), [](const CoverageCell& c) {
        return c.downLevel == 3 && c.scenarioName == "array";
      });
  ASSERT_NE(vaultArray, matrix.end());
  EXPECT_EQ(vaultArray->lossIncrease, Duration::zero());
}

TEST(Coverage, MirrorOnlyDesignHasASinglePointOfFailure) {
  const StorageDesign d = cs::asyncBatchMirror(1);
  const std::vector<std::pair<std::string, FailureScenario>> scenarios{
      {"array", cs::arrayFailure()}};
  const auto matrix = protectionCoverage(d, scenarios, hours(48));
  ASSERT_EQ(matrix.size(), 1u);
  // Recoverable, but with two full days of loss: the mirror is the only
  // protection and its outage translates 1:1 into exposure.
  EXPECT_TRUE(matrix[0].recoverable);
  EXPECT_EQ(matrix[0].lossIncrease, hours(48));
}

}  // namespace
}  // namespace stordep
