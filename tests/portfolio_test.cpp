// Tests for multiobject/portfolio: shared-device demand aggregation,
// once-only fixed costs, dependency-aware recovery scheduling and
// source-device serialization.
#include "multiobject/portfolio.hpp"

#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/split_mirror.hpp"
#include "devices/catalog.hpp"

namespace stordep::multiobject {
namespace {

namespace cs = stordep::casestudy;

/// Shared hardware for a two-object portfolio: one array, one library.
struct SharedKit {
  DevicePtr array = catalog::midrangeDiskArray(
      cs::kPrimaryArrayName, Location::at(cs::kPrimarySite));
  DevicePtr library = catalog::enterpriseTapeLibrary(
      "tape-library", Location::at(cs::kPrimarySite));
};

WorkloadSpec smallWorkload(const std::string& name, double gb) {
  return WorkloadSpec(name, gigabytes(gb), kbPerSec(500), kbPerSec(300), 4.0,
                      {BatchUpdatePoint{hours(1), kbPerSec(200)},
                       BatchUpdatePoint{hours(24), kbPerSec(120)}});
}

/// A mirror+backup design for one object on the shared kit.
StorageDesign objectDesign(const SharedKit& kit, const std::string& name,
                           double gb) {
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(kit.array));
  levels.push_back(std::make_shared<SplitMirror>(
      name + " mirrors", kit.array,
      ProtectionPolicy(WindowSpec{.accW = hours(12)}, 4, days(2))));
  // Weekly backups: for a 24 h rollback the split mirrors are the natural
  // source (a daily backup's smaller lag would beat them — the models are
  // happy to exploit that).
  levels.push_back(std::make_shared<Backup>(
      name + " backup", BackupStyle::kFullOnly, kit.array, kit.library,
      ProtectionPolicy(WindowSpec{.accW = weeks(1),
                                  .propW = hours(12),
                                  .holdW = hours(1)},
                       4, weeks(4))));
  return StorageDesign(name, smallWorkload(name + " workload", gb),
                       caseStudyRequirements(), std::move(levels),
                       cs::recoveryFacility());
}

Portfolio twoObjectPortfolio(const SharedKit& kit,
                             std::vector<std::string> appDeps = {"db"}) {
  std::vector<ObjectSpec> objects;
  objects.push_back(ObjectSpec{"db", objectDesign(kit, "db", 200), {}});
  objects.push_back(
      ObjectSpec{"app", objectDesign(kit, "app", 100), std::move(appDeps)});
  return Portfolio(std::move(objects));
}

TEST(Portfolio, ValidatesStructure) {
  const SharedKit kit;
  EXPECT_THROW(Portfolio({}), PortfolioError);
  // Duplicate names.
  EXPECT_THROW(Portfolio({ObjectSpec{"x", objectDesign(kit, "x", 10), {}},
                          ObjectSpec{"x", objectDesign(kit, "x", 10), {}}}),
               PortfolioError);
  // Unknown dependency.
  EXPECT_THROW(
      Portfolio({ObjectSpec{"x", objectDesign(kit, "x", 10), {"ghost"}}}),
      PortfolioError);
  // Self-dependency.
  EXPECT_THROW(Portfolio({ObjectSpec{"x", objectDesign(kit, "x", 10), {"x"}}}),
               PortfolioError);
  // Cycle.
  EXPECT_THROW(Portfolio({ObjectSpec{"a", objectDesign(kit, "a", 10), {"b"}},
                          ObjectSpec{"b", objectDesign(kit, "b", 10), {"a"}}}),
               PortfolioError);
}

TEST(Portfolio, TopologicalOrderRespectsDependencies) {
  const SharedKit kit;
  const Portfolio p = twoObjectPortfolio(kit);
  ASSERT_EQ(p.topologicalOrder().size(), 2u);
  EXPECT_EQ(p.objects()[p.topologicalOrder()[0]].name, "db");
  EXPECT_EQ(p.objects()[p.topologicalOrder()[1]].name, "app");
  EXPECT_EQ(p.object("db").name, "db");
  EXPECT_THROW((void)p.object("nope"), PortfolioError);
}

TEST(Portfolio, AggregateUtilizationSumsSharedDevices) {
  const SharedKit kit;
  const Portfolio p = twoObjectPortfolio(kit);
  const UtilizationResult merged = p.aggregateUtilization();
  const auto* array = merged.find(cs::kPrimaryArrayName);
  ASSERT_NE(array, nullptr);
  // Each object: primary + 5 mirrors; 300 GB + 150 GB of logical data x6.
  EXPECT_NEAR(array->capDemand.gigabytes(), 6 * 300.0, 1.0);
  // Both objects' demands appear with qualified names.
  bool sawDb = false, sawApp = false;
  for (const auto& share : array->shares) {
    if (share.technique.rfind("db/", 0) == 0) sawDb = true;
    if (share.technique.rfind("app/", 0) == 0) sawApp = true;
  }
  EXPECT_TRUE(sawDb);
  EXPECT_TRUE(sawApp);

  // The per-object utilizations undercount the shared device.
  const UtilizationResult dbOnly =
      computeUtilization(p.object("db").design);
  EXPECT_LT(dbOnly.find(cs::kPrimaryArrayName)->capUtil, array->capUtil);
}

TEST(Portfolio, AggregateOverloadDetection) {
  // Each object alone fits; together they blow the array's capacity.
  const SharedKit kit;
  std::vector<ObjectSpec> objects;
  objects.push_back(ObjectSpec{"a", objectDesign(kit, "a", 900), {}});
  objects.push_back(ObjectSpec{"b", objectDesign(kit, "b", 900), {}});
  const Portfolio p(std::move(objects));
  EXPECT_TRUE(computeUtilization(p.object("a").design).feasible());
  EXPECT_FALSE(p.aggregateUtilization().feasible());
}

TEST(Portfolio, FixedCostsChargedOnce) {
  const SharedKit kit;
  const Portfolio p = twoObjectPortfolio(kit);
  const Money merged = p.aggregateOutlays();

  // Summing per-object costs double-charges the array and library fixed
  // costs (plus their mirrored spares): the aggregate must be smaller by
  // at least one (array + library) fixed block.
  Money separate = Money::zero();
  for (const auto& object : p.objects()) {
    const auto recovery =
        computeRecovery(object.design, cs::arrayFailure());
    separate += computeCosts(object.design, recovery).totalOutlays;
  }
  const double fixedBlock = 123'297 + 98'895;
  EXPECT_LT(merged.usd(), separate.usd() - fixedBlock);
  EXPECT_GT(merged.usd(), 0.0);
}

TEST(Portfolio, RecoveryHonorsDependencies) {
  const SharedKit kit;
  const Portfolio p = twoObjectPortfolio(kit);
  const PortfolioRecoveryResult r = p.recover(cs::arrayFailure());
  ASSERT_TRUE(r.allRecoverable);
  const ObjectRecovery& db = r.objects[0];
  const ObjectRecovery& app = r.objects[1];
  EXPECT_EQ(db.object, "db");
  // The app waits for the database.
  EXPECT_GE(app.startTime, db.completionTime);
  EXPECT_EQ(r.totalRecoveryTime, app.completionTime);
  EXPECT_GT(r.totalRecoveryTime, db.ownDuration);
}

TEST(Portfolio, IndependentObjectsShareTheSourceDeviceSerially) {
  const SharedKit kit;
  // No dependencies: both restore from the same tape library, so they
  // still serialize on it.
  const Portfolio p = twoObjectPortfolio(kit, /*appDeps=*/{});
  const PortfolioRecoveryResult r = p.recover(cs::arrayFailure());
  ASSERT_TRUE(r.allRecoverable);
  const ObjectRecovery& first = r.objects[0];
  const ObjectRecovery& second = r.objects[1];
  EXPECT_EQ(first.sourceDevice, "tape-library");
  EXPECT_EQ(second.sourceDevice, "tape-library");
  EXPECT_GE(second.startTime, first.completionTime);
  EXPECT_NEAR(r.totalRecoveryTime.secs(),
              (first.ownDuration + second.ownDuration).secs(),
              first.ownDuration.secs() * 0.01);
}

TEST(Portfolio, ObjectFailureRestoresAreIndependentAndParallel) {
  const SharedKit kit;
  const Portfolio p = twoObjectPortfolio(kit, /*appDeps=*/{});
  // A corruption rollback restores from the on-array mirrors: sources are
  // the same array device, so they serialize there too — but each restore
  // is sub-second, so the total stays tiny.
  const PortfolioRecoveryResult r =
      p.recover(FailureScenario::objectFailure(hours(24), megabytes(64)));
  ASSERT_TRUE(r.allRecoverable);
  EXPECT_LT(r.totalRecoveryTime, seconds(5));
  EXPECT_EQ(r.worstDataLoss, hours(12));
}

TEST(Portfolio, UnrecoverableObjectPoisonsThePortfolio) {
  const SharedKit kit;
  std::vector<ObjectSpec> objects;
  objects.push_back(ObjectSpec{"db", objectDesign(kit, "db", 200), {}});
  // An object protected only by a too-fresh mirror cannot serve a rollback.
  auto mirrorOnly = cs::asyncBatchMirror(1);
  objects.push_back(ObjectSpec{"cache", std::move(mirrorOnly), {}});
  const Portfolio p(std::move(objects));
  const PortfolioRecoveryResult r =
      p.recover(FailureScenario::objectFailure(hours(24), megabytes(1)));
  EXPECT_FALSE(r.allRecoverable);
  EXPECT_TRUE(r.totalRecoveryTime.isInfinite());
  // The healthy object still recovers individually.
  EXPECT_TRUE(r.objects[0].recoverable);
  EXPECT_FALSE(r.objects[1].recoverable);
}

TEST(Portfolio, DependencyOnUnrecoverableObjectBlocksDependents) {
  const SharedKit kit;
  std::vector<ObjectSpec> objects;
  auto mirrorOnly = cs::asyncBatchMirror(1);
  objects.push_back(ObjectSpec{"cache", std::move(mirrorOnly), {}});
  objects.push_back(
      ObjectSpec{"app", objectDesign(kit, "app", 100), {"cache"}});
  const Portfolio p(std::move(objects));
  const PortfolioRecoveryResult r =
      p.recover(FailureScenario::objectFailure(hours(24), megabytes(1)));
  EXPECT_FALSE(r.allRecoverable);
  // The app itself could recover, but its dependency cannot.
  EXPECT_FALSE(r.objects[1].recoverable);
}

TEST(Portfolio, DiamondDependenciesSchedule) {
  const SharedKit kit;
  std::vector<ObjectSpec> objects;
  objects.push_back(ObjectSpec{"base", objectDesign(kit, "base", 50), {}});
  objects.push_back(
      ObjectSpec{"left", objectDesign(kit, "left", 50), {"base"}});
  objects.push_back(
      ObjectSpec{"right", objectDesign(kit, "right", 50), {"base"}});
  objects.push_back(ObjectSpec{"top", objectDesign(kit, "top", 50),
                               {"left", "right"}});
  const Portfolio p(std::move(objects));
  const PortfolioRecoveryResult r = p.recover(cs::arrayFailure());
  ASSERT_TRUE(r.allRecoverable);
  const auto byName = [&](const std::string& name) -> const ObjectRecovery& {
    for (const auto& o : r.objects) {
      if (o.object == name) return o;
    }
    throw std::logic_error("missing " + name);
  };
  EXPECT_GE(byName("left").startTime, byName("base").completionTime);
  EXPECT_GE(byName("right").startTime, byName("base").completionTime);
  EXPECT_GE(byName("top").startTime, byName("left").completionTime);
  EXPECT_GE(byName("top").startTime, byName("right").completionTime);
  EXPECT_EQ(r.totalRecoveryTime, byName("top").completionTime);
}

}  // namespace
}  // namespace stordep::multiobject
