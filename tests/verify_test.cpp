// Tests for the property-based verification subsystem (src/verify): seeded
// generation, greedy shrinking, metamorphic relations, differential oracles,
// and — the subsystem's reason to exist — proof that a deliberately injected
// model bug is caught and minimized to a small reproducer.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <string>

#include "core/evaluator.hpp"
#include "core/propagation.hpp"
#include "verify/differential.hpp"
#include "verify/gen.hpp"
#include "verify/harness.hpp"
#include "verify/metamorphic.hpp"

namespace stordep::verify {
namespace {

TEST(Gen, SeedProtocolIsDeterministicAndSensitive) {
  EXPECT_EQ(mixSeed(42, 7), mixSeed(42, 7));
  EXPECT_NE(mixSeed(42, 7), mixSeed(42, 8));
  EXPECT_NE(mixSeed(42, 7), mixSeed(43, 7));

  const CaseSpec a = caseForSeed(42, 7);
  const CaseSpec b = caseForSeed(42, 7);
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == caseForSeed(42, 8));
}

TEST(Gen, GeneratedCasesAreValidAndMaterialize) {
  for (std::uint64_t i = 0; i < 300; ++i) {
    const CaseSpec spec = caseForSeed(1, i);
    ASSERT_TRUE(caseIsValid(spec)) << describeCase(spec);
    // Materialization must never throw for a generator-produced case.
    const StorageDesign design = makeDesign(spec);
    EXPECT_GE(design.levelCount(), 2) << describeCase(spec);
    (void)makeWorkload(spec);
    (void)makeBusiness(spec);
    (void)makeScenario(spec);
  }
}

TEST(Gen, DefaultCaseIsTheShrinkingOrigin) {
  const CaseSpec origin;
  EXPECT_EQ(paramsFromDefault(origin), 0);
  EXPECT_TRUE(caseIsValid(origin));
}

TEST(Gen, JsonReproducerNamesEveryNonDefaultParameter) {
  CaseSpec spec;
  spec.dataCapGB = 9999.0;
  spec.rtoHours = 4.0;
  const std::string text = describeCase(spec);
  EXPECT_NE(text.find("dataCapGB"), std::string::npos);
  EXPECT_NE(text.find("rtoHours"), std::string::npos);
}

TEST(Relations, ListIsUniqueAndCheckableByName) {
  const CaseSpec spec;  // case-study-shaped default
  std::set<std::string> names;
  for (const RelationInfo& info : listRelations()) {
    EXPECT_TRUE(names.insert(info.name).second) << info.name;
    EXPECT_FALSE(info.summary.empty()) << info.name;
    EXPECT_FALSE(info.citation.empty()) << info.name;
    const RelationResult r = checkRelation(info.name, spec);
    EXPECT_TRUE(r.holds) << info.name << ": " << r.detail;
  }
  EXPECT_THROW((void)checkRelation("no-such-relation", spec),
               std::invalid_argument);
}

TEST(Relations, SmokeRunOfTwoHundredCasesPasses) {
  FuzzOptions options;
  options.seed = 42;
  options.cases = 200;
  options.minimize = false;
  const FuzzReport report = runFuzz(options);
  EXPECT_TRUE(report.allPassed()) << report.failures.size() << " failures; "
                                  << (report.failures.empty()
                                          ? ""
                                          : report.failures.front().detail);
  EXPECT_GT(report.relationChecks, 1000);
  EXPECT_GT(report.oracleChecks, 200);
}

TEST(Shrink, AlwaysFailingPredicateShrinksToTheOrigin) {
  const CaseSpec complex = caseForSeed(7, 123);
  const ShrinkResult shrunk =
      shrinkCase(complex, [](const CaseSpec&) { return true; });
  EXPECT_EQ(paramsFromDefault(shrunk.spec), 0);
  EXPECT_GT(shrunk.stepsTried, 0);
}

TEST(Shrink, ResultStillSatisfiesThePredicate) {
  CaseSpec start = caseForSeed(7, 321);
  start.dataCapGB = 9000.0;
  const auto bigCapacity = [](const CaseSpec& s) {
    return s.dataCapGB > 5000.0;
  };
  const ShrinkResult shrunk = shrinkCase(start, bigCapacity);
  EXPECT_TRUE(bigCapacity(shrunk.spec));
  // Everything except the load-bearing capacity parameter went to default.
  EXPECT_LE(paramsFromDefault(shrunk.spec), 1);
}

// The acceptance demonstration: flip the sign of the loss-penalty accrual —
// the classic "credit instead of charge" model bug — and show the checker
// catches it and the shrinker reduces it to a near-default reproducer.
TEST(Shrink, InjectedPenaltySignFlipIsCaughtAndMinimized) {
  FuzzOptions options;
  options.seed = 9001;
  options.cases = 40;
  options.maxFailures = 1;
  options.simEvery = 0;  // differential oracles use the real evaluator
  options.searchEvery = 0;
  options.ioEvery = 0;
  options.ctx.eval = [](const StorageDesign& design,
                        const FailureScenario& scenario) {
    EvaluationResult result = evaluate(design, scenario);
    result.cost.lossPenalty = result.cost.lossPenalty * -1.0;
    result.cost.totalPenalties =
        result.cost.outagePenalty + result.cost.lossPenalty;
    result.cost.totalCost =
        result.cost.totalOutlays + result.cost.totalPenalties;
    return result;
  };

  const FuzzReport report = runFuzz(options);
  ASSERT_FALSE(report.allPassed());
  const FuzzFailure& failure = report.failures.front();
  EXPECT_EQ(failure.check, "penalty-consistency") << failure.detail;
  // Minimized to a handful of parameters off the case-study default.
  EXPECT_LE(failure.shrunkParams, 5) << describeCase(failure.shrunk);
  // The shrunk case replays: the same check still fails on it.
  const RelationResult replay =
      checkRelation(failure.check, failure.shrunk, options.ctx);
  EXPECT_TRUE(replay.applicable);
  EXPECT_FALSE(replay.holds);
}

TEST(Oracles, AllPassOnTheCaseStudyShapedDefault) {
  const CaseSpec spec;
  const OracleOptions options;
  for (const OracleResult& r :
       {simBoundOracle(spec, options), searchParityOracle(spec, options),
        roundTripOracle(spec), mutationOracle(spec, options)}) {
    EXPECT_TRUE(r.holds) << r.oracle << ": " << r.detail;
  }
}

// Regression for the bound violation the fuzzer surfaced (seed 42, case
// 760): a 161 h full-backup window over a 12 h split-mirror cycle drifts
// through the upstream arrival grid, so aligned-schedule captures see images
// up to one mirror cycle stale. The conservative lag bound now charges that
// slack and the simulator must stay within it.
TEST(Oracles, MisalignedBackupWindowStaysWithinTheSlackedBound) {
  CaseSpec spec;
  spec.candidate.backup = optimizer::BackupChoice::kFullOnly;
  spec.candidate.backupAccW = hours(161);
  ASSERT_TRUE(caseIsValid(spec));

  const StorageDesign design = makeDesign(spec);
  EXPECT_EQ(rpCaptureSlack(design, 2), hours(12));
  EXPECT_EQ(rpTimeLagConservative(design, 2) - rpTimeLag(design, 2),
            hours(12));

  const OracleResult r = simBoundOracle(spec, OracleOptions{});
  EXPECT_TRUE(r.applicable);
  EXPECT_TRUE(r.holds) << r.detail;
}

TEST(Oracles, RoundTripSurvivesEveryGeneratedDesign) {
  for (std::uint64_t i = 0; i < 50; ++i) {
    const OracleResult r = roundTripOracle(caseForSeed(3, i));
    EXPECT_TRUE(r.holds) << "case " << i << ": " << r.detail;
  }
}

TEST(Harness, ReplayReproducesASpecificCase) {
  const FuzzReport report = replayCase(42, 760);
  EXPECT_EQ(report.cases, 1);
  EXPECT_TRUE(report.allPassed())
      << (report.failures.empty() ? "" : report.failures.front().detail);
}

TEST(Harness, ReportJsonCarriesTheReplayCoordinates) {
  FuzzOptions options;
  options.seed = 5;
  options.cases = 3;
  options.ioEvery = 0;
  options.simEvery = 0;
  options.searchEvery = 0;
  const FuzzReport report = runFuzz(options);
  const config::Json json = reportToJson(report);
  const std::string text = json.pretty();
  EXPECT_NE(text.find("\"seed\""), std::string::npos);
  EXPECT_NE(text.find("\"allPassed\""), std::string::npos);
}

}  // namespace
}  // namespace stordep::verify
