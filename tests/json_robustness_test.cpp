// Robustness tests for the JSON parser and design loader: deterministic
// random mutations of valid documents must either parse or throw a typed
// exception — never crash, hang or silently mis-load — and serialization is
// idempotent.
#include <gtest/gtest.h>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "sim/rng.hpp"

namespace stordep::config {
namespace {

namespace cs = stordep::casestudy;

TEST(JsonRobustness, SaveIsIdempotent) {
  for (const auto& [label, design] : cs::allWhatIfDesigns()) {
    const std::string once = saveDesign(design);
    const std::string twice = saveDesign(loadDesign(once));
    EXPECT_EQ(once, twice) << label;
  }
}

TEST(JsonRobustness, TruncationsAlwaysThrowCleanly) {
  const std::string doc = saveDesign(cs::baseline());
  // Cutting the document anywhere must yield JsonError or a loader error,
  // never a crash or an accepted partial design.
  for (size_t cut = 0; cut < doc.size(); cut += 97) {
    const std::string truncated = doc.substr(0, cut);
    EXPECT_THROW((void)loadDesign(truncated), std::exception) << cut;
  }
}

TEST(JsonRobustness, ByteMutationsNeverCrash) {
  const std::string doc = saveDesign(cs::baseline());
  sim::Rng rng(0xBADF00D);
  int parsed = 0, rejected = 0;
  for (int trial = 0; trial < 500; ++trial) {
    std::string mutated = doc;
    // 1-3 random byte substitutions.
    const int edits = 1 + static_cast<int>(rng.uniformInt(3));
    for (int e = 0; e < edits; ++e) {
      const size_t pos = rng.uniformInt(mutated.size());
      mutated[pos] = static_cast<char>(32 + rng.uniformInt(95));
    }
    try {
      const StorageDesign design = loadDesign(mutated);
      // If it loaded, it must be a structurally sound design.
      EXPECT_GE(design.levelCount(), 1);
      ++parsed;
    } catch (const std::exception&) {
      ++rejected;  // typed rejection is the expected common outcome
    }
  }
  EXPECT_EQ(parsed + rejected, 500);
  EXPECT_GT(rejected, 250);  // most mutations corrupt something structural
}

TEST(JsonRobustness, DeletionMutationsNeverCrash) {
  const std::string doc = saveDesign(cs::asyncBatchMirror(2));
  sim::Rng rng(0xC0FFEE);
  for (int trial = 0; trial < 300; ++trial) {
    std::string mutated = doc;
    const size_t pos = rng.uniformInt(mutated.size() - 1);
    const size_t len = 1 + rng.uniformInt(20);
    mutated.erase(pos, std::min(len, mutated.size() - pos));
    try {
      (void)loadDesign(mutated);
    } catch (const std::exception&) {
      // fine — must simply not crash
    }
  }
  SUCCEED();
}

TEST(JsonRobustness, DeepNestingDoesNotOverflow) {
  // 10k-deep arrays: the parser must handle or reject them without a stack
  // smash. (Recursive descent: depth is bounded by input size; this guards
  // against quadratic/crash behavior at realistic hostile depths.)
  std::string deep;
  for (int i = 0; i < 10'000; ++i) deep += '[';
  deep += "1";
  for (int i = 0; i < 10'000; ++i) deep += ']';
  try {
    const Json doc = Json::parse(deep);
    EXPECT_TRUE(doc.isArray());
  } catch (const std::exception&) {
    SUCCEED();
  }
}

TEST(JsonRobustness, HostileScalars) {
  EXPECT_THROW((void)Json::parse("1e99999999999999999999x"), JsonError);
  // Over/underflow to inf/0 per strtod is acceptable; must not throw
  // unexpectedly or crash.
  try {
    (void)Json::parse("1e999");
  } catch (const JsonError&) {
  }
  EXPECT_THROW((void)Json::parse("-"), JsonError);
  EXPECT_THROW((void)Json::parse("+1"), JsonError);
  EXPECT_THROW((void)Json::parse("tru"), JsonError);
  EXPECT_THROW((void)Json::parse("nulll"), JsonError);
  EXPECT_THROW((void)Json::parse(std::string("\"\x01\"")), JsonError);
}

TEST(JsonRobustness, LoaderRejectsSemanticNonsense) {
  // Structurally valid JSON, semantically broken designs.
  auto mutate = [&](const std::string& path, Json value) {
    Json doc = designToJson(cs::baseline());
    // Only top-level workload fields are exercised here.
    Json workload = doc.at("workload");
    workload.set(path, std::move(value));
    doc.set("workload", std::move(workload));
    return doc;
  };
  // Negative capacity.
  EXPECT_THROW((void)designFromJson(mutate("dataCap", Json(-5.0))),
               std::exception);
  // Update rate above access rate.
  EXPECT_THROW((void)designFromJson(mutate("avgUpdateR", Json(1e12))),
               std::exception);
  // Burst below 1.
  EXPECT_THROW((void)designFromJson(mutate("burstM", Json(0.2))),
               std::exception);
}

}  // namespace
}  // namespace stordep::config
