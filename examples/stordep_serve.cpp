// stordep_serve — the evaluation service daemon.
//
// Runs the embedded HTTP server (src/service/) over one shared engine and
// parks until SIGTERM/SIGINT, then drains in-flight requests and exits 0.
//
//   $ ./stordep_serve                       # 127.0.0.1, ephemeral port
//   $ ./stordep_serve --port 8080
//   $ ./stordep_serve --host 0.0.0.0 --port 8080 --threads 8
//
//   $ curl localhost:8080/healthz
//   $ curl -d @request.json localhost:8080/v1/evaluate
//   $ curl localhost:8080/metrics
//
// Options:
//   --host ADDR        listen address (default 127.0.0.1)
//   --port N           listen port (default 0 = ephemeral, printed on start)
//   --threads N        engine worker threads (default 0 = hardware-sized)
//   --max-queue N      admission queue bound, in request slots
//   --linger-us N      batching linger window in microseconds
//   --deadline-ms N    cap on per-request deadlines
//   --drain-ms N       shutdown grace period for in-flight work
//   --no-brownout      disable tiered load shedding under overload
//   --brownout-enter R queue pressure in [0,1] that counts as a hot tick
//   --brownout-exit R  queue pressure at or below which the server recovers
//
// Cluster mode (see DESIGN.md "Cluster layer" and README "Running a
// cluster"): give the node an id and point it at any running member —
// membership gossips out from the seeds, single-design evaluations route
// to their ring owner, and a {"cluster": true} /v1/search fans the sweep
// out over every live member.
//   --node-id ID         join/form a cluster as member ID (enables the layer)
//   --cluster-seed H:P   a peer to bootstrap from (repeatable)
//   --advertise-host A   address peers should dial (default 127.0.0.1)
//   --advertise-port N   port peers should dial (default: the bound port)
//   --cluster-vnodes N   virtual nodes per member on the hash ring
//   --heartbeat-ms N     gossip cadence (default 500)
//   --suspect-ms N       silence before a peer turns Suspect (default 2000)
//   --evict-ms N         silence before a Suspect is evicted (default 6000)
#include <csignal>
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>

#include "cluster/node.hpp"
#include "service/server.hpp"

namespace {

// Signal handlers may only touch async-signal-safe state; requestShutdown()
// is designed for exactly this (atomic flag + pipe write).
stordep::service::Server* g_server = nullptr;

void onSignal(int) {
  if (g_server != nullptr) g_server->requestShutdown();
}

long long parseIntArg(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) {
    std::cerr << "stordep_serve: " << flag << " needs a value\n";
    std::exit(2);
  }
  try {
    return std::stoll(argv[++i]);
  } catch (const std::exception&) {
    std::cerr << "stordep_serve: bad value for " << flag << ": " << argv[i]
              << "\n";
    std::exit(2);
  }
}

double parseDoubleArg(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) {
    std::cerr << "stordep_serve: " << flag << " needs a value\n";
    std::exit(2);
  }
  try {
    return std::stod(argv[++i]);
  } catch (const std::exception&) {
    std::cerr << "stordep_serve: bad value for " << flag << ": " << argv[i]
              << "\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stordep::service;

  ServerOptions options;
  stordep::cluster::ClusterNodeOptions nodeOptions;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--host") {
      if (i + 1 >= argc) {
        std::cerr << "stordep_serve: --host needs a value\n";
        return 2;
      }
      options.host = argv[++i];
    } else if (arg == "--port") {
      options.port =
          static_cast<std::uint16_t>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--threads") {
      options.engineThreads =
          static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--max-queue") {
      options.maxQueueSlots =
          static_cast<std::size_t>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--linger-us") {
      options.batchLinger =
          std::chrono::microseconds(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--deadline-ms") {
      options.maxDeadline =
          std::chrono::milliseconds(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--drain-ms") {
      options.drainTimeout =
          std::chrono::milliseconds(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--no-brownout") {
      options.brownoutEnabled = false;
    } else if (arg == "--brownout-enter") {
      options.brownout.enterPressure = parseDoubleArg(argc, argv, i, arg);
    } else if (arg == "--brownout-exit") {
      options.brownout.exitPressure = parseDoubleArg(argc, argv, i, arg);
    } else if (arg == "--node-id") {
      if (i + 1 >= argc) {
        std::cerr << "stordep_serve: --node-id needs a value\n";
        return 2;
      }
      nodeOptions.nodeId = argv[++i];
    } else if (arg == "--cluster-seed") {
      if (i + 1 >= argc) {
        std::cerr << "stordep_serve: --cluster-seed needs HOST:PORT\n";
        return 2;
      }
      const std::string seed = argv[++i];
      const auto colon = seed.rfind(':');
      if (colon == std::string::npos || colon == 0 ||
          colon + 1 >= seed.size()) {
        std::cerr << "stordep_serve: bad --cluster-seed (want HOST:PORT): "
                  << seed << "\n";
        return 2;
      }
      try {
        nodeOptions.seeds.emplace_back(seed.substr(0, colon),
                                       std::stoi(seed.substr(colon + 1)));
      } catch (const std::exception&) {
        std::cerr << "stordep_serve: bad --cluster-seed port in " << seed
                  << "\n";
        return 2;
      }
    } else if (arg == "--advertise-host") {
      if (i + 1 >= argc) {
        std::cerr << "stordep_serve: --advertise-host needs a value\n";
        return 2;
      }
      nodeOptions.advertiseHost = argv[++i];
    } else if (arg == "--advertise-port") {
      nodeOptions.advertisePort =
          static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--cluster-vnodes") {
      nodeOptions.vnodes = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--heartbeat-ms") {
      nodeOptions.membership.heartbeatInterval =
          std::chrono::milliseconds(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--suspect-ms") {
      nodeOptions.membership.suspectAfter =
          std::chrono::milliseconds(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--evict-ms") {
      nodeOptions.membership.evictAfter =
          std::chrono::milliseconds(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: stordep_serve [--host ADDR] [--port N]"
                   " [--threads N] [--max-queue N] [--linger-us N]"
                   " [--deadline-ms N] [--drain-ms N] [--no-brownout]"
                   " [--brownout-enter R] [--brownout-exit R]"
                   " [--node-id ID] [--cluster-seed HOST:PORT]..."
                   " [--advertise-host A] [--advertise-port N]"
                   " [--cluster-vnodes N] [--heartbeat-ms N]"
                   " [--suspect-ms N] [--evict-ms N]\n";
      return 0;
    } else {
      std::cerr << "stordep_serve: unknown option " << arg << "\n";
      return 2;
    }
  }

  // Declared server-then-node: the node's destructor shuts the server down
  // before the hooks it implements go away.
  stordep::service::Server server(options);
  std::unique_ptr<stordep::cluster::ClusterNode> node;
  try {
    server.start();
    if (!nodeOptions.nodeId.empty()) {
      node = std::make_unique<stordep::cluster::ClusterNode>(server,
                                                             nodeOptions);
      node->start();
    }
  } catch (const std::exception& e) {
    std::cerr << "stordep_serve: " << e.what() << "\n";
    return 1;
  }

  g_server = &server;
  std::signal(SIGTERM, onSignal);
  std::signal(SIGINT, onSignal);
  std::signal(SIGPIPE, SIG_IGN);

  std::cout << "stordep_serve: listening on " << options.host << ":"
            << server.port() << " (" << server.engine().threads()
            << " engine threads)" << std::endl;
  if (node != nullptr) {
    std::cout << "stordep_serve: cluster node " << node->nodeId() << " ("
              << nodeOptions.seeds.size() << " seeds)" << std::endl;
  }

  server.wait();  // parks until a signal triggers the drain

  std::cout << "stordep_serve: drained, exiting" << std::endl;
  return 0;
}
