// verify_fuzz — property-based fuzzing driver for the dependability models.
//
// Runs seeded generative cases through every metamorphic relation and the
// differential oracles (src/verify), shrinks any failure to a minimal
// counterexample, and prints replay instructions. Exit status 1 when any
// check failed — CI runs this nightly under ASan/UBSan.
//
// Usage:
//   verify_fuzz [--seed N] [--cases N] [--no-minimize] [--max-failures N]
//               [--sim-every N] [--stochastic-every N]
//               [--stochastic-plan-every N] [--search-every N]
//               [--plan-every N] [--io-every N] [--replay INDEX] [--out FILE]
//               [--list-relations] [--server N] [--cluster N]
//
// --server N switches to the service oracle: N gen-seeded evaluate payloads
// round-trip through a loopback HTTP server (POST /v1/evaluate) and each
// response must be byte-identical to the in-process engine evaluating the
// same round-tripped design — the served path may not change a single bit.
//
// --cluster N is the same oracle over a 2-node loopback ring: each payload
// is POSTed to BOTH nodes, so roughly half the requests are forwarded to
// their ring owner and half are computed locally, and every response must
// still match the in-process engine byte for byte — routing may move
// compute, never change it.
//
// Replaying a failure: a report names (seed, index); re-run just that case
// with `verify_fuzz --seed N --replay INDEX`.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "cluster/node.hpp"
#include "config/design_io.hpp"
#include "engine/batch.hpp"
#include "service/client.hpp"
#include "service/json_api.hpp"
#include "service/server.hpp"
#include "verify/gen.hpp"
#include "verify/harness.hpp"

namespace {

void usage() {
  std::cout
      << "usage: verify_fuzz [options]\n"
         "  --seed N          run seed (default 42)\n"
         "  --cases N         number of generated cases (default 1000)\n"
         "  --replay INDEX    re-run a single case of this seed, all oracles\n"
         "  --no-minimize     skip shrinking failures\n"
         "  --minimize        shrink failures to minimal cases (default)\n"
         "  --max-failures N  stop after N failures (default 5, 0 = all)\n"
         "  --sim-every N     simulation oracle cadence (default 20, 0 = off)\n"
         "  --stochastic-every N\n"
         "                    stochastic-bound oracle cadence (default 25)\n"
         "  --stochastic-plan-every N\n"
         "                    stochastic-plan oracle cadence (compiled\n"
         "                    TrialPlan vs legacy trial loop, default 25)\n"
         "  --search-every N  search-parity oracle cadence (default 200)\n"
         "  --plan-every N    plan-vs-legacy oracle cadence (default 1)\n"
         "  --io-every N      round-trip/mutation oracle cadence (default 1)\n"
         "  --out FILE        write the JSON report to FILE\n"
         "  --list-relations  print every metamorphic relation and exit\n"
         "  --server N        round-trip N payloads through a loopback\n"
         "                    evaluation server instead (byte-exact oracle)\n"
         "  --cluster N       the --server oracle over a 2-node loopback\n"
         "                    ring (forwarded and local paths byte-exact)\n";
}

long long parseIntArg(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) {
    std::cerr << "verify_fuzz: " << flag << " needs a value\n";
    std::exit(2);
  }
  try {
    return std::stoll(argv[++i]);
  } catch (const std::exception&) {
    std::cerr << "verify_fuzz: bad value for " << flag << ": " << argv[i]
              << "\n";
    std::exit(2);
  }
}

/// The service oracle: round-trips `cases` gen-seeded evaluate payloads
/// through a loopback server and demands byte-identical agreement with the
/// in-process engine. Both sides evaluate the *round-tripped* design
/// (designFromJson(designToJson(d))) — exactly what the server parses — so
/// any mismatch is the service layer's fault, not serialization drift.
int runServerFuzz(std::uint64_t seed, int cases) {
  using namespace stordep;

  service::ServerOptions serverOptions;
  serverOptions.engineThreads = 2;
  service::Server server(serverOptions);
  server.start();

  engine::Engine reference(engine::EngineOptions{.threads = 1});
  service::Client client("127.0.0.1", server.port());

  int failures = 0;
  for (int index = 0; index < cases; ++index) {
    const verify::CaseSpec spec =
        verify::caseForSeed(seed, static_cast<std::uint64_t>(index));
    const StorageDesign design = verify::makeDesign(spec);
    const FailureScenario scenario = verify::makeScenario(spec);

    config::Json payload{config::JsonObject{}};
    payload.set("design", config::designToJson(design));
    payload.set("scenario", config::scenarioToJson(scenario));
    const service::HttpClientResponse response = client.post(
        "/v1/evaluate", payload.dump(),
        {{"Content-Type", "application/json"}});

    const StorageDesign parsed =
        config::designFromJson(config::designToJson(design));
    const engine::EvalOutcome outcome =
        reference.tryEvaluate(parsed, scenario);
    std::string expectedBody;
    int expectedStatus = 0;
    if (outcome.ok()) {
      expectedStatus = 200;
      expectedBody =
          service::evaluationToJson(parsed, scenario, outcome.value()).dump();
    } else {
      expectedStatus = service::httpStatusFor(outcome.error().code);
      expectedBody = service::evalErrorToJson(outcome.error()).dump();
    }

    if (response.status != expectedStatus || response.body != expectedBody) {
      ++failures;
      std::cout << "FAIL service-round-trip (case " << index << ")\n"
                << "  expected " << expectedStatus << ": " << expectedBody
                << "\n  got      " << response.status << ": " << response.body
                << "\n  replay: verify_fuzz --seed " << seed << " --server "
                << (index + 1) << "\n  case: "
                << verify::describeCase(spec) << "\n";
    }
  }

  server.shutdown();
  std::cout << "seed " << seed << ": " << cases
            << " evaluate payloads round-tripped through the loopback "
               "server, "
            << failures << " mismatch(es)\n";
  return failures == 0 ? 0 : 1;
}

/// The cluster oracle: a 2-node loopback ring; every payload goes to both
/// nodes (one of them forwards to the owner) and both responses must be
/// byte-identical to the in-process engine's evaluation.
int runClusterFuzz(std::uint64_t seed, int cases) {
  using namespace stordep;
  using stordep::cluster::ClusterNode;
  using stordep::cluster::ClusterNodeOptions;

  service::ServerOptions serverOptions;
  serverOptions.engineThreads = 2;
  service::Server serverA(serverOptions);
  service::Server serverB(serverOptions);
  serverA.start();
  serverB.start();

  ClusterNodeOptions optionsA;
  optionsA.nodeId = "fuzz-a";
  ClusterNodeOptions optionsB;
  optionsB.nodeId = "fuzz-b";
  optionsB.seeds.emplace_back("127.0.0.1", static_cast<int>(serverA.port()));
  ClusterNode nodeA(serverA, optionsA);
  ClusterNode nodeB(serverB, optionsB);
  nodeA.start();
  nodeB.start();

  // One extra explicit round each guarantees both rings hold both members
  // before the first payload, regardless of heartbeat phase.
  nodeB.gossipOnce();
  nodeA.gossipOnce();
  nodeB.gossipOnce();

  engine::Engine reference(engine::EngineOptions{.threads = 1});
  service::Client clientA("127.0.0.1", serverA.port());
  service::Client clientB("127.0.0.1", serverB.port());

  int failures = 0;
  for (int index = 0; index < cases; ++index) {
    const verify::CaseSpec spec =
        verify::caseForSeed(seed, static_cast<std::uint64_t>(index));
    const StorageDesign design = verify::makeDesign(spec);
    const FailureScenario scenario = verify::makeScenario(spec);

    config::Json payload{config::JsonObject{}};
    payload.set("design", config::designToJson(design));
    payload.set("scenario", config::scenarioToJson(scenario));
    const std::string body = payload.dump();

    const StorageDesign parsed =
        config::designFromJson(config::designToJson(design));
    const engine::EvalOutcome outcome =
        reference.tryEvaluate(parsed, scenario);
    std::string expectedBody;
    int expectedStatus = 0;
    if (outcome.ok()) {
      expectedStatus = 200;
      expectedBody =
          service::evaluationToJson(parsed, scenario, outcome.value()).dump();
    } else {
      expectedStatus = service::httpStatusFor(outcome.error().code);
      expectedBody = service::evalErrorToJson(outcome.error()).dump();
    }

    const char* nodeNames[2] = {"fuzz-a", "fuzz-b"};
    service::Client* clients[2] = {&clientA, &clientB};
    for (int n = 0; n < 2; ++n) {
      const service::HttpClientResponse response = clients[n]->post(
          "/v1/evaluate", body, {{"Content-Type", "application/json"}});
      if (response.status != expectedStatus ||
          response.body != expectedBody) {
        ++failures;
        std::cout << "FAIL cluster-round-trip via " << nodeNames[n]
                  << " (case " << index << ")\n"
                  << "  expected " << expectedStatus << ": " << expectedBody
                  << "\n  got      " << response.status << ": "
                  << response.body << "\n  replay: verify_fuzz --seed "
                  << seed << " --cluster " << (index + 1)
                  << "\n  case: " << verify::describeCase(spec) << "\n";
      }
    }
  }

  const config::Json metricsA = config::Json::parse(
      clientA.get("/metrics").body);
  std::uint64_t forwarded = 0;
  if (const config::Json* section = metricsA.find("cluster")) {
    if (const config::Json* f = section->find("evaluateForwarded")) {
      forwarded = static_cast<std::uint64_t>(f->asNumber());
    }
  }

  nodeB.stop();
  nodeA.stop();
  std::cout << "seed " << seed << ": " << cases
            << " evaluate payloads through a 2-node ring (x2 entry points, "
            << forwarded << " forwarded by fuzz-a), " << failures
            << " mismatch(es)\n";
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stordep;

  verify::FuzzOptions options;
  std::optional<std::uint64_t> replayIndex;
  std::string outPath;
  int serverCases = 0;
  int clusterCases = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(
          parseIntArg(argc, argv, i, arg));
    } else if (arg == "--cases") {
      options.cases = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--replay") {
      replayIndex = static_cast<std::uint64_t>(
          parseIntArg(argc, argv, i, arg));
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--minimize") {
      options.minimize = true;
    } else if (arg == "--max-failures") {
      options.maxFailures = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--sim-every") {
      options.simEvery = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--stochastic-every") {
      options.stochasticEvery =
          static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--stochastic-plan-every") {
      options.stochasticPlanEvery =
          static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--search-every") {
      options.searchEvery = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--plan-every") {
      options.planEvery = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--io-every") {
      options.ioEvery = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--server") {
      serverCases = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--cluster") {
      clusterCases = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::cerr << "verify_fuzz: --out needs a value\n";
        return 2;
      }
      outPath = argv[++i];
    } else if (arg == "--list-relations") {
      for (const verify::RelationInfo& info : verify::listRelations()) {
        std::cout << info.name << "  [" << info.citation << "]\n    "
                  << info.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "verify_fuzz: unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  if (serverCases > 0) return runServerFuzz(options.seed, serverCases);
  if (clusterCases > 0) return runClusterFuzz(options.seed, clusterCases);

  const verify::FuzzReport report =
      replayIndex ? verify::replayCase(options.seed, *replayIndex, options)
                  : verify::runFuzz(options);

  std::cout << "seed " << report.seed << ": " << report.cases << " cases, "
            << report.relationChecks << " relation checks ("
            << report.relationSkips << " n/a), " << report.oracleChecks
            << " oracle checks (" << report.oracleSkips << " n/a)\n";

  for (const verify::FuzzFailure& failure : report.failures) {
    std::cout << "\nFAIL " << failure.check << " (case " << failure.index
              << ")\n  " << failure.detail << "\n  replay: verify_fuzz --seed "
              << failure.seed << " --replay " << failure.index
              << "\n  original: " << verify::describeCase(failure.original)
              << "\n  shrunk (" << failure.shrunkParams
              << " params off default): "
              << verify::describeCase(failure.shrunk) << "\n";
  }

  if (!outPath.empty()) {
    std::ofstream out(outPath);
    if (!out) {
      std::cerr << "verify_fuzz: cannot write " << outPath << "\n";
      return 2;
    }
    out << verify::reportToJson(report).pretty() << "\n";
  }

  if (report.allPassed()) {
    std::cout << "all checks passed\n";
    return 0;
  }
  std::cout << "\n" << report.failures.size() << " failing check(s)"
            << (report.stoppedEarly ? " (stopped early)" : "") << "\n";
  return 1;
}
