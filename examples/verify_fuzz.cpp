// verify_fuzz — property-based fuzzing driver for the dependability models.
//
// Runs seeded generative cases through every metamorphic relation and the
// differential oracles (src/verify), shrinks any failure to a minimal
// counterexample, and prints replay instructions. Exit status 1 when any
// check failed — CI runs this nightly under ASan/UBSan.
//
// Usage:
//   verify_fuzz [--seed N] [--cases N] [--no-minimize] [--max-failures N]
//               [--sim-every N] [--search-every N] [--io-every N]
//               [--replay INDEX] [--out FILE] [--list-relations]
//
// Replaying a failure: a report names (seed, index); re-run just that case
// with `verify_fuzz --seed N --replay INDEX`.

#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "verify/harness.hpp"

namespace {

void usage() {
  std::cout
      << "usage: verify_fuzz [options]\n"
         "  --seed N          run seed (default 42)\n"
         "  --cases N         number of generated cases (default 1000)\n"
         "  --replay INDEX    re-run a single case of this seed, all oracles\n"
         "  --no-minimize     skip shrinking failures\n"
         "  --minimize        shrink failures to minimal cases (default)\n"
         "  --max-failures N  stop after N failures (default 5, 0 = all)\n"
         "  --sim-every N     simulation oracle cadence (default 20, 0 = off)\n"
         "  --search-every N  search-parity oracle cadence (default 200)\n"
         "  --io-every N      round-trip/mutation oracle cadence (default 1)\n"
         "  --out FILE        write the JSON report to FILE\n"
         "  --list-relations  print every metamorphic relation and exit\n";
}

long long parseIntArg(int argc, char** argv, int& i, const std::string& flag) {
  if (i + 1 >= argc) {
    std::cerr << "verify_fuzz: " << flag << " needs a value\n";
    std::exit(2);
  }
  try {
    return std::stoll(argv[++i]);
  } catch (const std::exception&) {
    std::cerr << "verify_fuzz: bad value for " << flag << ": " << argv[i]
              << "\n";
    std::exit(2);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace stordep;

  verify::FuzzOptions options;
  std::optional<std::uint64_t> replayIndex;
  std::string outPath;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--seed") {
      options.seed = static_cast<std::uint64_t>(
          parseIntArg(argc, argv, i, arg));
    } else if (arg == "--cases") {
      options.cases = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--replay") {
      replayIndex = static_cast<std::uint64_t>(
          parseIntArg(argc, argv, i, arg));
    } else if (arg == "--no-minimize") {
      options.minimize = false;
    } else if (arg == "--minimize") {
      options.minimize = true;
    } else if (arg == "--max-failures") {
      options.maxFailures = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--sim-every") {
      options.simEvery = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--search-every") {
      options.searchEvery = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--io-every") {
      options.ioEvery = static_cast<int>(parseIntArg(argc, argv, i, arg));
    } else if (arg == "--out") {
      if (i + 1 >= argc) {
        std::cerr << "verify_fuzz: --out needs a value\n";
        return 2;
      }
      outPath = argv[++i];
    } else if (arg == "--list-relations") {
      for (const verify::RelationInfo& info : verify::listRelations()) {
        std::cout << info.name << "  [" << info.citation << "]\n    "
                  << info.summary << "\n";
      }
      return 0;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::cerr << "verify_fuzz: unknown option " << arg << "\n";
      usage();
      return 2;
    }
  }

  const verify::FuzzReport report =
      replayIndex ? verify::replayCase(options.seed, *replayIndex, options)
                  : verify::runFuzz(options);

  std::cout << "seed " << report.seed << ": " << report.cases << " cases, "
            << report.relationChecks << " relation checks ("
            << report.relationSkips << " n/a), " << report.oracleChecks
            << " oracle checks (" << report.oracleSkips << " n/a)\n";

  for (const verify::FuzzFailure& failure : report.failures) {
    std::cout << "\nFAIL " << failure.check << " (case " << failure.index
              << ")\n  " << failure.detail << "\n  replay: verify_fuzz --seed "
              << failure.seed << " --replay " << failure.index
              << "\n  original: " << verify::describeCase(failure.original)
              << "\n  shrunk (" << failure.shrunkParams
              << " params off default): "
              << verify::describeCase(failure.shrunk) << "\n";
  }

  if (!outPath.empty()) {
    std::ofstream out(outPath);
    if (!out) {
      std::cerr << "verify_fuzz: cannot write " << outPath << "\n";
      return 2;
    }
    out << verify::reportToJson(report).pretty() << "\n";
  }

  if (report.allPassed()) {
    std::cout << "all checks passed\n";
    return 0;
  }
  std::cout << "\n" << report.failures.size() << " failing check(s)"
            << (report.stoppedEarly ? " (stopped early)" : "") << "\n";
  return 1;
}
