// quickstart — the 60-second tour of the stordep public API.
//
// Builds the paper's baseline design (split mirror + weekly tape backup +
// 4-weekly vaulting protecting the cello workload), evaluates it under the
// three case-study failure scenarios, and prints the full paper-style
// report for each: normal-mode utilization, RP ranges, the recovery
// timeline, and the cost breakdown.
//
//   $ ./quickstart
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::FailureScenario;

  // 1. A storage design: workload + business requirements + technique
  //    hierarchy + recovery facility. The case-study module builds the
  //    paper's baseline; examples/whatif_explorer.cpp shows how to build
  //    designs by hand or load them from JSON.
  const stordep::StorageDesign design = cs::baseline();

  // 2. Failure scenarios to design against.
  const std::vector<std::pair<std::string, FailureScenario>> scenarios = {
      {"user error corrupts a 1 MB object (roll back 24 h)",
       cs::objectFailure()},
      {"the primary disk array fails", cs::arrayFailure()},
      {"the primary site is destroyed", cs::siteDisaster()},
  };

  // 3. evaluate() runs all the models: utilization, data loss, recovery
  //    time, costs.
  for (const auto& [description, scenario] : scenarios) {
    std::cout << "########  " << description << "  ########\n\n";
    const stordep::EvaluationResult result =
        stordep::evaluate(design, scenario);
    std::cout << stordep::report::fullReport(design, scenario, result)
              << "\n";
  }
  return 0;
}
