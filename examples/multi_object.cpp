// multi_object — protecting a whole application stack, not one object.
//
// The paper models one data object and sketches the multi-object extension
// (Sec 3.1.1). This example builds a three-tier stack — database, file
// share, application state — whose designs *share* an array and a tape
// library, and shows what the single-object view misses:
//
//  * the shared array is near capacity even though each object alone looks
//    comfortable;
//  * fixed costs are charged once, not three times;
//  * after an array failure, restores queue on the shared tape library and
//    the app waits for the database — the stack's recovery time is much
//    longer than any single object's.
//
//   $ ./multi_object
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/split_mirror.hpp"
#include "devices/catalog.hpp"
#include "multiobject/portfolio.hpp"
#include "report/report.hpp"

namespace {

using namespace stordep;
namespace cs = stordep::casestudy;

WorkloadSpec tierWorkload(const std::string& name, double gb,
                          double updateKb) {
  return WorkloadSpec(name, gigabytes(gb), kbPerSec(updateKb * 1.3),
                      kbPerSec(updateKb), 8.0,
                      {BatchUpdatePoint{minutes(1), kbPerSec(updateKb * 0.9)},
                       BatchUpdatePoint{hours(12), kbPerSec(updateKb * 0.4)},
                       BatchUpdatePoint{weeks(1), kbPerSec(updateKb * 0.35)}});
}

StorageDesign tierDesign(const DevicePtr& array, const DevicePtr& library,
                         const std::string& name, double gb,
                         double updateKb) {
  std::vector<TechniquePtr> levels;
  levels.push_back(std::make_shared<PrimaryCopy>(array));
  levels.push_back(std::make_shared<SplitMirror>(
      name + " mirrors", array,
      ProtectionPolicy(WindowSpec{.accW = hours(12)}, 4, days(2))));
  levels.push_back(std::make_shared<Backup>(
      name + " backup", BackupStyle::kFullOnly, array, library,
      ProtectionPolicy(WindowSpec{.accW = weeks(1),
                                  .propW = hours(24),
                                  .holdW = hours(1)},
                       4, weeks(4))));
  return StorageDesign(name, tierWorkload(name + " workload", gb, updateKb),
                       caseStudyRequirements(), std::move(levels),
                       cs::recoveryFacility());
}

}  // namespace

int main() {
  using report::Align;
  using report::TextTable;
  using report::fixed;
  using report::percent;

  // Shared hardware: one mid-range array, one tape library.
  const DevicePtr array = catalog::midrangeDiskArray(
      cs::kPrimaryArrayName, Location::at(cs::kPrimarySite));
  const DevicePtr library = catalog::enterpriseTapeLibrary(
      "tape-library", Location::at(cs::kPrimarySite));

  std::vector<multiobject::ObjectSpec> objects;
  objects.push_back({"database",
                     tierDesign(array, library, "database", 600, 500), {}});
  objects.push_back({"fileshare",
                     tierDesign(array, library, "fileshare", 700, 300), {}});
  objects.push_back({"appstate",
                     tierDesign(array, library, "appstate", 120, 100),
                     {"database", "fileshare"}});
  const multiobject::Portfolio portfolio(std::move(objects));

  // 1. Aggregate utilization: the shared-array truth.
  const UtilizationResult merged = portfolio.aggregateUtilization();
  const UtilizationResult dbAlone =
      computeUtilization(portfolio.object("database").design);
  std::cout << "Shared primary array capacity: database alone "
            << percent(dbAlone.find(cs::kPrimaryArrayName)->capUtil)
            << ", whole stack "
            << percent(merged.find(cs::kPrimaryArrayName)->capUtil)
            << (merged.feasible() ? " (fits)" : " (OVERLOADED)") << "\n";

  // 2. Aggregate outlays vs naive per-object sums.
  Money naive = Money::zero();
  for (const auto& object : portfolio.objects()) {
    naive += computeCosts(object.design,
                          computeRecovery(object.design, cs::arrayFailure()))
                 .totalOutlays;
  }
  std::cout << "Annual outlays: summed per object " << toString(naive)
            << "; shared-hardware aggregate "
            << toString(portfolio.aggregateOutlays())
            << " (fixed costs charged once)\n\n";

  // 3. Dependency-aware recovery after an array failure.
  const multiobject::PortfolioRecoveryResult recovery =
      portfolio.recover(cs::arrayFailure());
  TextTable table({"Object", "Source device", "Own restore", "Starts",
                   "Done", "Data loss"});
  for (size_t c = 2; c < 6; ++c) table.align(c, Align::kRight);
  table.title("Stack recovery after an array failure (restores share the "
              "tape library; appstate waits for both stores)");
  for (const auto& object : recovery.objects) {
    table.addRow({object.object, object.sourceDevice,
                  toString(object.ownDuration), toString(object.startTime),
                  toString(object.completionTime),
                  toString(object.dataLoss)});
  }
  std::cout << table.render();
  std::cout << "\nstack recovery time: " << toString(recovery.totalRecoveryTime)
            << " — vs " << toString(recovery.objects[0].ownDuration)
            << " if the database were alone. Single-object models cannot "
               "see the queueing\non the shared library or the dependency "
               "chain; the portfolio scheduler can.\n";
  return recovery.allRecoverable ? 0 : 1;
}
