// workload_fitting — from raw I/O records to model inputs.
//
// The dependability models are driven by workload statistics (paper
// Table 2). This example shows the full pipeline for deriving them when all
// you have is an I/O trace: generate a synthetic cello-like block trace
// (substituting for the proprietary cello traces), measure the statistics
// with the analyzer, fit a WorkloadSpec, and evaluate a design against the
// fitted workload.
//
//   $ ./workload_fitting
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "core/evaluator.hpp"
#include "core/techniques/backup.hpp"
#include "core/techniques/split_mirror.hpp"
#include "devices/catalog.hpp"
#include "report/report.hpp"
#include "workloadgen/analyzer.hpp"
#include "workloadgen/cello.hpp"

int main() {
  namespace wg = stordep::workloadgen;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  // 1. Generate a cello-like trace at laptop scale (2 GB object, the
  //    published update rate and burstiness).
  const wg::GeneratorConfig config = wg::cello::generatorConfig();
  std::cout << "Generating 12 hours of synthetic cello-like updates ("
            << toString(config.objectSize) << " object, "
            << toString(config.avgUpdateRate) << " updates, "
            << config.burstMultiplier << "x bursts)...\n";
  wg::TraceGenerator generator(config);
  const wg::UpdateTrace trace = generator.generate(stordep::hours(12));
  std::cout << "  " << trace.records().size() << " update records, "
            << toString(trace.totalBytes()) << " written\n\n";

  // 2. Measure the Table 2 statistics from the trace.
  const wg::TraceAnalyzer analyzer(trace);
  TextTable curve({"Window", "Unique update rate", "Fraction of updates"});
  curve.align(1, Align::kRight).align(2, Align::kRight);
  curve.title("Measured batchUpdR(win) — overwrites coalesce as the window "
              "grows");
  const double avg = analyzer.averageUpdateRate().kbPerSec();
  for (const stordep::Duration win :
       {stordep::minutes(1), stordep::minutes(10), stordep::hours(1),
        stordep::hours(3), stordep::hours(6)}) {
    const double rate = analyzer.batchUpdateRate(win).kbPerSec();
    curve.addRow({toString(win), fixed(rate, 0) + " KB/s",
                  fixed(100.0 * rate / avg, 0) + "%"});
  }
  std::cout << curve.render();
  std::cout << "average update rate: " << fixed(avg, 0)
            << " KB/s (published: 799), burstiness over 1 s bins: "
            << fixed(analyzer.burstMultiplier(stordep::seconds(1)), 1)
            << "x\n\n";

  // 3. Fit a WorkloadSpec (access rate from the published read/write mix).
  const stordep::WorkloadSpec fitted = analyzer.fitWorkload(
      "fitted cello-like workload",
      {stordep::minutes(1), stordep::minutes(10), stordep::hours(1),
       stordep::hours(3), stordep::hours(6)},
      stordep::seconds(1), /*accessToUpdateRatio=*/1028.0 / 799.0);

  // 4. Use it: how well does a split mirror + daily backup protect this
  //    (scaled-down) object?
  auto array = stordep::catalog::midrangeDiskArray(
      stordep::casestudy::kPrimaryArrayName, stordep::Location::at("hq"));
  auto library = stordep::catalog::enterpriseTapeLibrary(
      "tape-library", stordep::Location::at("hq"));
  std::vector<stordep::TechniquePtr> levels;
  levels.push_back(std::make_shared<stordep::PrimaryCopy>(array));
  levels.push_back(std::make_shared<stordep::SplitMirror>(
      "split mirror", array,
      stordep::ProtectionPolicy(
          stordep::WindowSpec{.accW = stordep::hours(12)}, 4,
          stordep::days(2))));
  levels.push_back(std::make_shared<stordep::Backup>(
      "tape backup", stordep::BackupStyle::kFullOnly, array, library,
      stordep::ProtectionPolicy(
          stordep::WindowSpec{.accW = stordep::hours(24),
                              .propW = stordep::hours(12),
                              .holdW = stordep::hours(1)},
          28, stordep::weeks(4))));
  const stordep::StorageDesign design(
      "fitted-workload design", fitted, stordep::caseStudyRequirements(),
      std::move(levels), std::nullopt);

  const auto result =
      stordep::evaluate(design, stordep::casestudy::arrayFailure());
  std::cout << "Evaluating a split-mirror + daily-backup design against the "
               "fitted workload:\n"
            << stordep::report::recoverySummaryLine(
                   stordep::casestudy::arrayFailure(), result.recovery)
            << "\n"
            << "utilization: array capacity "
            << stordep::report::percent(result.utilization.overallCapUtil)
            << ", total cost "
            << toString(result.cost.totalCost) << "/yr\n";
  return 0;
}
