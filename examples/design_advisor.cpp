// design_advisor — automated dependable-storage design (paper Sec 1's
// "inner-most loop of an automated optimization loop", and [13]).
//
// Enumerates a space of candidate designs (PiT technique x backup policy x
// vaulting x mirroring over the case-study hardware catalog), evaluates
// every candidate under the object/array/site failure scenarios, filters by
// the requested RTO/RPO, and prints the cheapest feasible designs.
//
//   $ ./design_advisor                  # unconstrained: rank by total cost
//   $ ./design_advisor 48 12            # RTO 48 h, RPO 12 h
//
// Long sweeps can be bounded and made restartable:
//   --deadline=SECONDS    stop handing out candidates once the wall-clock
//                         budget elapses (the partial ranking is printed)
//   --checkpoint=PATH     journal completed candidates to PATH; re-running
//                         with the same arguments resumes where it stopped
//                         and produces the exact uninterrupted ranking
//   --retries=N           retry transient evaluation failures up to N times
//
// Note that the scenario set includes a 24-hour-rollback object failure, so
// very tight RPOs (e.g. 1 h) are unsatisfiable by construction: a level that
// retains a day-old version cannot also be one hour fresh unless it keeps
// sub-hour RPs for a day — outside the default grid. The advisor then lists
// the nearest misses and why they were rejected.
#include <chrono>
#include <cstdlib>
#include <iostream>
#include <map>
#include <string>

#include "casestudy/casestudy.hpp"
#include "optimizer/refine.hpp"
#include "optimizer/search.hpp"
#include "report/report.hpp"

int main(int argc, char** argv) {
  namespace cs = stordep::casestudy;
  namespace opt = stordep::optimizer;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  stordep::BusinessRequirements business = cs::requirements();
  opt::SearchOptions searchOptions;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--checkpoint=", 0) == 0) {
      searchOptions.checkpointPath = arg.substr(13);
    } else if (arg.rfind("--deadline=", 0) == 0) {
      searchOptions.deadline = std::chrono::milliseconds(
          static_cast<long long>(std::atof(arg.c_str() + 11) * 1000.0));
    } else if (arg.rfind("--retries=", 0) == 0) {
      searchOptions.maxRetries = std::atoi(arg.c_str() + 10);
    } else if (arg == "--plan") {
      searchOptions.usePlan = true;  // the default; kept for symmetry
    } else if (arg == "--no-plan") {
      searchOptions.usePlan = false;  // force the legacy cache-backed path
    } else if (arg.rfind("--", 0) == 0) {
      std::cerr << "unknown option " << arg << "\n";
      return 2;
    } else if (positional == 0) {
      business.rto = stordep::hours(std::atof(arg.c_str()));
      ++positional;
    } else {
      business.rpo = stordep::hours(std::atof(arg.c_str()));
      ++positional;
    }
  }

  std::cout << "Designing for: cello workload (1.33 TB), penalties $50k/hr";
  if (business.rto) {
    std::cout << ", RTO " << toString(*business.rto);
  }
  if (business.rpo) {
    std::cout << ", RPO " << toString(*business.rpo);
  }
  std::cout << "\n\n";

  const auto candidates = opt::enumerateDesignSpace();
  const opt::SearchResult result =
      opt::searchDesignSpace(candidates, cs::celloWorkload(), business,
                             opt::caseStudyScenarios(), searchOptions);

  std::cout << "evaluated " << result.evaluated << " candidate designs ("
            << result.ranked.size() << " feasible and objective-meeting, "
            << result.rejected.size() << " rejected)\n";
  if (result.skipped > 0) {
    std::cout << "resumed " << result.skipped
              << " candidates from checkpoint "
              << searchOptions.checkpointPath << "\n";
  }
  if (result.failed > 0) {
    // Break the failures down by the engine's error taxonomy so a partial
    // sweep says *what* went wrong, not just how much.
    std::map<std::string, int> byCode;
    for (const auto& candidate : result.rejected) {
      if (candidate.error) {
        ++byCode[std::string(stordep::engine::toString(candidate.error->code))];
      }
    }
    std::cout << result.failed << " candidates failed to evaluate (";
    bool first = true;
    for (const auto& [code, count] : byCode) {
      if (!first) std::cout << ", ";
      std::cout << count << " " << code;
      first = false;
    }
    std::cout << ")\n";
  }
  if (result.cancelled) {
    std::cout << "sweep stopped at the deadline with "
              << (candidates.size() - static_cast<size_t>(result.evaluated))
              << " candidates un-evaluated";
    if (!searchOptions.checkpointPath.empty()) {
      std::cout << "; re-run with the same arguments to resume";
    }
    std::cout << "\n";
  }
  std::cout << "\n";

  TextTable table({"#", "Design", "Outlays/yr", "Worst RT", "Worst DL",
                   "Total cost"});
  table.align(2, Align::kRight).align(3, Align::kRight)
      .align(4, Align::kRight).align(5, Align::kRight);
  table.title("Top designs by total annual cost (outlays + penalties over "
              "the scenario set)");
  const size_t top = std::min<size_t>(10, result.ranked.size());
  for (size_t i = 0; i < top; ++i) {
    const auto& c = result.ranked[i];
    table.addRow({std::to_string(i + 1), c.label,
                  "$" + fixed(c.outlays.millionUsd(), 2) + "M",
                  toString(c.worstRecoveryTime), toString(c.worstDataLoss),
                  "$" + fixed(c.totalCost.millionUsd(), 2) + "M"});
  }
  std::cout << table.render() << "\n";

  // The Pareto frontier: the designs worth considering regardless of how
  // the business prices outage vs loss vs budget.
  std::vector<opt::EvaluatedCandidate> all = result.ranked;
  all.insert(all.end(), result.rejected.begin(), result.rejected.end());
  const auto frontier = opt::paretoFrontier(all);
  TextTable pareto({"Design", "Outlays/yr", "Worst RT", "Worst DL"});
  pareto.align(1, Align::kRight).align(2, Align::kRight)
      .align(3, Align::kRight);
  pareto.title("Pareto frontier over (outlays, worst RT, worst DL) — " +
               std::to_string(frontier.size()) + " of " +
               std::to_string(result.evaluated) + " candidates");
  for (size_t i = 0; i < std::min<size_t>(8, frontier.size()); ++i) {
    const auto& c = frontier[i];
    pareto.addRow({c.label, "$" + fixed(c.outlays.millionUsd(), 2) + "M",
                   toString(c.worstRecoveryTime), toString(c.worstDataLoss)});
  }
  std::cout << pareto.render() << "\n";

  if (const auto* best = result.best()) {
    // Hill-climb the grid winner's knobs off-grid.
    opt::RefineOptions refineOptions;
    refineOptions.usePlan = searchOptions.usePlan;
    const opt::RefineResult refined = opt::refineCandidate(
        best->spec, cs::celloWorkload(), business, opt::caseStudyScenarios(),
        refineOptions);
    std::cout << "Recommendation: " << refined.best.label << "\n";
    if (refined.improvement.usd() > 1.0) {
      std::cout << "  (refined from '" << best->label << "', saving "
                << toString(refined.improvement) << "/yr in " << refined.steps
                << " hill-climbing steps, " << refined.evaluations
                << " evaluations)\n";
    }
  } else {
    std::cout << "No design in the space meets the objectives; the nearest "
                 "misses were:\n";
    for (size_t i = 0; i < std::min<size_t>(5, result.rejected.size()); ++i) {
      std::cout << "  " << result.rejected[i].label << " — "
                << result.rejected[i].rejectionReason << "\n";
    }
  }
  // A sweep with errored candidates produced a ranking over an incomplete
  // space: exit non-zero so scripted callers notice the partial failure.
  return result.failed > 0 ? 1 : 0;
}
