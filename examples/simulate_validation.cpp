// simulate_validation — validate the analytic models by simulation.
//
// The paper computes *worst-case* recent data loss from window arithmetic
// and lists validation against real recovery behaviour as future work. This
// example closes that loop in simulation: it executes every level's actual
// RP creation/propagation/retention schedule on the discrete-event engine,
// injects thousands of failures, and compares the achieved data loss
// against the analytic bound — per scenario, for the baseline design.
//
//   $ ./simulate_validation
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "report/report.hpp"
#include "sim/failure_injector.hpp"

int main() {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;
  using stordep::report::fixed;

  const stordep::StorageDesign design = cs::baseline();
  std::cout << "Simulating RP lifecycles for '" << design.name()
            << "' over 200 days...\n";

  stordep::sim::RpSimOptions options;
  options.horizon = stordep::days(200);
  stordep::sim::RpLifecycleSimulator simulator(design, options);
  simulator.run();
  std::cout << "  " << simulator.eventsProcessed()
            << " events processed; timelines: split mirror "
            << simulator.timeline(1).size() << " RPs, backup "
            << simulator.timeline(2).size() << " RPs, vault "
            << simulator.timeline(3).size() << " RPs\n\n";

  stordep::sim::FailureInjector injector(simulator, stordep::sim::Rng(2024));

  TextTable table({"Scenario", "Samples", "Analytic worst DL", "Max observed",
                   "Mean observed", "Bound holds", "Tightness"});
  for (size_t c = 1; c < 7; ++c) table.align(c, Align::kRight);
  table.title("Monte-Carlo failure injection vs analytic worst case "
              "(10,000 samples each + dense sweep)");

  const std::vector<std::pair<std::string, stordep::FailureScenario>>
      scenarios = {{"object (24 h rollback)", cs::objectFailure()},
                   {"array failure", cs::arrayFailure()},
                   {"site disaster", cs::siteDisaster()}};

  for (const auto& [name, scenario] : scenarios) {
    const auto random = injector.validateDataLoss(scenario, 10'000);
    const auto sweep = injector.sweepDataLoss(scenario, 20'000);
    table.addRow({name, std::to_string(random.samples + sweep.samples),
                  toString(sweep.analyticWorstCase),
                  toString(std::max(random.maxObserved, sweep.maxObserved)),
                  toString(random.meanObserved),
                  (random.boundHolds && sweep.boundHolds) ? "yes" : "NO",
                  fixed(std::max(random.tightness, sweep.tightness), 3)});
  }
  std::cout << table.render() << "\n";

  std::cout
      << "Interpretation: the analytic bound holds for every injected\n"
         "failure and the dense sweep pushes the observed maximum to within\n"
         "a few percent of it — the worst case is *achieved* just before an\n"
         "RP arrival, so the paper's formulas are tight, not just safe.\n\n";

  // The bound's fine print: it assumes each level's schedule is aligned
  // with upstream arrivals. Show what an adversarial phase does.
  stordep::sim::RpSimOptions misaligned;
  misaligned.horizon = stordep::days(200);
  misaligned.alignSchedules = false;
  misaligned.phases = {stordep::Duration::zero(), stordep::Duration::zero(),
                       stordep::hours(166), stordep::hours(400)};
  stordep::sim::RpLifecycleSimulator badSim(design, misaligned);
  badSim.run();
  stordep::sim::FailureInjector badInjector(badSim, stordep::sim::Rng(7));
  const auto bad = badInjector.sweepDataLoss(cs::arrayFailure(), 10'000);
  std::cout << "With a misaligned backup schedule (fires 166 h into the "
               "week,\njust before a fresh split mirror):\n"
            << "  analytic bound " << toString(bad.analyticWorstCase)
            << ", max observed " << toString(bad.maxObserved) << " — bound "
            << (bad.boundHolds ? "holds" : "EXCEEDED (by up to one upstream "
                                           "accumulation window)")
            << "\n"
            << "This documents the model's implicit scheduling assumption "
               "(DESIGN.md).\n";
  return 0;
}
