// stordep_eval — command-line dependability evaluator.
//
// The downstream-user entry point: evaluate any JSON design file under any
// scenario without writing C++.
//
//   $ ./stordep_eval --dump-baseline design.json      # get a starting point
//   $ ./stordep_eval design.json site                 # site disaster
//   $ ./stordep_eval design.json array                # array failure
//   $ ./stordep_eval design.json object 24h 1MB       # rollback 24 h, 1 MB
//   $ ./stordep_eval design.json --risk               # expected annual cost
//   $ ./stordep_eval design.json site --markdown      # GFM report
//   $ ./stordep_eval design.json site --json          # service envelope
//   $ ./stordep_eval design.json array --stochastic 10000 --seed 7
//                                  # + Monte-Carlo distribution (10k trials)
//
// --json prints exactly the document POST /v1/evaluate returns for the same
// design and scenario (compactly dumped, no trailing newline), so offline
// and served evaluations can be compared bit for bit.
//
// Scenario targets default to the first device / its site; pass a JSON
// scenario file instead of a keyword for full control, e.g.
//   {"scope": "site", "target": "primary-site"}
//
// Exit status: 0 success, 1 infeasible/unrecoverable, 2 usage/input error,
// 3 evaluation failure (the engine's error taxonomy name is printed).
#include <fstream>
#include <iostream>
#include <sstream>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "core/risk.hpp"
#include "engine/batch.hpp"
#include "report/report.hpp"
#include "service/json_api.hpp"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  stordep_eval --dump-baseline <out.json>\n"
         "  stordep_eval <design.json> (object [age] [size] | array [device]"
         " | site [site] | <scenario.json>) [--markdown|--json]"
         " [--stochastic <trials>] [--seed <seed>]"
         " [--stochastic-plan|--no-stochastic-plan]\n"
         "  stordep_eval <design.json> --risk\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using stordep::report::fixed;
  try {
    if (argc < 2) return usage();
    const std::string first = argv[1];
    if (first == "--dump-baseline") {
      if (argc < 3) return usage();
      stordep::config::saveDesignFile(stordep::casestudy::baseline(),
                                      argv[2]);
      std::cout << "wrote " << argv[2] << "\n";
      return 0;
    }

    const stordep::StorageDesign design =
        stordep::config::loadDesignFile(first);
    const stordep::DevicePtr primary = design.primary().array();

    if (argc >= 3 && std::string(argv[2]) == "--risk") {
      // Frequency-weighted view over the standard three scopes against this
      // design's own primary device/site.
      std::vector<stordep::FailureMode> modes{
          {"object corruption",
           stordep::FailureScenario::objectFailure(stordep::hours(24),
                                                   stordep::megabytes(1)),
           12.0},
          {"array failure",
           stordep::FailureScenario::arrayFailure(primary->name()), 0.1},
          {"site disaster",
           stordep::FailureScenario::siteDisaster(primary->location().site),
           0.02}};
      const stordep::RiskAssessment risk = assessRisk(design, modes);
      std::cout << "design: " << design.name() << "\n";
      for (const auto& m : risk.modes) {
        std::cout << "  " << m.name << " @ " << m.annualFrequency << "/yr: ";
        if (m.recoverable) {
          std::cout << "RT " << toString(m.recoveryTime) << ", DL "
                    << toString(m.dataLoss) << ", expected penalty "
                    << toString(m.expectedAnnualPenalty) << "/yr\n";
        } else {
          std::cout << "UNRECOVERABLE\n";
        }
      }
      std::cout << "annual outlays: " << toString(risk.annualOutlays)
                << "\nexpected annual cost: "
                << toString(risk.expectedAnnualCost) << "\nexpected downtime: "
                << fixed(risk.expectedAnnualDowntimeHours, 2) << " hr/yr\n";
      return risk.unrecoverableFrequency > 0 ? 1 : 0;
    }

    // Trailing flags switch the output format and opt into the Monte-Carlo
    // layer.
    bool markdown = false;
    bool json = false;
    int stochasticTrials = 0;
    std::uint64_t stochasticSeed = 1;
    bool stochasticPlan = true;
    while (argc >= 3) {
      const std::string last = argv[argc - 1];
      if (last == "--markdown") {
        markdown = true;
        --argc;
      } else if (last == "--json") {
        json = true;
        --argc;
      } else if (last == "--stochastic-plan") {
        stochasticPlan = true;
        --argc;
      } else if (last == "--no-stochastic-plan") {
        stochasticPlan = false;
        --argc;
      } else if (argc >= 4 && std::string(argv[argc - 2]) == "--stochastic") {
        stochasticTrials = std::stoi(last);
        if (stochasticTrials < 1) return usage();
        argc -= 2;
      } else if (argc >= 4 && std::string(argv[argc - 2]) == "--seed") {
        stochasticSeed = std::stoull(last);
        argc -= 2;
      } else {
        break;
      }
    }

    stordep::FailureScenario scenario =
        stordep::FailureScenario::arrayFailure(primary->name());
    if (argc >= 3) {
      const std::string kind = argv[2];
      if (kind == "object") {
        const stordep::Duration age =
            argc >= 4 ? stordep::parseDuration(argv[3]) : stordep::hours(24);
        const stordep::Bytes size =
            argc >= 5 ? stordep::parseBytes(argv[4]) : stordep::megabytes(1);
        scenario = stordep::FailureScenario::objectFailure(age, size);
      } else if (kind == "array") {
        scenario = stordep::FailureScenario::arrayFailure(
            argc >= 4 ? argv[3] : primary->name());
      } else if (kind == "site") {
        scenario = stordep::FailureScenario::siteDisaster(
            argc >= 4 ? argv[3] : primary->location().site);
      } else {
        scenario = stordep::config::scenarioFromJson(
            stordep::config::Json::parse(slurp(kind)));
      }
    }

    // Evaluate under the structured-error contract so a model failure exits
    // with the engine's taxonomy name instead of an opaque exception.
    const stordep::engine::EvalOutcome outcome =
        stordep::engine::Engine::shared().tryEvaluate(design, scenario);
    if (!outcome.ok()) {
      const stordep::engine::EvalError& error = outcome.error();
      std::cerr << "error: " << stordep::engine::toString(error.code) << ": "
                << error.message << "\n";
      return 3;
    }
    const stordep::EvaluationResult& result = outcome.value();

    // Optional Monte-Carlo add-on. The design document's "reliability"
    // block parameterizes the sampler exactly as it does for a served
    // {"stochastic": ...} request.
    stordep::service::StochasticRequest stochasticReq;
    if (stochasticTrials > 0) {
      stochasticReq.trials = stochasticTrials;
      stochasticReq.seed = stochasticSeed;
      stochasticReq.usePlan = stochasticPlan;
      if (const auto reliability = stordep::config::reliabilityFromDesignJson(
              stordep::config::Json::parse(slurp(first)))) {
        stochasticReq.reliability = *reliability;
      }
    }

    if (json) {
      // Byte-identical to the service's single-evaluate response body.
      stordep::config::Json body =
          stordep::service::evaluationToJson(design, scenario, result);
      if (stochasticTrials > 0) {
        body.set("stochastic", stordep::service::stochasticEnvelope(
                                   design, scenario, stochasticReq));
      }
      std::cout << body.dump();
    } else {
      std::cout << (markdown ? stordep::report::markdownReport(design,
                                                               scenario, result)
                             : stordep::report::fullReport(design, scenario,
                                                           result));
      if (stochasticTrials > 0) {
        stordep::stochastic::StochasticOptions sopt;
        sopt.trials = stochasticReq.trials;
        sopt.seed = stochasticReq.seed;
        sopt.reliability = stochasticReq.reliability;
        sopt.usePlan = stochasticReq.usePlan;
        const stordep::stochastic::StochasticEvaluator sampler(design, sopt);
        const auto sampled = sampler.distributionFor(scenario);
        if (!sampled.ok()) {
          std::cerr << "stochastic error: " << sampled.error().describe()
                    << "\n";
          return 3;
        }
        const stordep::stochastic::ScenarioDistribution& dist =
            sampled.value();
        std::cout << "\nMonte-Carlo distribution (" << dist.trials
                  << " trials, seed " << stochasticSeed << "):\n"
                  << "  recovery time hr: mean "
                  << fixed(dist.rt.mean / 3600.0, 2) << "  p50 "
                  << fixed(dist.rt.p50 / 3600.0, 2) << "  p95 "
                  << fixed(dist.rt.p95 / 3600.0, 2) << "  p99 "
                  << fixed(dist.rt.p99 / 3600.0, 2) << "  max "
                  << fixed(dist.rt.max / 3600.0, 2) << " (worst-case bound "
                  << fixed(dist.analyticWorstRt.hrs(), 2) << ", "
                  << (dist.rtBoundHolds ? "holds" : "VIOLATED") << ")\n"
                  << "  data loss hr:     mean "
                  << fixed(dist.dl.mean / 3600.0, 2) << "  p95 "
                  << fixed(dist.dl.p95 / 3600.0, 2) << "  max "
                  << fixed(dist.dl.max / 3600.0, 2) << " ("
                  << (dist.dlBoundHolds ? "bounded" : "BOUND VIOLATED")
                  << ")\n"
                  << "  penalty: expected "
                  << toString(dist.expectedPenalty) << " +/- "
                  << toString(stordep::dollars(dist.penalty.ci95))
                  << " (95% CI), worst-case "
                  << toString(dist.worstCasePenalty) << "\n"
                  << "  unrecoverable trials: " << dist.unrecoverable << "/"
                  << dist.trials << "\n"
                  << "  throughput: " << fixed(dist.trialsPerSec, 0)
                  << " trials/s ("
                  << (dist.usedPlan ? "compiled plan" : "legacy loop")
                  << ")\n";
      }
    }
    return result.recovery.recoverable && result.utilization.feasible() ? 0
                                                                        : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
