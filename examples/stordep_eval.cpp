// stordep_eval — command-line dependability evaluator.
//
// The downstream-user entry point: evaluate any JSON design file under any
// scenario without writing C++.
//
//   $ ./stordep_eval --dump-baseline design.json      # get a starting point
//   $ ./stordep_eval design.json site                 # site disaster
//   $ ./stordep_eval design.json array                # array failure
//   $ ./stordep_eval design.json object 24h 1MB       # rollback 24 h, 1 MB
//   $ ./stordep_eval design.json --risk               # expected annual cost
//   $ ./stordep_eval design.json site --markdown      # GFM report
//
// Scenario targets default to the first device / its site; pass a JSON
// scenario file instead of a keyword for full control, e.g.
//   {"scope": "site", "target": "primary-site"}
#include <fstream>
#include <iostream>
#include <sstream>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "core/risk.hpp"
#include "report/report.hpp"

namespace {

int usage() {
  std::cerr
      << "usage:\n"
         "  stordep_eval --dump-baseline <out.json>\n"
         "  stordep_eval <design.json> (object [age] [size] | array [device]"
         " | site [site] | <scenario.json>)\n"
         "  stordep_eval <design.json> --risk\n";
  return 2;
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

}  // namespace

int main(int argc, char** argv) {
  using stordep::report::fixed;
  try {
    if (argc < 2) return usage();
    const std::string first = argv[1];
    if (first == "--dump-baseline") {
      if (argc < 3) return usage();
      stordep::config::saveDesignFile(stordep::casestudy::baseline(),
                                      argv[2]);
      std::cout << "wrote " << argv[2] << "\n";
      return 0;
    }

    const stordep::StorageDesign design =
        stordep::config::loadDesignFile(first);
    const stordep::DevicePtr primary = design.primary().array();

    if (argc >= 3 && std::string(argv[2]) == "--risk") {
      // Frequency-weighted view over the standard three scopes against this
      // design's own primary device/site.
      std::vector<stordep::FailureMode> modes{
          {"object corruption",
           stordep::FailureScenario::objectFailure(stordep::hours(24),
                                                   stordep::megabytes(1)),
           12.0},
          {"array failure",
           stordep::FailureScenario::arrayFailure(primary->name()), 0.1},
          {"site disaster",
           stordep::FailureScenario::siteDisaster(primary->location().site),
           0.02}};
      const stordep::RiskAssessment risk = assessRisk(design, modes);
      std::cout << "design: " << design.name() << "\n";
      for (const auto& m : risk.modes) {
        std::cout << "  " << m.name << " @ " << m.annualFrequency << "/yr: ";
        if (m.recoverable) {
          std::cout << "RT " << toString(m.recoveryTime) << ", DL "
                    << toString(m.dataLoss) << ", expected penalty "
                    << toString(m.expectedAnnualPenalty) << "/yr\n";
        } else {
          std::cout << "UNRECOVERABLE\n";
        }
      }
      std::cout << "annual outlays: " << toString(risk.annualOutlays)
                << "\nexpected annual cost: "
                << toString(risk.expectedAnnualCost) << "\nexpected downtime: "
                << fixed(risk.expectedAnnualDowntimeHours, 2) << " hr/yr\n";
      return risk.unrecoverableFrequency > 0 ? 1 : 0;
    }

    // Trailing --markdown switches the output format.
    bool markdown = false;
    if (argc >= 3 && std::string(argv[argc - 1]) == "--markdown") {
      markdown = true;
      --argc;
    }

    stordep::FailureScenario scenario =
        stordep::FailureScenario::arrayFailure(primary->name());
    if (argc >= 3) {
      const std::string kind = argv[2];
      if (kind == "object") {
        const stordep::Duration age =
            argc >= 4 ? stordep::parseDuration(argv[3]) : stordep::hours(24);
        const stordep::Bytes size =
            argc >= 5 ? stordep::parseBytes(argv[4]) : stordep::megabytes(1);
        scenario = stordep::FailureScenario::objectFailure(age, size);
      } else if (kind == "array") {
        scenario = stordep::FailureScenario::arrayFailure(
            argc >= 4 ? argv[3] : primary->name());
      } else if (kind == "site") {
        scenario = stordep::FailureScenario::siteDisaster(
            argc >= 4 ? argv[3] : primary->location().site);
      } else {
        scenario = stordep::config::scenarioFromJson(
            stordep::config::Json::parse(slurp(kind)));
      }
    }

    const stordep::EvaluationResult result = evaluate(design, scenario);
    std::cout << (markdown
                      ? stordep::report::markdownReport(design, scenario,
                                                        result)
                      : stordep::report::fullReport(design, scenario, result));
    return result.recovery.recoverable && result.utilization.feasible() ? 0
                                                                        : 1;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << "\n";
    return 2;
  }
}
