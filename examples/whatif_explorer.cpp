// whatif_explorer — compare storage designs under failure scenarios.
//
// Demonstrates the framework's core use case (paper Sec 4.2): exploring
// what-if variations of a design and seeing their dependability and cost
// consequences side by side. Also demonstrates JSON design round-tripping:
//
//   $ ./whatif_explorer                 # compare the paper's seven designs
//   $ ./whatif_explorer --dump baseline.json   # export the baseline design
//   $ ./whatif_explorer my-design.json  # add your own design to the table
#include <fstream>
#include <iostream>

#include "casestudy/casestudy.hpp"
#include "config/design_io.hpp"
#include "report/report.hpp"

namespace {

std::string money(stordep::Money m) {
  return stordep::report::fixed(m.millionUsd(), 2) + "M";
}

std::string hoursOf(stordep::Duration d) {
  if (!d.isFinite()) return "inf";
  return stordep::report::fixed(d.hrs(), d.hrs() < 1 ? 2 : 1);
}

}  // namespace

int main(int argc, char** argv) {
  namespace cs = stordep::casestudy;
  using stordep::report::Align;
  using stordep::report::TextTable;

  std::vector<std::pair<std::string, stordep::StorageDesign>> designs =
      cs::allWhatIfDesigns();

  // Optional CLI: --dump writes the baseline as a JSON starting point;
  // any other argument is a design file to include in the comparison.
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--dump") {
      if (i + 1 >= argc) {
        std::cerr << "--dump needs a path\n";
        return 1;
      }
      stordep::config::saveDesignFile(cs::baseline(), argv[i + 1]);
      std::cout << "wrote " << argv[i + 1] << "\n";
      return 0;
    }
    try {
      stordep::StorageDesign loaded = stordep::config::loadDesignFile(arg);
      designs.emplace_back(loaded.name() + " (" + arg + ")",
                           std::move(loaded));
    } catch (const std::exception& e) {
      std::cerr << "cannot load '" << arg << "': " << e.what() << "\n";
      return 1;
    }
  }

  TextTable table({"Storage system design", "Outlays", "Array RT (hr)",
                   "Array DL (hr)", "Array total", "Site RT (hr)",
                   "Site DL (hr)", "Site total"});
  for (size_t c = 1; c < 8; ++c) table.align(c, Align::kRight);
  table.title("What-if comparison (paper Table 7 layout; penalties at "
              "$50k/hr for outage and loss)");

  for (const auto& [label, design] : designs) {
    const auto array = stordep::evaluate(design, cs::arrayFailure());
    const auto site = stordep::evaluate(design, cs::siteDisaster());
    table.addRow({label, money(array.cost.totalOutlays),
                  hoursOf(array.recovery.recoveryTime),
                  hoursOf(array.recovery.dataLoss),
                  money(array.cost.totalCost),
                  hoursOf(site.recovery.recoveryTime),
                  hoursOf(site.recovery.dataLoss),
                  money(site.cost.totalCost)});
  }
  std::cout << table.render() << "\n";

  std::cout << "Reading the table:\n"
               "  * Weekly vaulting slashes site-disaster loss (1429 h -> "
               "253 h).\n"
               "  * Daily fulls cut array-failure loss to 37 h.\n"
               "  * Mirroring cuts loss to minutes; with one OC-3 link it "
               "is also the cheapest design overall, because outlays "
               "dominate once penalties are small.\n";
  return 0;
}
